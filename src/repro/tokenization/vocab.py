"""Vocabulary for the sequence-to-sequence model.

A word-level vocabulary over C code tokens and X-SBT tags.  Special tokens
follow SPT-Code's conventions: ``[PAD]`` for padding, ``[SOS]``/``[EOS]`` to
bracket decoder sequences, ``[SEP]`` to separate the code from its X-SBT in
the encoder input, and ``[UNK]`` for out-of-vocabulary tokens.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

PAD = "[PAD]"
SOS = "[SOS]"
EOS = "[EOS]"
SEP = "[SEP]"
UNK = "[UNK]"

SPECIAL_TOKENS: tuple[str, ...] = (PAD, SOS, EOS, SEP, UNK)


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    id_to_token: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.token_to_id:
            for token in SPECIAL_TOKENS:
                self.add(token)

    # ------------------------------------------------------------------ api

    def add(self, token: str) -> int:
        """Add ``token`` if missing; return its id."""
        if token in self.token_to_id:
            return self.token_to_id[token]
        idx = len(self.id_to_token)
        self.token_to_id[token] = idx
        self.id_to_token.append(token)
        return idx

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def encode_token(self, token: str) -> int:
        """Id of ``token`` (UNK id if unknown)."""
        return self.token_to_id.get(token, self.token_to_id[UNK])

    def decode_id(self, idx: int) -> str:
        """Token for ``idx`` (UNK if out of range)."""
        if 0 <= idx < len(self.id_to_token):
            return self.id_to_token[idx]
        return UNK

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Encode a token sequence into ids."""
        return [self.encode_token(t) for t in tokens]

    def decode(self, ids: Iterable[int], *, strip_special: bool = True) -> list[str]:
        """Decode ids back into tokens, optionally dropping special tokens."""
        tokens = [self.decode_id(i) for i in ids]
        if strip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    # ------------------------------------------------------------- special ids

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def sos_id(self) -> int:
        return self.token_to_id[SOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def sep_id(self) -> int:
        return self.token_to_id[SEP]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    # --------------------------------------------------------------- builders

    @classmethod
    def build(cls, sequences: Iterable[Iterable[str]], *, min_count: int = 1,
              max_size: int | None = None) -> "Vocabulary":
        """Build a vocabulary from token sequences.

        Tokens appearing fewer than ``min_count`` times are dropped; if
        ``max_size`` is given only the most frequent tokens are kept.
        """
        counter: Counter[str] = Counter()
        for seq in sequences:
            counter.update(seq)
        vocab = cls()
        items = counter.most_common()
        if max_size is not None:
            items = items[: max(0, max_size - len(SPECIAL_TOKENS))]
        for token, count in items:
            if count < min_count:
                continue
            vocab.add(token)
        return vocab

    def to_dict(self) -> dict:
        """Serialisable representation (used by checkpointing)."""
        return {"tokens": list(self.id_to_token)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Vocabulary":
        """Rebuild a vocabulary saved with :meth:`to_dict`."""
        vocab = cls()
        for token in payload["tokens"]:
            vocab.add(token)
        return vocab
