"""Tokenisation: vocabulary, example encoding, detokenisation, batching."""

from .code_tokenizer import (
    EncodedExample,
    ExampleEncoder,
    SequenceConfig,
    detokenize,
    pad_batch,
    tokenize_code,
    tokenize_xsbt,
)
from .vocab import EOS, PAD, SEP, SOS, SPECIAL_TOKENS, UNK, Vocabulary

__all__ = [
    "EncodedExample",
    "ExampleEncoder",
    "SequenceConfig",
    "detokenize",
    "pad_batch",
    "tokenize_code",
    "tokenize_xsbt",
    "Vocabulary",
    "PAD",
    "SOS",
    "EOS",
    "SEP",
    "UNK",
    "SPECIAL_TOKENS",
]
