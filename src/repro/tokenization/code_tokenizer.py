"""Turning translation examples into model-ready integer sequences.

The encoder input follows Figure 1b of the paper::

    code tokens ... [SEP] x-sbt tokens ...

and the decoder target is the label program's token sequence bracketed by
``[SOS]``/``[EOS]``.  Code is tokenised with the C lexer (so string literals
stay single tokens); X-SBT strings are whitespace-separated tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..clang.lexer import code_token_texts
from ..dataset.records import TranslationExample
from .vocab import EOS, SEP, SOS, Vocabulary


@dataclass
class EncodedExample:
    """Integer sequences for one translation example."""

    example_id: str
    encoder_ids: list[int]
    decoder_ids: list[int]


@dataclass
class SequenceConfig:
    """Sequence-length limits.

    The paper trains with 320 code tokens; the encoder additionally carries the
    X-SBT, so its cap is higher.  Longer sequences are truncated (never
    dropped — filtering happened earlier in the dataset build).
    """

    max_source_tokens: int = 320
    max_xsbt_tokens: int = 160
    max_target_tokens: int = 360


def tokenize_code(code: str) -> list[str]:
    """Tokenise C source into the word-level tokens the model consumes.

    Unlike :func:`repro.clang.lexer.code_token_texts` (which implements the
    paper's 320-token *filter* count), the model tokenisation keeps
    preprocessor directives as single tokens: the decoder reproduces the whole
    file, and keeping the ``#include`` lines preserves the line numbering that
    the location evaluation (RQ2) depends on.
    """
    from ..clang.lexer import Lexer
    from ..clang.tokens import TokenKind

    tokens = Lexer(code, keep_comments=False).tokenize()
    out: list[str] = []
    for token in tokens:
        if token.kind in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.ERROR,
                          TokenKind.EOF):
            continue
        if token.kind is TokenKind.DIRECTIVE:
            out.append(token.text.strip())
        else:
            out.append(token.text)
    return out


def tokenize_xsbt(xsbt: str) -> list[str]:
    """Tokenise an X-SBT string (whitespace separated tags)."""
    return xsbt.split()


class ExampleEncoder:
    """Encodes :class:`TranslationExample` objects with a shared vocabulary."""

    def __init__(self, vocab: Vocabulary, config: SequenceConfig | None = None,
                 *, use_xsbt: bool = True) -> None:
        self.vocab = vocab
        self.config = config or SequenceConfig()
        self.use_xsbt = use_xsbt

    # --------------------------------------------------------------- builders

    @classmethod
    def fit(cls, examples: list[TranslationExample],
            config: SequenceConfig | None = None, *, use_xsbt: bool = True,
            max_vocab: int | None = None) -> "ExampleEncoder":
        """Build the vocabulary from ``examples`` and return an encoder.

        The vocabulary covers source code, X-SBT tags and target code so the
        decoder can emit everything it needs.
        """
        sequences: list[list[str]] = []
        for ex in examples:
            sequences.append(tokenize_code(ex.source_code))
            sequences.append(tokenize_code(ex.target_code))
            if use_xsbt:
                sequences.append(tokenize_xsbt(ex.source_xsbt))
        vocab = Vocabulary.build(sequences, max_size=max_vocab)
        return cls(vocab, config, use_xsbt=use_xsbt)

    # ------------------------------------------------------------------- api

    def encoder_tokens(self, example: TranslationExample) -> list[str]:
        """The token sequence fed to the encoder (code [SEP] x-sbt)."""
        tokens = tokenize_code(example.source_code)[: self.config.max_source_tokens]
        if self.use_xsbt:
            tokens = tokens + [SEP] + tokenize_xsbt(example.source_xsbt)[
                : self.config.max_xsbt_tokens
            ]
        return tokens

    def decoder_tokens(self, example: TranslationExample) -> list[str]:
        """The token sequence the decoder should produce ([SOS] ... [EOS])."""
        target = tokenize_code(example.target_code)[: self.config.max_target_tokens]
        return [SOS] + target + [EOS]

    def encode_example(self, example: TranslationExample) -> EncodedExample:
        """Encode one example into integer id sequences."""
        return EncodedExample(
            example_id=example.example_id,
            encoder_ids=self.vocab.encode(self.encoder_tokens(example)),
            decoder_ids=self.vocab.encode(self.decoder_tokens(example)),
        )

    def encode_examples(self, examples: list[TranslationExample]) -> list[EncodedExample]:
        """Encode a list of examples."""
        return [self.encode_example(ex) for ex in examples]

    def encode_source(self, source_code: str, xsbt: str | None = None, *,
                      tokens: list[str] | None = None) -> list[int]:
        """Encode raw source text (used at inference time by the assistant).

        ``tokens`` skips re-lexing when the caller already tokenised the
        buffer (the serving layer lexes once per request for cache keying).
        """
        if tokens is None:
            tokens = tokenize_code(source_code)
        tokens = tokens[: self.config.max_source_tokens]
        if self.use_xsbt and xsbt is not None:
            tokens = tokens + [SEP] + tokenize_xsbt(xsbt)[: self.config.max_xsbt_tokens]
        return self.vocab.encode(tokens)

    def decode_to_code(self, ids: list[int]) -> str:
        """Decode generated ids back into C source text.

        Tokens are joined with spaces and then lightly re-flowed: a newline is
        inserted after ``;``, ``{`` and ``}`` and after preprocessor
        directives, which is enough for the downstream line-level alignment
        (the paper's location metric works at statement granularity, and the
        standardiser emits one statement per line).
        """
        tokens = self.vocab.decode(ids)
        return detokenize(tokens)


def detokenize(tokens: list[str]) -> str:
    """Reconstruct C source text from word-level tokens.

    The reconstruction mirrors the standardiser's line discipline so the line
    numbers of a perfectly generated program match its reference: statements
    end lines at ``;`` (outside parentheses), ``{`` ends a line and indents,
    ``}`` closes a line except when followed by ``else``/``while`` (so
    ``} else {`` and ``} while (...);`` stay on one line), and preprocessor
    directives occupy their own lines.
    """
    lines: list[str] = []
    current: list[str] = []
    depth = 0
    paren_depth = 0

    def flush() -> None:
        nonlocal current
        if current:
            lines.append(_join_tokens(current, depth))
            current = []

    for i, token in enumerate(tokens):
        nxt = tokens[i + 1] if i + 1 < len(tokens) else ""
        if token.startswith("#"):
            flush()
            lines.append(token)
            continue
        if token == "(":
            paren_depth += 1
        elif token == ")":
            paren_depth = max(0, paren_depth - 1)

        if token == "}":
            flush()
            depth = max(0, depth - 1)
            if nxt in ("else", "while"):
                current = ["}"]
            else:
                lines.append(_join_tokens(["}"], depth))
            continue

        current.append(token)
        if token == ";" and paren_depth == 0:
            flush()
        elif token == "{":
            flush()
            depth += 1
    flush()
    return "\n".join(lines) + "\n"


_NO_SPACE_BEFORE = {";", ",", ")", "]", "[", "++", "--", "."}
_NO_SPACE_AFTER = {"(", "[", "!", "~", "."}

#: Keywords that take a space before their parenthesis (``if (x)`` not ``if(x)``).
_KEYWORDS_BEFORE_PAREN = {"if", "while", "for", "switch", "return"}

#: Tokens after which ``&`` / ``*`` / ``-`` act as unary operators and bind to
#: the operand without a space (``f(&x)``, ``a = -b``).
_UNARY_CONTEXT = {
    "(", ",", "[", "{", ";", "=", "+", "-", "*", "/", "%", "<", ">", "<=", ">=",
    "==", "!=", "&&", "||", "!", "&", "|", "^", "<<", ">>", "return", "",
    "+=", "-=", "*=", "/=", "?", ":",
}


def _join_tokens(tokens: list[str], depth: int) -> str:
    """Join one line's tokens with C-ish spacing and indentation."""
    out = ""
    prev = ""
    unary_pending = False
    for token in tokens:
        if not out:
            out = token
        elif token == "(":
            if prev in _KEYWORDS_BEFORE_PAREN:
                out += " ("
            else:
                out += "("
        elif unary_pending:
            out += token
        elif token in _NO_SPACE_BEFORE or prev in _NO_SPACE_AFTER:
            out += token
        else:
            out += " " + token
        unary_pending = token in ("&", "-", "!", "~") and prev in _UNARY_CONTEXT
        prev = token
    return "    " * depth + out


def pad_batch(sequences: list[list[int]], pad_id: int,
              max_len: int | None = None) -> np.ndarray:
    """Pad integer sequences into a dense ``(batch, length)`` int array."""
    if not sequences:
        return np.zeros((0, 0), dtype=np.int64)
    length = max(len(s) for s in sequences)
    if max_len is not None:
        length = min(length, max_len)
    batch = np.full((len(sequences), length), pad_id, dtype=np.int64)
    for i, seq in enumerate(sequences):
        trimmed = seq[:length]
        batch[i, : len(trimmed)] = trimmed
    return batch
