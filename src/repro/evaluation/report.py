"""Aggregated evaluation reports for Table II and Table III."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.textio import format_table
from .accuracy import exact_match_accuracy
from .bleu import corpus_bleu
from .classification import (
    ClassificationScores,
    MatchCounts,
    evaluate_program,
    scores_from_counts,
)
from .meteor import corpus_meteor
from .rouge import corpus_rouge_l


@dataclass
class ExamplePrediction:
    """One (prediction, reference) pair ready for scoring."""

    example_id: str
    predicted_code: str
    reference_code: str
    predicted_tokens: list[str] = field(default_factory=list)
    reference_tokens: list[str] = field(default_factory=list)


@dataclass
class CorpusEvaluation:
    """The full Table II row set."""

    classification: ClassificationScores
    bleu: float
    meteor: float
    rouge_l: float
    exact_match: float
    num_examples: int

    def as_dict(self) -> dict[str, float]:
        payload = dict(self.classification.as_dict())
        payload.update({
            "BLEU": self.bleu,
            "Meteor": self.meteor,
            "Rouge-l": self.rouge_l,
            "ACC": self.exact_match,
        })
        return payload

    def to_table(self) -> str:
        """Render the same rows Table II reports."""
        rows = [[name, f"{value:.2f}"] for name, value in self.as_dict().items()]
        return format_table(["Quality Measure", "MPICodeCorpus"], rows)


def evaluate_corpus(predictions: list[ExamplePrediction], *,
                    line_tolerance: int = 1) -> CorpusEvaluation:
    """Score a list of predictions with every Table II metric."""
    if not predictions:
        raise ValueError("no predictions to evaluate")

    counts = MatchCounts()
    for prediction in predictions:
        counts.merge(
            evaluate_program(prediction.predicted_code, prediction.reference_code,
                             line_tolerance=line_tolerance)
        )

    candidates = [p.predicted_tokens for p in predictions]
    references = [p.reference_tokens for p in predictions]
    return CorpusEvaluation(
        classification=scores_from_counts(counts),
        bleu=corpus_bleu(candidates, references),
        meteor=corpus_meteor(candidates, references),
        rouge_l=corpus_rouge_l(candidates, references),
        exact_match=exact_match_accuracy(candidates, references),
        num_examples=len(predictions),
    )


@dataclass
class ProgramEvaluation:
    """One row of Table III (per numerical-benchmark program)."""

    name: str
    f1: float
    precision: float
    recall: float


@dataclass
class BenchmarkEvaluation:
    """Table III: per-program rows plus the aggregate 'Total' row."""

    programs: list[ProgramEvaluation] = field(default_factory=list)
    total: ProgramEvaluation | None = None

    def to_table(self) -> str:
        rows = [
            [p.name, f"{p.f1:.2f}", f"{p.precision:.2f}", f"{p.recall:.2f}"]
            for p in self.programs
        ]
        if self.total is not None:
            rows.append(["Total", f"{self.total.f1:.2f}", f"{self.total.precision:.2f}",
                         f"{self.total.recall:.2f}"])
        return format_table(["Code", "M-F1", "M-Precision", "M-Recall"], rows)


def evaluate_benchmark(named_predictions: list[tuple[str, str, str]], *,
                       line_tolerance: int = 1) -> BenchmarkEvaluation:
    """Score (name, predicted_code, reference_code) triples as Table III.

    The 'Total' row pools the TP/FP/FN counts across programs, matching how
    the paper computes the aggregate 0.91 / 0.98 / 0.86 numbers.
    """
    result = BenchmarkEvaluation()
    pooled = MatchCounts()
    for name, predicted, reference in named_predictions:
        counts = evaluate_program(predicted, reference, line_tolerance=line_tolerance)
        pooled.merge(counts)
        result.programs.append(
            ProgramEvaluation(name=name, f1=counts.f1, precision=counts.precision,
                              recall=counts.recall)
        )
    result.total = ProgramEvaluation(name="Total", f1=pooled.f1,
                                     precision=pooled.precision, recall=pooled.recall)
    return result
