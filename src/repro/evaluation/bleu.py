"""Corpus and sentence BLEU (Papineni et al., 2002) over code tokens."""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence


def _ngram_counts(tokens: Sequence[str], order: int) -> Counter:
    return Counter(
        tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1)
    )


def modified_precision(candidate: Sequence[str], reference: Sequence[str],
                       order: int) -> tuple[int, int]:
    """Clipped n-gram matches and total candidate n-grams for one order."""
    cand_counts = _ngram_counts(candidate, order)
    ref_counts = _ngram_counts(reference, order)
    matches = sum(min(count, ref_counts[ngram]) for ngram, count in cand_counts.items())
    total = max(sum(cand_counts.values()), 0)
    return matches, total


def sentence_bleu(candidate: Sequence[str], reference: Sequence[str],
                  max_order: int = 4, smooth: float = 1e-9) -> float:
    """Sentence-level BLEU with add-epsilon smoothing and brevity penalty."""
    if not candidate or not reference:
        return 0.0
    log_precision_sum = 0.0
    effective_orders = 0
    for order in range(1, max_order + 1):
        matches, total = modified_precision(candidate, reference, order)
        if total == 0:
            # The candidate is shorter than this n-gram order; skip the order
            # instead of zeroing the score (NLTK-style handling).
            continue
        precision = max(matches, smooth) / total
        log_precision_sum += math.log(precision)
        effective_orders += 1
    if effective_orders == 0:
        return 0.0
    geo_mean = math.exp(log_precision_sum / effective_orders)

    ratio = len(candidate) / len(reference)
    brevity = 1.0 if ratio >= 1.0 else math.exp(1.0 - 1.0 / max(ratio, 1e-9))
    return brevity * geo_mean


def corpus_bleu(candidates: list[Sequence[str]], references: list[Sequence[str]],
                max_order: int = 4, smooth: float = 1e-9) -> float:
    """Corpus-level BLEU: n-gram statistics pooled before taking the geometric
    mean (the standard definition, more stable than averaging sentence BLEU)."""
    if not candidates or len(candidates) != len(references):
        raise ValueError("candidates and references must be equal-length, non-empty lists")

    match_totals = [0] * max_order
    count_totals = [0] * max_order
    candidate_length = 0
    reference_length = 0

    for candidate, reference in zip(candidates, references):
        candidate_length += len(candidate)
        reference_length += len(reference)
        for order in range(1, max_order + 1):
            matches, total = modified_precision(candidate, reference, order)
            match_totals[order - 1] += matches
            count_totals[order - 1] += total

    log_precision_sum = 0.0
    effective_orders = 0
    for matches, total in zip(match_totals, count_totals):
        if total == 0:
            continue
        precision = max(matches, smooth) / total
        log_precision_sum += math.log(precision)
        effective_orders += 1
    if effective_orders == 0:
        return 0.0
    geo_mean = math.exp(log_precision_sum / effective_orders)

    if candidate_length == 0 or reference_length == 0:
        return 0.0
    ratio = candidate_length / reference_length
    brevity = 1.0 if ratio >= 1.0 else math.exp(1.0 - 1.0 / max(ratio, 1e-9))
    return brevity * geo_mean
