"""Evaluation metrics: location-tolerant classification, BLEU, METEOR, ROUGE-L,
exact match, and the Table II / Table III report builders."""

from .accuracy import exact_match, exact_match_accuracy
from .bleu import corpus_bleu, modified_precision, sentence_bleu
from .classification import (
    ClassificationScores,
    MatchCounts,
    MPICallSite,
    evaluate_program,
    extract_call_sites,
    match_call_sites,
    scores_from_counts,
)
from .meteor import corpus_meteor, meteor
from .report import (
    BenchmarkEvaluation,
    CorpusEvaluation,
    ExamplePrediction,
    ProgramEvaluation,
    evaluate_benchmark,
    evaluate_corpus,
)
from .rouge import corpus_rouge_l, lcs_length, rouge_l

__all__ = [
    "exact_match",
    "exact_match_accuracy",
    "corpus_bleu",
    "modified_precision",
    "sentence_bleu",
    "ClassificationScores",
    "MatchCounts",
    "MPICallSite",
    "evaluate_program",
    "extract_call_sites",
    "match_call_sites",
    "scores_from_counts",
    "corpus_meteor",
    "meteor",
    "BenchmarkEvaluation",
    "CorpusEvaluation",
    "ExamplePrediction",
    "ProgramEvaluation",
    "evaluate_benchmark",
    "evaluate_corpus",
    "corpus_rouge_l",
    "lcs_length",
    "rouge_l",
]
