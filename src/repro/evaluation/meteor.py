"""A METEOR-style metric over code tokens.

Full METEOR uses stemming and WordNet synonym matching, neither of which is
meaningful for C tokens.  This implementation keeps the parts that are:
unigram precision/recall with the recall-weighted harmonic mean, and the
fragmentation penalty computed from the number of contiguous matched chunks.
"""

from __future__ import annotations

from typing import Sequence


def _align(candidate: Sequence[str], reference: Sequence[str]) -> list[tuple[int, int]]:
    """Greedy left-to-right exact-match alignment (candidate idx, reference idx)."""
    used_reference: set[int] = set()
    alignment: list[tuple[int, int]] = []
    for ci, token in enumerate(candidate):
        for ri, ref_token in enumerate(reference):
            if ri in used_reference:
                continue
            if token == ref_token:
                alignment.append((ci, ri))
                used_reference.add(ri)
                break
    return alignment


def _count_chunks(alignment: list[tuple[int, int]]) -> int:
    """Number of maximal runs where both candidate and reference indices are
    consecutive (METEOR's chunk definition)."""
    if not alignment:
        return 0
    chunks = 1
    for (prev_c, prev_r), (cur_c, cur_r) in zip(alignment, alignment[1:]):
        if cur_c != prev_c + 1 or cur_r != prev_r + 1:
            chunks += 1
    return chunks


def meteor(candidate: Sequence[str], reference: Sequence[str],
           alpha: float = 0.9, beta: float = 3.0, gamma: float = 0.5) -> float:
    """METEOR score between a candidate and a reference token sequence."""
    if not candidate or not reference:
        return 0.0
    alignment = _align(candidate, reference)
    matches = len(alignment)
    if matches == 0:
        return 0.0
    precision = matches / len(candidate)
    recall = matches / len(reference)
    f_mean = precision * recall / (alpha * precision + (1 - alpha) * recall)

    chunks = _count_chunks(alignment)
    fragmentation = chunks / matches
    penalty = gamma * (fragmentation ** beta)
    return f_mean * (1.0 - penalty)


def corpus_meteor(candidates: list[Sequence[str]], references: list[Sequence[str]],
                  alpha: float = 0.9, beta: float = 3.0, gamma: float = 0.5) -> float:
    """Mean METEOR over a corpus of (candidate, reference) pairs."""
    if not candidates or len(candidates) != len(references):
        raise ValueError("candidates and references must be equal-length, non-empty lists")
    scores = [meteor(c, r, alpha, beta, gamma) for c, r in zip(candidates, references)]
    return sum(scores) / len(scores)
