"""Classification-style evaluation of MPI function insertion (RQ1 + RQ2).

The paper scores a prediction as follows (Section VI-A):

* **TP** — the model inserts an MPI function at a location and the same
  function appears in the ground truth within one line of that location
  ("one-line tolerance").
* **FP** — the model inserts an MPI function but the ground truth has no
  matching function within tolerance (wrong function, or wrong location).
* **FN** — the ground truth contains an MPI call the model failed to produce.
* TN is out of scope (the focus is on generated functions).

From the TP/FP/FN counts, precision, recall and F1 are computed twice: over
all MPI functions (**M-***) and restricted to the MPI Common Core
(**MCC-***), matching Table II's rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..mpiknow.registry import is_common_core, is_mpi_call_name

_MPI_CALL_RE = re.compile(r"\b(MPI_[A-Za-z_0-9]+)\s*\(")


@dataclass(frozen=True)
class MPICallSite:
    """One MPI call occurrence: function name + 1-based line number."""

    function: str
    line: int


def extract_call_sites(code: str) -> list[MPICallSite]:
    """Extract every MPI call site from program text, in source order."""
    sites: list[MPICallSite] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        for name in _MPI_CALL_RE.findall(line):
            if is_mpi_call_name(name):
                sites.append(MPICallSite(function=name, line=lineno))
    return sites


@dataclass
class MatchCounts:
    """TP/FP/FN tallies, overall and per function."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    per_function: dict[str, "MatchCounts"] = field(default_factory=dict)

    def _bucket(self, function: str) -> "MatchCounts":
        if function not in self.per_function:
            self.per_function[function] = MatchCounts()
        return self.per_function[function]

    def add_tp(self, function: str) -> None:
        self.tp += 1
        self._bucket(function).tp += 1

    def add_fp(self, function: str) -> None:
        self.fp += 1
        self._bucket(function).fp += 1

    def add_fn(self, function: str) -> None:
        self.fn += 1
        self._bucket(function).fn += 1

    def merge(self, other: "MatchCounts") -> None:
        """Accumulate another example's counts into this one."""
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        for name, counts in other.per_function.items():
            bucket = self._bucket(name)
            bucket.tp += counts.tp
            bucket.fp += counts.fp
            bucket.fn += counts.fn

    # ------------------------------------------------------------- metrics

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def restricted(self, predicate) -> "MatchCounts":
        """Counts restricted to functions satisfying ``predicate`` (e.g. the
        MPI Common Core)."""
        out = MatchCounts()
        for name, counts in self.per_function.items():
            if not predicate(name):
                continue
            out.tp += counts.tp
            out.fp += counts.fp
            out.fn += counts.fn
            out.per_function[name] = MatchCounts(tp=counts.tp, fp=counts.fp, fn=counts.fn)
        return out


def match_call_sites(
    predicted: list[MPICallSite],
    reference: list[MPICallSite],
    *,
    line_tolerance: int = 1,
) -> MatchCounts:
    """Match predicted call sites against reference sites.

    Matching is greedy in source order: each predicted site claims the nearest
    unclaimed reference site with the same function name within
    ``line_tolerance`` lines.  Unclaimed predictions are FPs; unclaimed
    references are FNs.
    """
    counts = MatchCounts()
    available = list(range(len(reference)))

    for site in predicted:
        best_idx: int | None = None
        best_distance: int | None = None
        for ref_pos in available:
            ref = reference[ref_pos]
            if ref.function != site.function:
                continue
            distance = abs(ref.line - site.line)
            if distance > line_tolerance:
                continue
            if best_distance is None or distance < best_distance:
                best_idx = ref_pos
                best_distance = distance
        if best_idx is not None:
            available.remove(best_idx)
            counts.add_tp(site.function)
        else:
            counts.add_fp(site.function)

    for ref_pos in available:
        counts.add_fn(reference[ref_pos].function)
    return counts


def evaluate_program(predicted_code: str, reference_code: str, *,
                     line_tolerance: int = 1) -> MatchCounts:
    """Extract call sites from both programs and match them."""
    return match_call_sites(
        extract_call_sites(predicted_code),
        extract_call_sites(reference_code),
        line_tolerance=line_tolerance,
    )


@dataclass
class ClassificationScores:
    """The six Table II classification rows."""

    m_f1: float
    m_precision: float
    m_recall: float
    mcc_f1: float
    mcc_precision: float
    mcc_recall: float

    def as_dict(self) -> dict[str, float]:
        return {
            "M-F1": self.m_f1,
            "M-Precision": self.m_precision,
            "M-Recall": self.m_recall,
            "MCC-F1": self.mcc_f1,
            "MCC-Precision": self.mcc_precision,
            "MCC-Recall": self.mcc_recall,
        }


def scores_from_counts(counts: MatchCounts) -> ClassificationScores:
    """Compute M-* and MCC-* scores from accumulated counts."""
    core = counts.restricted(is_common_core)
    return ClassificationScores(
        m_f1=counts.f1,
        m_precision=counts.precision,
        m_recall=counts.recall,
        mcc_f1=core.f1,
        mcc_precision=core.precision,
        mcc_recall=core.recall,
    )
