"""ROUGE-L (longest-common-subsequence F-measure) over code tokens."""

from __future__ import annotations

from typing import Sequence


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of ``a`` and ``b``.

    Linear-memory dynamic programme (two rows).
    """
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0] * (len(b) + 1)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def rouge_l(candidate: Sequence[str], reference: Sequence[str],
            beta: float = 1.2) -> float:
    """ROUGE-L F-measure between a candidate and a reference token sequence."""
    if not candidate or not reference:
        return 0.0
    lcs = lcs_length(candidate, reference)
    if lcs == 0:
        return 0.0
    precision = lcs / len(candidate)
    recall = lcs / len(reference)
    denom = recall + (beta ** 2) * precision
    if denom == 0:
        return 0.0
    return (1 + beta ** 2) * precision * recall / denom


def corpus_rouge_l(candidates: list[Sequence[str]], references: list[Sequence[str]],
                   beta: float = 1.2) -> float:
    """Mean ROUGE-L over a corpus of (candidate, reference) pairs."""
    if not candidates or len(candidates) != len(references):
        raise ValueError("candidates and references must be equal-length, non-empty lists")
    scores = [rouge_l(c, r, beta) for c, r in zip(candidates, references)]
    return sum(scores) / len(scores)
