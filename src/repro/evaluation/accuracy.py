"""Exact-match accuracy (the ACC row of Table II)."""

from __future__ import annotations

from typing import Sequence


def exact_match(candidate: Sequence[str], reference: Sequence[str]) -> bool:
    """True if the candidate token sequence equals the reference exactly."""
    return list(candidate) == list(reference)


def exact_match_accuracy(candidates: list[Sequence[str]],
                         references: list[Sequence[str]]) -> float:
    """Fraction of examples whose generated token sequence matches the label
    exactly (the strictest Table II metric; the paper reports 0.57)."""
    if not candidates or len(candidates) != len(references):
        raise ValueError("candidates and references must be equal-length, non-empty lists")
    hits = sum(1 for c, r in zip(candidates, references) if exact_match(c, r))
    return hits / len(candidates)
