"""Verified advice: simulate-and-rerank verification of decode candidates.

The package closes the loop between the model and the simulated MPI
runtime: candidates are materialised into runnable C
(:mod:`repro.verify.materialize`), executed across a sweep of rank counts
against the serial original's captured output
(:mod:`repro.verify.runner`), folded into structured verdicts
(:mod:`repro.verify.verdict`), and reranked so the best *verified*
candidate wins (:mod:`repro.verify.rerank`).  A seeded adversarial fuzz
fleet (:mod:`repro.verify.fuzz`) holds the whole pipeline — and the
lexer/parser/advisor front end — to a no-crash contract.
"""

from .materialize import materialize_candidate
from .rerank import (
    MAX_CANDIDATES,
    MAX_RANK_SWEEP,
    MAX_VERIFY_RANKS,
    VerifyConfig,
    verify_candidates,
)
from .runner import (
    Budget,
    ReferenceError,
    capture_reference,
    numeric_values,
    outputs_match,
    run_candidate,
)
from .verdict import (
    VERDICT_STATUSES,
    RankDiagnostic,
    VerificationReport,
    Verdict,
)

__all__ = [
    "MAX_CANDIDATES",
    "MAX_RANK_SWEEP",
    "MAX_VERIFY_RANKS",
    "VERDICT_STATUSES",
    "Budget",
    "RankDiagnostic",
    "ReferenceError",
    "VerificationReport",
    "Verdict",
    "VerifyConfig",
    "capture_reference",
    "materialize_candidate",
    "numeric_values",
    "outputs_match",
    "run_candidate",
    "verify_candidates",
]
