"""Seeded adversarial program generator and fuzz fleet.

Property-based fuzzing for the verification pipeline: each
:class:`FuzzCase` pairs a generated **serial** C program (the reference)
with a **parallel candidate** derived from it — either a correct strided
MPI port, or a deliberate mutant (dropped reduction, wrong reduction
operator, rank-conditional deadlock, truncated source) whose expected
verdict is known by construction.  The generator mixes in the adversarial
features the pipeline has to survive: nested loops, pointer aliasing,
mixed int/double arithmetic and degenerate loop bounds (``n = 0`` and
``n = 1`` included).

The fleet (:func:`run_fleet`) drives every case through the full
simulate-and-rerank pipeline *and* through the lexer / parser / suggestion
extractor, holding the subsystem to its contract: every case must verify
or fail with a structured verdict — never an uncaught exception.  All
contributions are positive dyadic rationals (exact in double arithmetic),
so correct ports match the serial reference exactly and the wrong-operator
mutant is guaranteed to diverge on two or more ranks.

Run as a CLI for the CI smoke: ``python -m repro.verify.fuzz --seed 7
--cases 25``.
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass, field

from .rerank import VerifyConfig, verify_candidates
from .verdict import VerificationReport

#: Mutation kinds and the verdict each one must produce.
EXPECTED_VERDICTS = {
    "correct": "equivalent",
    "dropped_reduce": "diverged",
    "wrong_op": "diverged",
    "deadlock": "deadlocked",
    "parse_error": "parse_error",
}

#: Loop bounds for correct cases — degenerate values included on purpose.
_CORRECT_BOUNDS = (0, 1, 2, 5, 8, 13, 16, 100)
#: Mutant bounds start at 8 so every rank of a 4-rank sweep gets at least
#: two loop iterations: partial sums are then strictly positive, which is
#: what guarantees dropped/wrong reductions actually diverge.
_MUTANT_BOUNDS = (8, 12, 16, 24)


@dataclass(frozen=True)
class FuzzCase:
    """One generated (serial reference, parallel candidate) pair."""

    name: str
    seed: int
    kind: str
    body: str
    n: int
    serial_source: str
    parallel_source: str

    @property
    def expect(self) -> str:
        return EXPECTED_VERDICTS[self.kind]


# ---------------------------------------------------------------- templates


def _body(kind: str) -> tuple[str, str, str]:
    """(extra declarations, loop body, whether ``j`` is needed)."""
    if kind == "weighted":
        return "", "        acc = acc + ((double) i * 0.5 + 1.25);", ""
    if kind == "nested":
        return "", ("        for (j = 0; j < 3; j++) {\n"
                    "            acc = acc + ((double) (i + j) * 0.25);\n"
                    "        }"), "j"
    if kind == "alias":
        decls = ("    double *vals = (double *) malloc((n + 1) * sizeof(double));\n"
                 "    double *alias = vals;")
        return decls, ("        vals[i] = (double) i * 0.5;\n"
                       "        acc = acc + (alias[i] + 0.25);"), ""
    if kind == "mixed":
        return "", ("        w = i % 7;\n"
                    "        acc = acc + ((double) w + 0.5);"), "w"
    raise ValueError(f"unknown body kind {kind!r}")


def _serial_source(body_kind: str, n: int) -> str:
    decls, body, extra = _body(body_kind)
    extra_decl = f"    int {extra};\n" if extra else ""
    decls = decls + "\n" if decls else ""
    return (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n"
        "int main(int argc, char **argv) {\n"
        "    int i;\n"
        f"{extra_decl}"
        f"    int n = {n};\n"
        "    double acc = 0.0;\n"
        f"{decls}"
        "    for (i = 0; i < n; i++) {\n"
        f"{body}\n"
        "    }\n"
        '    printf("result = %f\\n", acc);\n'
        "    return 0;\n"
        "}\n"
    )


def _parallel_source(body_kind: str, n: int, mutation: str) -> str:
    decls, body, extra = _body(body_kind)
    extra_decl = f"    int {extra};\n" if extra else ""
    decls = decls + "\n" if decls else ""
    reduce_stmt = ("    MPI_Reduce(&acc, &total, 1, MPI_DOUBLE, MPI_SUM, 0, "
                   "MPI_COMM_WORLD);\n")
    printed = "total"
    if mutation == "dropped_reduce":
        reduce_stmt = ""
        printed = "acc"
    elif mutation == "wrong_op":
        reduce_stmt = ("    MPI_Reduce(&acc, &total, 1, MPI_DOUBLE, MPI_MAX, 0, "
                       "MPI_COMM_WORLD);\n")
    elif mutation == "deadlock":
        reduce_stmt = ("    if (rank != 1) {\n"
                       "        MPI_Reduce(&acc, &total, 1, MPI_DOUBLE, MPI_SUM, "
                       "0, MPI_COMM_WORLD);\n"
                       "    }\n")
    source = (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n"
        "#include <mpi.h>\n"
        "int main(int argc, char **argv) {\n"
        "    int rank, size, i;\n"
        f"{extra_decl}"
        f"    int n = {n};\n"
        "    double acc = 0.0;\n"
        "    double total = 0.0;\n"
        f"{decls}"
        "    MPI_Init(&argc, &argv);\n"
        "    MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n"
        "    MPI_Comm_size(MPI_COMM_WORLD, &size);\n"
        "    for (i = rank; i < n; i += size) {\n"
        f"{body}\n"
        "    }\n"
        f"{reduce_stmt}"
        "    if (rank == 0) {\n"
        f'        printf("result = %f\\n", {printed});\n'
        "    }\n"
        "    MPI_Finalize();\n"
        "    return 0;\n"
        "}\n"
    )
    if mutation == "parse_error":
        # Chop the closing brace and the return: structurally broken, but
        # still lexes — the parser, not the lexer, must reject it.
        source = source.rsplit("    return 0;", 1)[0]
    return source


# ---------------------------------------------------------------- generator


def fuzz_case(seed: int, index: int) -> FuzzCase:
    """Deterministically generate case ``index`` of the ``seed`` corpus."""
    rng = random.Random((seed << 20) ^ index)
    kind = rng.choices(list(EXPECTED_VERDICTS),
                       weights=(40, 16, 14, 15, 15))[0]
    body_kind = rng.choice(("weighted", "nested", "alias", "mixed"))
    bounds = _CORRECT_BOUNDS if kind == "correct" else _MUTANT_BOUNDS
    n = rng.choice(bounds)
    return FuzzCase(
        name=f"fuzz-{seed}-{index:03d}-{kind}-{body_kind}-n{n}",
        seed=seed,
        kind=kind,
        body=body_kind,
        n=n,
        serial_source=_serial_source(body_kind, n),
        parallel_source=_parallel_source(body_kind, n, kind),
    )


def fuzz_corpus(seed: int, count: int) -> list[FuzzCase]:
    """``count`` deterministic cases for ``seed``."""
    return [fuzz_case(seed, index) for index in range(count)]


# -------------------------------------------------------------------- fleet


@dataclass
class FleetResult:
    """Aggregate outcome of running a fuzz corpus through the pipeline."""

    total: int = 0
    matched: int = 0
    by_status: dict[str, int] = field(default_factory=dict)
    #: (case name, expected verdict, observed verdict)
    mismatches: list[tuple[str, str, str]] = field(default_factory=list)
    #: (case name, stage, exception) — must stay empty; any entry is a bug.
    crashes: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.crashes


def _exercise_frontend(case: FuzzCase, result: FleetResult) -> None:
    """Run both sources through the lexer/parser/advisor front end.

    Malformed sources must come back as diagnostics, never exceptions —
    the same contract the corpus pipeline holds the front end to.
    """
    from ..clang.parser import parse_source_with_diagnostics
    from ..mpirical.suggestions import extract_suggestions
    from ..tokenization.code_tokenizer import tokenize_code

    for stage, action in (
        ("lexer", lambda: (tokenize_code(case.serial_source),
                           tokenize_code(case.parallel_source))),
        ("parser", lambda: (parse_source_with_diagnostics(case.serial_source),
                            parse_source_with_diagnostics(case.parallel_source))),
        ("advisor", lambda: extract_suggestions(case.serial_source,
                                                case.parallel_source)),
    ):
        try:
            action()
        except Exception as exc:  # noqa: BLE001 - the property under test
            result.crashes.append((case.name, stage,
                                   f"{type(exc).__name__}: {exc}"))


def run_fleet(cases: list[FuzzCase], *, sim_timeout: float = 1.0,
              frontend: bool = True) -> FleetResult:
    """Verify every case and compare verdicts against expectations."""
    result = FleetResult(total=len(cases))
    config_timeout = sim_timeout * 4 + 2.0
    for case in cases:
        if frontend:
            _exercise_frontend(case, result)
        config = VerifyConfig(ranks=(1, 2, 4), tolerance=1e-6,
                              timeout=config_timeout, sim_timeout=sim_timeout)
        try:
            report = verify_candidates(case.serial_source,
                                       [case.parallel_source], config=config)
        except Exception as exc:  # noqa: BLE001 - the property under test
            result.crashes.append((case.name, "verify",
                                   f"{type(exc).__name__}: {exc}"))
            continue
        observed = _observed_status(report)
        result.by_status[observed] = result.by_status.get(observed, 0) + 1
        if observed == case.expect:
            result.matched += 1
        else:
            result.mismatches.append((case.name, case.expect, observed))
    return result


def _observed_status(report: VerificationReport) -> str:
    if report.status == "skipped" or not report.verdicts:
        return "skipped"
    return report.verdicts[0].status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the adversarial fuzz fleet against repro.verify")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cases", type=int, default=25)
    parser.add_argument("--sim-timeout", type=float, default=1.0)
    args = parser.parse_args(argv)

    cases = fuzz_corpus(args.seed, args.cases)
    result = run_fleet(cases, sim_timeout=args.sim_timeout)
    print(f"fuzz fleet: {result.total} cases, {result.matched} matched "
          f"expectations, statuses {dict(sorted(result.by_status.items()))}")
    for name, expected, observed in result.mismatches:
        print(f"  MISMATCH {name}: expected {expected}, observed {observed}")
    for name, stage, error in result.crashes:
        print(f"  CRASH {name} [{stage}]: {error}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
