"""Materialising decode candidates into runnable C programs.

The model's candidates arrive in two shapes — a full generated program
(:class:`repro.mpirical.pipeline.PredictionResult`) or plain source text —
and not every generation is directly runnable.  Materialisation picks the
best runnable rendering of each candidate:

1. the generated program itself, re-standardised, when it parses cleanly;
2. otherwise the original program with the candidate's extracted
   :class:`repro.mpirical.suggestions.MPISuggestion` insertions applied
   (a malformed generation often still carries well-formed MPI insertions);
3. otherwise the raw generated text, which the runner will report as a
   structured ``parse_error`` verdict rather than an exception.
"""

from __future__ import annotations

from ..clang.codegen import standardize
from ..clang.parser import parses_cleanly
from ..mpirical.pipeline import PredictionResult
from ..mpirical.suggestions import apply_suggestions


def materialize_candidate(original: str, candidate: "PredictionResult | str") -> str:
    """The best runnable C rendering of ``candidate`` against ``original``."""
    if isinstance(candidate, str):
        return standardize(candidate) if parses_cleanly(candidate) else candidate
    generated = candidate.generated_code
    if parses_cleanly(generated):
        return standardize(generated)
    if candidate.suggestions:
        patched = apply_suggestions(original, candidate.suggestions)
        if parses_cleanly(patched):
            return standardize(patched)
    return generated
