"""Structured verdicts: what happened when a candidate ran under simulation.

A :class:`Verdict` records the outcome of taking **one** candidate program
through the execution pipeline (parse → run on a sweep of rank counts →
compare against the serial reference output); a :class:`VerificationReport`
aggregates the verdicts of a whole candidate set plus the rerank decision,
and renders the wire-format ``verification`` object the v1 API attaches to
responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every status a candidate verdict can carry, roughly worst-first.
VERDICT_STATUSES = (
    "parse_error",    # candidate does not parse in strict mode
    "runtime_error",  # a rank raised or exited non-zero
    "deadlocked",     # a blocking MPI call never completed
    "diverged",       # ran everywhere, output != serial reference
    "timeout",        # verification budget expired before a verdict
    "equivalent",     # ran on every rank count, output matches the reference
)


@dataclass(frozen=True)
class RankDiagnostic:
    """Per-rank detail from the run that decided a verdict."""

    rank: int
    exit_code: int
    error: str | None = None
    #: The blocking MPI call the rank was stuck in (deadlocks only).
    blocked_in: str | None = None

    def to_dict(self) -> dict:
        data: dict = {"rank": self.rank, "exit_code": self.exit_code}
        if self.error is not None:
            data["error"] = self.error
        if self.blocked_in is not None:
            data["blocked_in"] = self.blocked_in
        return data


@dataclass
class Verdict:
    """Outcome of verifying one candidate program."""

    candidate: int
    status: str
    detail: str = ""
    #: Rank counts that were actually executed (in sweep order).
    ranks_run: tuple[int, ...] = ()
    wall_ms: float = 0.0
    #: Per-rank diagnostics from the first failing run (empty on success).
    diagnostics: list[RankDiagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.status not in VERDICT_STATUSES:
            raise ValueError(f"unknown verdict status {self.status!r}")

    @property
    def equivalent(self) -> bool:
        return self.status == "equivalent"

    def to_dict(self) -> dict:
        data: dict = {
            "candidate": self.candidate,
            "status": self.status,
            "ranks_run": list(self.ranks_run),
            "wall_ms": round(self.wall_ms, 3),
        }
        if self.detail:
            data["detail"] = self.detail
        if self.diagnostics:
            data["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        return data


@dataclass
class VerificationReport:
    """Aggregate outcome of verifying (and reranking) a candidate set.

    ``status`` is the response-level verdict: ``"verified"`` (the winning
    candidate is equivalent under simulation), ``"failed"`` (every candidate
    failed) or ``"skipped"`` (verification could not run — budget exhausted,
    the original program did not simulate, or streaming).  The wire form
    (:meth:`to_payload`) spells the tri-state as
    ``verified: true | false | "skipped"`` per the v1.2 contract.
    """

    status: str
    reason: str = ""
    winner_index: int = 0
    reranked: bool = False
    verdicts: list[Verdict] = field(default_factory=list)
    wall_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in ("verified", "failed", "skipped"):
            raise ValueError(f"unknown report status {self.status!r}")

    @classmethod
    def skipped(cls, reason: str) -> "VerificationReport":
        return cls(status="skipped", reason=reason)

    @property
    def verified(self) -> bool:
        return self.status == "verified"

    def to_payload(self) -> dict:
        """The ``verification`` object attached to v1.2 responses."""
        if self.status == "skipped":
            payload: dict = {"verified": "skipped"}
        else:
            payload = {
                "verified": self.status == "verified",
                "winner": self.winner_index,
                "reranked": self.reranked,
            }
        if self.reason:
            payload["reason"] = self.reason
        if self.verdicts:
            payload["verdicts"] = [v.to_dict() for v in self.verdicts]
        payload["wall_ms"] = round(self.wall_ms, 3)
        return payload
