"""Executing candidates under the simulated MPI runtime.

The runner owns the execution half of verification: capture the serial
reference output, run a materialised candidate across a sweep of rank
counts, compare what it prints against the reference, and fold the outcome
into a structured :class:`repro.verify.verdict.Verdict` — **never** an
exception.  Numerical comparison is tolerance-based over the numbers each
program prints (in document order), falling back to exact text comparison
for number-free output.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass

from ..clang.parser import parses_cleanly
from ..mpisim import run_failure_message, run_program
from .verdict import RankDiagnostic, Verdict

#: Floats (with optional exponent) and bare integers, in document order.
_NUMBER_RE = re.compile(r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")

#: Default per-simulation timeout (seconds); deliberately far below the
#: simulator's 30s default — verification sweeps many runs per request.
DEFAULT_SIM_TIMEOUT = 5.0


def numeric_values(text: str) -> list[float]:
    """Every number printed in ``text``, in order, as floats."""
    return [float(m) for m in _NUMBER_RE.findall(text)]


def outputs_match(reference: str, observed: str, tolerance: float = 1e-6) -> bool:
    """Whether ``observed`` output is numerically equivalent to ``reference``.

    Numbers compare pairwise within ``tolerance`` (absolute, plus the same
    tolerance relatively for large magnitudes); output without any numbers
    on either side compares as stripped text.
    """
    ref_values = numeric_values(reference)
    obs_values = numeric_values(observed)
    if not ref_values and not obs_values:
        return reference.strip() == observed.strip()
    if len(ref_values) != len(obs_values):
        return False
    return all(
        abs(r - o) <= tolerance + tolerance * max(abs(r), abs(o))
        for r, o in zip(ref_values, obs_values)
    )


class ReferenceError(Exception):
    """The serial reference program itself could not produce an output."""


@dataclass
class Budget:
    """A monotonic wall-clock deadline shared by a whole verification."""

    deadline: float

    @classmethod
    def from_timeout(cls, seconds: float) -> "Budget":
        return cls(deadline=time.monotonic() + seconds)

    def remaining(self) -> float:
        return self.deadline - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


def capture_reference(original: str, *, timeout: float = DEFAULT_SIM_TIMEOUT) -> str:
    """Run ``original`` serially (one simulated rank) and return its stdout.

    Raises :class:`ReferenceError` when the original does not parse or does
    not run — verification is then skipped, because there is nothing sound
    to compare candidates against.
    """
    if not parses_cleanly(original):
        raise ReferenceError("original program does not parse cleanly")
    run = run_program(original, num_ranks=1, timeout=timeout)
    if not run.ok:
        raise ReferenceError(
            f"original program failed under simulation: {run_failure_message(run)}")
    return run.stdout


def _classify_failure(run) -> tuple[str, list[RankDiagnostic]]:
    """Map a failed run onto (status, per-rank diagnostics)."""
    diagnostics = [
        RankDiagnostic(rank=r.rank, exit_code=r.exit_code, error=r.error,
                       blocked_in=r.blocked_in)
        for r in run.ranks if r.error is not None or r.exit_code != 0
    ]
    deadlocked = any(r.error is not None
                     and ("deadlock" in r.error.lower()
                          or "SimulationDeadlock" in r.error)
                     for r in run.ranks)
    return ("deadlocked" if deadlocked else "runtime_error"), diagnostics


def run_candidate(source: str, reference_stdout: str, *, candidate: int = 0,
                  ranks: tuple[int, ...] = (1, 2, 4), tolerance: float = 1e-6,
                  sim_timeout: float = DEFAULT_SIM_TIMEOUT,
                  budget: Budget | None = None) -> Verdict:
    """Verify one materialised candidate program end to end.

    The rank sweep runs in the given order and stops at the first failure
    (the cheapest counts go first, so a broken candidate fails fast); a
    candidate is ``equivalent`` only when **every** rank count runs cleanly
    and matches the reference.  ``budget``, when given, bounds the whole
    sweep: runs use whatever wall-clock remains, and an exhausted budget
    yields a ``timeout`` verdict instead of starting another simulation.
    """
    started = time.monotonic()

    def done(status: str, detail: str = "", ranks_run: tuple[int, ...] = (),
             diagnostics: list[RankDiagnostic] | None = None) -> Verdict:
        return Verdict(candidate=candidate, status=status, detail=detail,
                       ranks_run=ranks_run,
                       wall_ms=(time.monotonic() - started) * 1000.0,
                       diagnostics=diagnostics or [])

    if not parses_cleanly(source):
        return done("parse_error", "candidate does not parse cleanly")

    ranks_run: list[int] = []
    for num_ranks in ranks:
        timeout = sim_timeout
        if budget is not None:
            remaining = budget.remaining()
            if remaining <= 0.05:
                return done("timeout",
                            f"verification budget exhausted before the "
                            f"{num_ranks}-rank run", tuple(ranks_run))
            timeout = min(sim_timeout, remaining)
        try:
            run = run_program(source, num_ranks=num_ranks, timeout=timeout)
        except Exception as exc:  # noqa: BLE001 - a verdict, never a crash
            return done("runtime_error",
                        f"simulator error on {num_ranks} ranks: "
                        f"{type(exc).__name__}: {exc}", tuple(ranks_run))
        ranks_run.append(num_ranks)
        if not run.ok:
            status, diagnostics = _classify_failure(run)
            return done(status,
                        f"{num_ranks} ranks: {run_failure_message(run)}",
                        tuple(ranks_run), diagnostics)
        if not outputs_match(reference_stdout, run.stdout, tolerance):
            return done("diverged",
                        f"{num_ranks} ranks: output {run.stdout.strip()!r} "
                        f"does not match the serial reference "
                        f"{reference_stdout.strip()!r}", tuple(ranks_run))
    return done("equivalent", ranks_run=tuple(ranks_run))
