"""Simulate-and-rerank: pick the best *verified* candidate.

This is the top of the verification pipeline.  Given the original program
and an ordered candidate list (best-first in the model's opinion), it
captures the serial reference output, takes each candidate through
materialisation and the rank-sweep runner, and selects the first candidate
that is equivalent under simulation — so a runner-up hypothesis that
actually works beats a top hypothesis that deadlocks.

Everything is bounded: one wall-clock budget covers the reference capture
and every candidate run, and an exhausted budget degrades to ``timeout``
verdicts (or a wholly ``skipped`` report), never an exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .materialize import materialize_candidate
from .runner import (
    Budget,
    DEFAULT_SIM_TIMEOUT,
    ReferenceError,
    capture_reference,
    run_candidate,
)
from .verdict import VerificationReport

#: Hard caps shared by every entry point (HTTP, jobs, fuzz fleet): the rank
#: sweep and candidate count multiply simulation cost, so unbounded client
#: values would be a denial-of-service knob.
MAX_VERIFY_RANKS = 8
MAX_RANK_SWEEP = 4
MAX_CANDIDATES = 8


@dataclass(frozen=True)
class VerifyConfig:
    """Bounds for one verification: rank sweep, tolerance and budget."""

    ranks: tuple[int, ...] = (1, 2, 4)
    tolerance: float = 1e-6
    #: Total wall-clock budget (seconds) for reference + every candidate.
    timeout: float = 10.0
    #: Per-simulation cap (seconds), inside the overall budget.
    sim_timeout: float = DEFAULT_SIM_TIMEOUT

    def validate(self) -> None:
        if not self.ranks or len(self.ranks) > MAX_RANK_SWEEP:
            raise ValueError(
                f"rank sweep must have 1..{MAX_RANK_SWEEP} entries")
        for count in self.ranks:
            if not 1 <= count <= MAX_VERIFY_RANKS:
                raise ValueError(
                    f"rank counts must be in [1, {MAX_VERIFY_RANKS}]")
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        if self.timeout <= 0 or self.sim_timeout <= 0:
            raise ValueError("timeouts must be > 0")


def verify_candidates(original: str, candidates: list, *,
                      config: VerifyConfig | None = None) -> VerificationReport:
    """Verify ``candidates`` (best-first) against ``original`` and rerank.

    Returns a :class:`VerificationReport` whose ``winner_index`` is the
    first equivalent candidate in model order — candidate 0 when all of
    them fail (the model's choice stands, flagged unverified).  The report
    is ``skipped`` when the serial reference cannot be captured or the
    budget expires before any candidate produced a verdict.
    """
    config = config or VerifyConfig()
    config.validate()
    started = time.monotonic()
    budget = Budget.from_timeout(config.timeout)

    if not candidates:
        return VerificationReport.skipped("no candidates to verify")
    try:
        reference = capture_reference(
            original, timeout=min(config.sim_timeout, config.timeout))
    except ReferenceError as exc:
        report = VerificationReport.skipped(str(exc))
        report.wall_ms = (time.monotonic() - started) * 1000.0
        return report

    verdicts = []
    for index, candidate in enumerate(candidates):
        source = materialize_candidate(original, candidate)
        verdicts.append(run_candidate(
            source, reference, candidate=index, ranks=config.ranks,
            tolerance=config.tolerance, sim_timeout=config.sim_timeout,
            budget=budget))

    if all(v.status == "timeout" for v in verdicts):
        report = VerificationReport.skipped(
            "verification budget exhausted before any candidate ran")
        report.verdicts = verdicts
        report.wall_ms = (time.monotonic() - started) * 1000.0
        return report

    winner = next((v.candidate for v in verdicts if v.equivalent), 0)
    verified = verdicts[winner].equivalent
    report = VerificationReport(
        status="verified" if verified else "failed",
        reason="" if verified else verdicts[0].detail,
        winner_index=winner,
        reranked=winner != 0,
        verdicts=verdicts,
        wall_ms=(time.monotonic() - started) * 1000.0,
    )
    return report
