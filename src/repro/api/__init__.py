"""repro.api — the versioned (v1) advising contract.

``repro.api.contract``  AdviseRequest / AdviseResponse / ApiError dataclasses
                        (strict ``from_dict`` validation, wire round-trips)

The decoding strategies the contract carries live in
:mod:`repro.model.decoding`; the serving implementation of the contract in
:mod:`repro.serving`.

Quick start
-----------
>>> from repro.api import AdviseRequest
>>> from repro.model.decoding import SampleStrategy
>>> request = AdviseRequest(code=my_c_source,
...                         strategy=SampleStrategy(temperature=0.8, seed=7))
>>> response = service.advise_request(request)   # an AdviseResponse
>>> response.to_dict()["strategy"]["name"]
'sample'
"""

from .contract import (
    API_VERSION,
    MAX_BATCH_ITEMS,
    AdviseRequest,
    AdviseResponse,
    ApiError,
    VerifyOptions,
    advice_items,
    parse_batch_advise,
    parse_legacy_advise,
    strategy_matrix,
)

__all__ = [
    "API_VERSION",
    "MAX_BATCH_ITEMS",
    "AdviseRequest",
    "AdviseResponse",
    "ApiError",
    "VerifyOptions",
    "advice_items",
    "parse_batch_advise",
    "parse_legacy_advise",
    "strategy_matrix",
]
