"""repro.api v1 — the typed request/response contract for advising.

One versioned contract replaces the per-layer keyword surfaces that grew
around advising (``beam_size=`` on the service, raw JSON fields on
``/advise``, ``generation=`` on the pipeline):

* :class:`AdviseRequest` — what a caller asks for: a source buffer plus a
  :class:`repro.model.decoding.DecodingStrategy`.  ``from_dict`` is strict
  (unknown fields are rejected by name) and :meth:`AdviseRequest.validate`
  is the **single** place parameter validation happens, so the HTTP server
  and the in-process service cannot drift.
* :class:`AdviseResponse` — what comes back: the generated program, the
  anchored advice list, parse diagnostics, the canonical strategy the decode
  ran under, and the serving metadata (``cached``/``latency_ms``/
  ``cache_key``).
* :class:`ApiError` — the one error type every entry point raises for an
  invalid request, carrying the structured envelope
  (``{"error": {"code", "message", "field"}}``) and the HTTP status:
  **400** for malformed requests (wrong types, unknown fields, missing
  ``code``), **422** for well-formed requests whose parameter values are out
  of range (NaN/inf/negative knobs, oversized beams).

All three round-trip losslessly through ``to_dict``/``from_dict`` —
``tests/test_api_contract.py`` holds every registered strategy to
``AdviseRequest.from_dict(r.to_dict()) == r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..model.decoding import (
    DecodingStrategy,
    GreedyStrategy,
    StrategyParamError,
    registered_strategies,
    strategy_from_dict,
)

API_VERSION = "v1"


class ApiError(Exception):
    """A structured, client-facing request error.

    ``code`` is a stable machine-readable slug, ``message`` the human
    explanation, ``field`` the offending request field (or None when the
    problem is the request as a whole), ``status`` the HTTP status the
    transport layer should answer with.
    """

    def __init__(self, code: str, message: str, *, field: str | None = None,
                 status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status

    # ----------------------------------------------------------- builders

    @classmethod
    def invalid_request(cls, message: str, *, field: str | None = None) -> "ApiError":
        """A structurally malformed request (wrong shape or types): HTTP 400."""
        return cls("invalid_request", message, field=field, status=400)

    @classmethod
    def invalid_parameter(cls, message: str, *, field: str | None = None) -> "ApiError":
        """A well-formed request with an out-of-range value: HTTP 422."""
        return cls("invalid_parameter", message, field=field, status=422)

    @classmethod
    def not_found(cls, message: str) -> "ApiError":
        return cls("not_found", message, status=404)

    @classmethod
    def internal(cls, message: str) -> "ApiError":
        return cls("internal", message, status=500)

    @classmethod
    def from_strategy_error(cls, exc: StrategyParamError) -> "ApiError":
        """Map a decoding-layer parameter error onto the envelope.

        The split keys on the error's machine-readable ``kind``: type and
        unknown-name failures are malformed requests (400); out-of-range
        values on a well-formed request are 422.
        """
        if exc.kind == "value":
            return cls.invalid_parameter(str(exc), field=exc.field)
        return cls.invalid_request(str(exc), field=exc.field)

    # ------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """The wire envelope: ``{"error": {"code", "message", "field"}}``."""
        return {"error": {"code": self.code, "message": self.message,
                          "field": self.field}}


@dataclass(frozen=True)
class AdviseRequest:
    """One advising request: a source buffer plus its decoding strategy."""

    code: str
    strategy: DecodingStrategy = field(default_factory=GreedyStrategy)

    # ----------------------------------------------------------- validation

    def validate(self) -> "AdviseRequest":
        """Raise :class:`ApiError` unless every field is usable; return self.

        This is the single validation point for *every* entry path (service,
        legacy HTTP route, v1 HTTP routes), including the NaN/inf/negative
        parameter rejection — transports only translate the raised
        :class:`ApiError` into their envelope.
        """
        if not isinstance(self.code, str):
            raise ApiError.invalid_request('"code" must be a string',
                                           field="code")
        if not self.code.strip():
            raise ApiError.invalid_request('"code" must be non-empty C source',
                                           field="code")
        if not isinstance(self.strategy, DecodingStrategy):
            raise ApiError.invalid_request(
                '"strategy" must be a DecodingStrategy', field="strategy")
        try:
            self.strategy.validate()
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        return self

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        return {"code": self.code, "strategy": self.strategy.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdviseRequest":
        """Strict v1 parsing: unknown top-level fields are rejected by name.

        ``strategy`` may be an object (``{"name": "beam", "beam_size": 4}``)
        or a bare strategy name string; absent means greedy.  The returned
        request has already passed :meth:`validate`.
        """
        if not isinstance(data, Mapping):
            raise ApiError.invalid_request("request body must be a JSON object")
        known = {"code", "strategy"}
        for key in data:
            if key not in known:
                raise ApiError.invalid_request(
                    f'unknown field "{key}" (accepted: code, strategy)',
                    field=str(key))
        if "code" not in data:
            raise ApiError.invalid_request('"code" is required', field="code")
        raw_strategy = data.get("strategy", "greedy")
        try:
            strategy = strategy_from_dict(raw_strategy)
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        except TypeError as exc:
            raise ApiError.invalid_request(
                f'invalid "strategy": {exc}', field="strategy") from exc
        return cls(code=data["code"], strategy=strategy).validate()



def parse_legacy_advise(data: Mapping[str, Any],
                        ) -> tuple[str, int | None, float | None]:
    """Parse and validate the pre-v1 ``/advise`` body (``code``/``beam_size``/
    ``length_penalty``).

    Returns the raw ``(code, beam_size, length_penalty)`` triple with absent
    overrides as None — the legacy surface merges partial overrides onto the
    *service's* default generation config
    (:meth:`repro.serving.InferenceService.legacy_strategy`), so resolution
    cannot happen here.  Type errors are 400, out-of-range values 422,
    matching v1.
    """
    from ..model.decoding import MAX_BEAM_SIZE, _require_int, _require_number

    if not isinstance(data, Mapping):
        raise ApiError.invalid_request("request body must be a JSON object")
    code = data.get("code")
    if not isinstance(code, str) or not code.strip():
        raise ApiError.invalid_request('body must be {"code": "<C source>"}',
                                       field="code")
    beam_size = data.get("beam_size")
    length_penalty = data.get("length_penalty")
    try:
        if beam_size is not None:
            _require_int("beam_size", beam_size, minimum=1,
                         maximum=MAX_BEAM_SIZE)
        if length_penalty is not None:
            length_penalty = _require_number("length_penalty", length_penalty,
                                             minimum=0.0)
    except StrategyParamError as exc:
        raise ApiError.from_strategy_error(exc) from exc
    return code, beam_size, length_penalty




@dataclass(frozen=True)
class AdviseResponse:
    """One advising response, transport-agnostic and losslessly serialisable.

    ``advice`` items are plain dicts (the rendered suggestion payloads the
    legacy endpoint always served); ``strategy`` is the wire form of the
    strategy the decode actually ran under (the service default when the
    request didn't pin one).
    """

    generated_code: str
    advice: tuple[dict, ...]
    diagnostics: tuple[str, ...]
    strategy: DecodingStrategy
    cached: bool = False
    latency_ms: float = 0.0
    cache_key: str = ""
    api_version: str = API_VERSION

    def to_dict(self) -> dict:
        return {
            "api_version": self.api_version,
            "generated_code": self.generated_code,
            "advice": [dict(item) for item in self.advice],
            "diagnostics": list(self.diagnostics),
            "strategy": self.strategy.to_dict(),
            "cached": self.cached,
            "latency_ms": self.latency_ms,
            "cache_key": self.cache_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdviseResponse":
        try:
            strategy = strategy_from_dict(data["strategy"])
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        return cls(
            generated_code=data["generated_code"],
            advice=tuple(dict(item) for item in data["advice"]),
            diagnostics=tuple(data["diagnostics"]),
            strategy=strategy,
            cached=bool(data.get("cached", False)),
            latency_ms=float(data.get("latency_ms", 0.0)),
            cache_key=str(data.get("cache_key", "")),
            api_version=str(data.get("api_version", API_VERSION)),
        )

    def to_legacy_dict(self) -> dict:
        """The pre-v1 ``/advise`` body, byte-identical in shape and values.

        The legacy surface spelled the strategy as ``beam_size`` /
        ``length_penalty``; non-beam strategies report the greedy pair
        ``(1, 0.0)`` exactly as the old server did for greedy requests.
        """
        from ..model.decoding import BeamStrategy

        payload = {
            "generated_code": self.generated_code,
            "advice": [dict(item) for item in self.advice],
            "diagnostics": list(self.diagnostics),
            "cached": self.cached,
            "latency_ms": self.latency_ms,
            "cache_key": self.cache_key,
        }
        if isinstance(self.strategy, BeamStrategy):
            payload["beam_size"] = self.strategy.beam_size
            payload["length_penalty"] = self.strategy.length_penalty
        else:
            payload["beam_size"] = 1
            payload["length_penalty"] = 0.0
        return payload


def advice_items(session) -> tuple[dict, ...]:
    """Serialise an :class:`repro.mpirical.AdviceSession`'s advice list.

    This is the one place the advice wire shape is defined; both the legacy
    and v1 endpoints (and :class:`AdviseResponse`) share it.
    """
    from dataclasses import asdict

    return tuple(
        {
            **asdict(item.suggestion),
            "confidence": item.confidence,
            "note": item.note,
            "rendered": item.render(),
        }
        for item in session.advice
    )


def strategy_matrix() -> dict[str, dict]:
    """Registered strategies and their default parameters (docs/clients)."""
    return {name: cls().to_dict() for name, cls in registered_strategies().items()}
