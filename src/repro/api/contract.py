"""repro.api v1 — the typed request/response contract for advising.

One versioned contract replaces the per-layer keyword surfaces that grew
around advising (``beam_size=`` on the service, raw JSON fields on
``/advise``, ``generation=`` on the pipeline):

* :class:`AdviseRequest` — what a caller asks for: a source buffer plus a
  :class:`repro.model.decoding.DecodingStrategy` and (v1.1) an optional
  ``model`` reference — an alias, a registered name, or a fully pinned
  ``name@revision`` (see :mod:`repro.registry`).  A request that omits
  ``model`` is byte-identical to the v1.0 wire form and resolves through the
  registry's ``default`` alias.  ``from_dict`` is strict (unknown fields are
  rejected by name) and :meth:`AdviseRequest.validate` is the **single**
  place parameter validation happens, so the HTTP server and the in-process
  service cannot drift.
* :class:`AdviseResponse` — what comes back: the generated program, the
  anchored advice list, parse diagnostics, the canonical strategy the decode
  ran under, and the serving metadata (``cached``/``latency_ms``/
  ``cache_key``).
* :class:`ApiError` — the one error type every entry point raises for an
  invalid request, carrying the structured envelope
  (``{"error": {"code", "message", "field"}}``) and the HTTP status:
  **400** for malformed requests (wrong types, unknown fields, missing
  ``code``), **422** for well-formed requests whose parameter values are out
  of range (NaN/inf/negative knobs, oversized beams).

All three round-trip losslessly through ``to_dict``/``from_dict`` —
``tests/test_api_contract.py`` holds every registered strategy to
``AdviseRequest.from_dict(r.to_dict()) == r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping

from ..model.decoding import (
    DecodingStrategy,
    GreedyStrategy,
    StrategyParamError,
    registered_strategies,
    strategy_from_dict,
)

API_VERSION = "v1"


class ApiError(Exception):
    """A structured, client-facing request error.

    ``code`` is a stable machine-readable slug, ``message`` the human
    explanation, ``field`` the offending request field (or None when the
    problem is the request as a whole), ``status`` the HTTP status the
    transport layer should answer with.  ``retry_after`` (seconds) is set on
    transient conditions — backpressure 429s and draining/shutdown 503s — and
    the HTTP layer surfaces it as a ``Retry-After`` header so well-behaved
    clients (and the pool router) back off instead of hammering.
    """

    def __init__(self, code: str, message: str, *, field: str | None = None,
                 status: int = 400, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field
        self.status = status
        self.retry_after = retry_after

    # ----------------------------------------------------------- builders

    @classmethod
    def invalid_request(cls, message: str, *, field: str | None = None) -> "ApiError":
        """A structurally malformed request (wrong shape or types): HTTP 400."""
        return cls("invalid_request", message, field=field, status=400)

    @classmethod
    def invalid_parameter(cls, message: str, *, field: str | None = None) -> "ApiError":
        """A well-formed request with an out-of-range value: HTTP 422."""
        return cls("invalid_parameter", message, field=field, status=422)

    @classmethod
    def unknown_model(cls, message: str) -> "ApiError":
        """A well-formed request naming a model the registry cannot resolve
        (unknown name/alias, or a pinned revision that was replaced): 422."""
        return cls("unknown_model", message, field="model", status=422)

    @classmethod
    def not_found(cls, message: str) -> "ApiError":
        return cls("not_found", message, status=404)

    @classmethod
    def internal(cls, message: str) -> "ApiError":
        return cls("internal", message, status=500)

    @classmethod
    def unavailable(cls, message: str, *,
                    retry_after: float = 2.0) -> "ApiError":
        """The server is shutting down (or a subsystem is closed): HTTP 503.

        Distinct from :meth:`internal` — a draining process is not a server
        bug, and a client seeing 503 should retry against a healthy replica
        rather than report an error.  Carries a ``Retry-After`` hint.
        """
        return cls("unavailable", message, status=503,
                   retry_after=retry_after)

    @classmethod
    def queue_full(cls, message: str, *,
                   retry_after: float = 1.0) -> "ApiError":
        """The bounded job queue is at capacity (backpressure): HTTP 429.

        Carries a ``Retry-After`` hint: the backlog drains on the order of a
        decode, so a short pause is usually enough.
        """
        return cls("queue_full", message, status=429, retry_after=retry_after)

    @classmethod
    def quota_exceeded(cls, message: str, *, field: str | None = None,
                       retry_after: float = 1.0) -> "ApiError":
        """One client holds too many in-flight jobs: HTTP 429."""
        return cls("quota_exceeded", message, field=field, status=429,
                   retry_after=retry_after)

    @classmethod
    def expired(cls, message: str) -> "ApiError":
        """A resource that existed but was evicted (TTL/capacity): HTTP 410.

        Tells clients "your job ran, but its results are gone" apart from
        :meth:`not_found`'s "no such job was ever issued".
        """
        return cls("expired", message, status=410)

    @classmethod
    def timeout(cls, message: str) -> "ApiError":
        """A decode exceeded its serving deadline: HTTP 504 semantics."""
        return cls("timeout", message, status=504)

    @classmethod
    def from_strategy_error(cls, exc: StrategyParamError) -> "ApiError":
        """Map a decoding-layer parameter error onto the envelope.

        The split keys on the error's machine-readable ``kind``: type and
        unknown-name failures are malformed requests (400); out-of-range
        values on a well-formed request are 422.
        """
        if exc.kind == "value":
            return cls.invalid_parameter(str(exc), field=exc.field)
        return cls.invalid_request(str(exc), field=exc.field)

    # ------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """The wire envelope: ``{"error": {"code", "message", "field"}}``."""
        return {"error": {"code": self.code, "message": self.message,
                          "field": self.field}}


@dataclass(frozen=True)
class VerifyOptions:
    """The (v1.2) ``verify`` request block: simulate-and-rerank bounds.

    ``ranks`` is the simulated rank-count sweep every candidate must pass,
    ``timeout_ms`` the total wall-clock budget for the whole verification
    (reference capture plus every candidate), ``candidates`` how many decode
    hypotheses to consider (candidate 0 is always the normally-served
    result), ``tolerance`` the numerical equivalence threshold.  The wire
    form accepts ``"verify": true`` (all defaults) or an options object;
    omitting the field keeps the request — and the response shape —
    byte-identical to v1.1.
    """

    ranks: tuple[int, ...] = (1, 2, 4)
    timeout_ms: int = 2000
    candidates: int = 4
    tolerance: float = 1e-6

    #: Hard caps, shared with :mod:`repro.verify` — the sweep and candidate
    #: count multiply simulation cost.
    MAX_RANKS: ClassVar[int] = 8
    MAX_SWEEP: ClassVar[int] = 4
    MAX_CANDIDATES: ClassVar[int] = 8
    MAX_TIMEOUT_MS: ClassVar[int] = 30_000

    def validate(self) -> "VerifyOptions":
        import math

        if (not isinstance(self.ranks, tuple)
                or not all(isinstance(r, int) and not isinstance(r, bool)
                           for r in self.ranks)):
            raise ApiError.invalid_request(
                '"verify.ranks" must be a list of integers',
                field="verify.ranks")
        if not self.ranks or len(self.ranks) > self.MAX_SWEEP:
            raise ApiError.invalid_parameter(
                f'"verify.ranks" must hold 1..{self.MAX_SWEEP} rank counts',
                field="verify.ranks")
        for count in self.ranks:
            if not 1 <= count <= self.MAX_RANKS:
                raise ApiError.invalid_parameter(
                    f'"verify.ranks" entries must be in [1, {self.MAX_RANKS}]',
                    field="verify.ranks")
        if isinstance(self.timeout_ms, bool) or not isinstance(self.timeout_ms, int):
            raise ApiError.invalid_request(
                '"verify.timeout_ms" must be an integer',
                field="verify.timeout_ms")
        if not 1 <= self.timeout_ms <= self.MAX_TIMEOUT_MS:
            raise ApiError.invalid_parameter(
                f'"verify.timeout_ms" must be in [1, {self.MAX_TIMEOUT_MS}]',
                field="verify.timeout_ms")
        if isinstance(self.candidates, bool) or not isinstance(self.candidates, int):
            raise ApiError.invalid_request(
                '"verify.candidates" must be an integer',
                field="verify.candidates")
        if not 1 <= self.candidates <= self.MAX_CANDIDATES:
            raise ApiError.invalid_parameter(
                f'"verify.candidates" must be in [1, {self.MAX_CANDIDATES}]',
                field="verify.candidates")
        if isinstance(self.tolerance, bool) or not isinstance(self.tolerance,
                                                              (int, float)):
            raise ApiError.invalid_request(
                '"verify.tolerance" must be a number', field="verify.tolerance")
        if not math.isfinite(self.tolerance) or self.tolerance < 0:
            raise ApiError.invalid_parameter(
                '"verify.tolerance" must be finite and >= 0',
                field="verify.tolerance")
        return self

    def canonical(self) -> str:
        """Canonical form — the verification half of a verify-cache key."""
        ranks = ",".join(str(r) for r in self.ranks)
        return (f"ranks={ranks};timeout_ms={self.timeout_ms};"
                f"candidates={self.candidates};tolerance={float(self.tolerance)!r}")

    def to_dict(self) -> dict:
        return {"ranks": list(self.ranks), "timeout_ms": self.timeout_ms,
                "candidates": self.candidates, "tolerance": float(self.tolerance)}

    @classmethod
    def from_value(cls, value: Any) -> "VerifyOptions | None":
        """Parse the wire spellings: absent/false → None, true → defaults,
        object → explicit options (unknown keys rejected by name)."""
        if value is None or value is False:
            return None
        if value is True:
            return cls().validate()
        if not isinstance(value, Mapping):
            raise ApiError.invalid_request(
                '"verify" must be true, false, or an options object',
                field="verify")
        known = {"ranks", "timeout_ms", "candidates", "tolerance"}
        for key in value:
            if key not in known:
                raise ApiError.invalid_request(
                    f'unknown field "verify.{key}" (accepted: ranks, '
                    f'timeout_ms, candidates, tolerance)',
                    field=f"verify.{key}")
        ranks = value.get("ranks", [1, 2, 4])
        if not isinstance(ranks, list):
            raise ApiError.invalid_request(
                '"verify.ranks" must be a list of integers',
                field="verify.ranks")
        defaults = cls()
        return cls(
            ranks=tuple(ranks),
            timeout_ms=value.get("timeout_ms", defaults.timeout_ms),
            candidates=value.get("candidates", defaults.candidates),
            tolerance=value.get("tolerance", defaults.tolerance),
        ).validate()


@dataclass(frozen=True)
class AdviseRequest:
    """One advising request: a source buffer, a decoding strategy and an
    optional model reference (None = the registry's ``default`` alias)."""

    code: str
    strategy: DecodingStrategy = field(default_factory=GreedyStrategy)
    #: Alias, registered name, or pinned ``name@revision``.  Omitted (None)
    #: keeps the wire form — and the response shape — identical to v1.0.
    model: str | None = None
    #: v1.2 simulate-and-rerank options.  Omitted (None) keeps the wire
    #: form — and the response shape — identical to v1.1.
    verify: VerifyOptions | None = None

    # ----------------------------------------------------------- validation

    def validate(self) -> "AdviseRequest":
        """Raise :class:`ApiError` unless every field is usable; return self.

        This is the single validation point for *every* entry path (service,
        legacy HTTP route, v1 HTTP routes), including the NaN/inf/negative
        parameter rejection — transports only translate the raised
        :class:`ApiError` into their envelope.
        """
        if not isinstance(self.code, str):
            raise ApiError.invalid_request('"code" must be a string',
                                           field="code")
        if not self.code.strip():
            raise ApiError.invalid_request('"code" must be non-empty C source',
                                           field="code")
        if self.model is not None:
            if not isinstance(self.model, str):
                raise ApiError.invalid_request(
                    '"model" must be a string (alias, name, or name@revision)',
                    field="model")
            if not self.model.strip():
                raise ApiError.invalid_request(
                    '"model" must be a non-empty model reference',
                    field="model")
        if not isinstance(self.strategy, DecodingStrategy):
            raise ApiError.invalid_request(
                '"strategy" must be a DecodingStrategy', field="strategy")
        try:
            self.strategy.validate()
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        if self.verify is not None:
            if not isinstance(self.verify, VerifyOptions):
                raise ApiError.invalid_request(
                    '"verify" must be true, false, or an options object',
                    field="verify")
            self.verify.validate()
        return self

    # -------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        payload = {"code": self.code, "strategy": self.strategy.to_dict()}
        if self.model is not None:
            payload["model"] = self.model
        if self.verify is not None:
            payload["verify"] = self.verify.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdviseRequest":
        """Strict v1 parsing: unknown top-level fields are rejected by name.

        ``strategy`` may be an object (``{"name": "beam", "beam_size": 4}``)
        or a bare strategy name string; absent means greedy.  ``model`` is an
        optional reference string; absent means the registry default.  The
        returned request has already passed :meth:`validate`.
        """
        if not isinstance(data, Mapping):
            raise ApiError.invalid_request("request body must be a JSON object")
        known = {"code", "strategy", "model", "verify"}
        for key in data:
            if key not in known:
                raise ApiError.invalid_request(
                    f'unknown field "{key}" (accepted: code, strategy, model, '
                    f'verify)',
                    field=str(key))
        if "code" not in data:
            raise ApiError.invalid_request('"code" is required', field="code")
        raw_strategy = data.get("strategy", "greedy")
        try:
            strategy = strategy_from_dict(raw_strategy)
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        except TypeError as exc:
            raise ApiError.invalid_request(
                f'invalid "strategy": {exc}', field="strategy") from exc
        return cls(code=data["code"], strategy=strategy,
                   model=data.get("model"),
                   verify=VerifyOptions.from_value(data.get("verify"))).validate()



def parse_legacy_advise(data: Mapping[str, Any],
                        ) -> tuple[str, int | None, float | None]:
    """Parse and validate the pre-v1 ``/advise`` body (``code``/``beam_size``/
    ``length_penalty``).

    Returns the raw ``(code, beam_size, length_penalty)`` triple with absent
    overrides as None — the legacy surface merges partial overrides onto the
    *service's* default generation config
    (:meth:`repro.serving.InferenceService.legacy_strategy`), so resolution
    cannot happen here.  Type errors are 400, out-of-range values 422,
    matching v1.
    """
    from ..model.decoding import MAX_BEAM_SIZE, _require_int, _require_number

    if not isinstance(data, Mapping):
        raise ApiError.invalid_request("request body must be a JSON object")
    code = data.get("code")
    if not isinstance(code, str) or not code.strip():
        raise ApiError.invalid_request('body must be {"code": "<C source>"}',
                                       field="code")
    beam_size = data.get("beam_size")
    length_penalty = data.get("length_penalty")
    try:
        if beam_size is not None:
            _require_int("beam_size", beam_size, minimum=1,
                         maximum=MAX_BEAM_SIZE)
        if length_penalty is not None:
            length_penalty = _require_number("length_penalty", length_penalty,
                                             minimum=0.0)
    except StrategyParamError as exc:
        raise ApiError.from_strategy_error(exc) from exc
    return code, beam_size, length_penalty




@dataclass(frozen=True)
class AdviseResponse:
    """One advising response, transport-agnostic and losslessly serialisable.

    ``advice`` items are plain dicts (the rendered suggestion payloads the
    legacy endpoint always served); ``strategy`` is the wire form of the
    strategy the decode actually ran under (the service default when the
    request didn't pin one).
    """

    generated_code: str
    advice: tuple[dict, ...]
    diagnostics: tuple[str, ...]
    strategy: DecodingStrategy
    cached: bool = False
    latency_ms: float = 0.0
    cache_key: str = ""
    #: The resolved ``name@revision`` that served the request — present on
    #: the wire only when the request named a model, so requests that omit
    #: ``model`` keep the exact v1.0 response shape.
    model: str | None = None
    #: The v1.2 ``verification`` object
    #: (:meth:`repro.verify.VerificationReport.to_payload`) — present on the
    #: wire only when the request asked for verification, so requests that
    #: omit ``verify`` keep the exact v1.1 response shape.
    verification: dict | None = None
    api_version: str = API_VERSION

    def to_dict(self) -> dict:
        payload = {
            "api_version": self.api_version,
            "generated_code": self.generated_code,
            "advice": [dict(item) for item in self.advice],
            "diagnostics": list(self.diagnostics),
            "strategy": self.strategy.to_dict(),
            "cached": self.cached,
            "latency_ms": self.latency_ms,
            "cache_key": self.cache_key,
        }
        if self.model is not None:
            payload["model"] = self.model
        if self.verification is not None:
            payload["verification"] = dict(self.verification)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdviseResponse":
        try:
            strategy = strategy_from_dict(data["strategy"])
        except StrategyParamError as exc:
            raise ApiError.from_strategy_error(exc) from exc
        return cls(
            generated_code=data["generated_code"],
            advice=tuple(dict(item) for item in data["advice"]),
            diagnostics=tuple(data["diagnostics"]),
            strategy=strategy,
            cached=bool(data.get("cached", False)),
            latency_ms=float(data.get("latency_ms", 0.0)),
            cache_key=str(data.get("cache_key", "")),
            model=data.get("model"),
            verification=data.get("verification"),
            api_version=str(data.get("api_version", API_VERSION)),
        )

    def to_legacy_dict(self) -> dict:
        """The pre-v1 ``/advise`` body, byte-identical in shape and values.

        The legacy surface spelled the strategy as ``beam_size`` /
        ``length_penalty``; non-beam strategies report the greedy pair
        ``(1, 0.0)`` exactly as the old server did for greedy requests.
        """
        from ..model.decoding import BeamStrategy

        payload = {
            "generated_code": self.generated_code,
            "advice": [dict(item) for item in self.advice],
            "diagnostics": list(self.diagnostics),
            "cached": self.cached,
            "latency_ms": self.latency_ms,
            "cache_key": self.cache_key,
        }
        if isinstance(self.strategy, BeamStrategy):
            payload["beam_size"] = self.strategy.beam_size
            payload["length_penalty"] = self.strategy.length_penalty
        else:
            payload["beam_size"] = 1
            payload["length_penalty"] = 0.0
        return payload


def advice_items(session) -> tuple[dict, ...]:
    """Serialise an :class:`repro.mpirical.AdviceSession`'s advice list.

    This is the one place the advice wire shape is defined; both the legacy
    and v1 endpoints (and :class:`AdviseResponse`) share it.
    """
    from dataclasses import asdict

    return tuple(
        {
            **asdict(item.suggestion),
            "confidence": item.confidence,
            "note": item.note,
            "rendered": item.render(),
        }
        for item in session.advice
    )


#: Largest accepted ``POST /v1/advise/batch`` submission.  Bulk workloads
#: bigger than this should be split client-side; an unbounded list would let
#: one submission monopolise the job worker for minutes.
MAX_BATCH_ITEMS = 64


def parse_batch_advise(data: Mapping[str, Any]) -> list[AdviseRequest]:
    """Parse and validate a ``POST /v1/advise/batch`` submission.

    The body is ``{"items": [<AdviseRequest dict>, ...]}`` plus optional
    top-level ``model``, ``strategy`` and (v1.2) ``verify`` defaults merged
    into every item that does not set its own — a top-level ``verify`` turns
    the whole submission into an asynchronous batch audit.  Parsing is
    atomic: any malformed item rejects the whole submission (400/422 with
    the offending index in ``field``), so a job never holds half a workload.
    Serve-time failures (e.g. a model unloaded between submit and run) are
    *not* detected here — they become per-item error envelopes in the job
    results.
    """
    if not isinstance(data, Mapping):
        raise ApiError.invalid_request("request body must be a JSON object")
    known = {"items", "model", "strategy", "verify"}
    for key in data:
        if key not in known:
            raise ApiError.invalid_request(
                f'unknown field "{key}" (accepted: items, model, strategy, '
                f'verify)',
                field=str(key))
    items = data.get("items")
    if not isinstance(items, list) or not items:
        raise ApiError.invalid_request(
            '"items" must be a non-empty list of advise requests',
            field="items")
    if len(items) > MAX_BATCH_ITEMS:
        raise ApiError.invalid_parameter(
            f'"items" holds {len(items)} requests; the batch limit is '
            f'{MAX_BATCH_ITEMS}', field="items")
    defaults = {key: data[key] for key in ("model", "strategy", "verify")
                if key in data}
    requests = []
    for index, item in enumerate(items):
        if not isinstance(item, Mapping):
            raise ApiError.invalid_request(
                f"items[{index}] must be a JSON object",
                field=f"items[{index}]")
        merged = {**defaults, **item}
        try:
            requests.append(AdviseRequest.from_dict(merged))
        except ApiError as exc:
            raise ApiError(exc.code, f"items[{index}]: {exc.message}",
                           field=f"items[{index}]"
                                 + (f".{exc.field}" if exc.field else ""),
                           status=exc.status) from exc
    return requests


def strategy_matrix() -> dict[str, dict]:
    """Registered strategies and their default parameters (docs/clients)."""
    return {name: cls().to_dict() for name, cls in registered_strategies().items()}
