"""Cross-entropy loss with label smoothing and padding masking."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .autograd import Tensor


@dataclass
class LossResult:
    """Loss tensor plus scalar monitoring values."""

    loss: Tensor
    token_accuracy: float
    num_tokens: int


def cross_entropy(logits: Tensor, targets: np.ndarray, pad_id: int,
                  label_smoothing: float = 0.0) -> LossResult:
    """Token-level cross-entropy.

    Parameters
    ----------
    logits:
        Tensor of shape (batch, length, vocab).
    targets:
        Integer array of shape (batch, length); positions equal to ``pad_id``
        are excluded from both the loss and the accuracy.
    label_smoothing:
        Mass spread uniformly over the non-target classes.
    """
    batch, length, vocab = logits.shape
    targets = np.asarray(targets, dtype=np.int64)
    mask = (targets != pad_id).astype(np.float64)
    num_tokens = int(mask.sum())
    if num_tokens == 0:
        raise ValueError("loss called on a batch with no non-padding tokens")

    log_probs = logits.log_softmax(axis=-1)

    # Dense one-hot (possibly smoothed) target distribution.
    smooth_value = label_smoothing / max(vocab - 1, 1)
    dense = np.full((batch, length, vocab), smooth_value, dtype=np.float64)
    rows = np.arange(batch)[:, None]
    cols = np.arange(length)[None, :]
    dense[rows, cols, targets] = 1.0 - label_smoothing
    dense *= mask[:, :, None]

    weighted = log_probs * Tensor(dense)
    loss = -(weighted.sum()) * (1.0 / num_tokens)

    predictions = logits.data.argmax(axis=-1)
    correct = ((predictions == targets) * mask).sum()
    accuracy = float(correct / num_tokens)
    return LossResult(loss=loss, token_accuracy=accuracy, num_tokens=num_tokens)


def perplexity(loss_value: float) -> float:
    """Perplexity corresponding to a mean cross-entropy value."""
    return float(np.exp(min(loss_value, 50.0)))
