"""NumPy Transformer: autograd, layers, seq2seq model, trainer and decoding."""

from .autograd import (
    Tensor,
    concat,
    default_inference_dtype,
    embedding_lookup,
    inference_mode,
    is_grad_enabled,
    numerical_gradient,
    parameter,
    set_default_inference_dtype,
    tape_mode,
)
from .attention import KVCache, MultiHeadAttention, causal_mask, combined_decoder_mask, padding_mask
from .checkpoints import load_checkpoint, save_checkpoint
from .config import ExperimentConfig, ModelConfig, TrainingConfig, paper_config, small_config, tiny_config
from .generation import (
    DecoderLoop,
    GenerationConfig,
    beam_search_decode,
    beam_search_decode_batch,
    greedy_decode,
    greedy_decode_batch,
)
from .layers import Embedding, FeedForward, LayerNorm, Linear, Module, PositionalEncoding, sinusoidal_positions
from .loss import LossResult, cross_entropy, perplexity
from .optimizer import Adam, AdamConfig
from .trainer import EpochMetrics, Trainer, TrainingHistory
from .transformer import DecoderLayer, DecodingState, EncoderLayer, Seq2SeqTransformer

__all__ = [
    "Tensor",
    "concat",
    "default_inference_dtype",
    "embedding_lookup",
    "inference_mode",
    "is_grad_enabled",
    "numerical_gradient",
    "parameter",
    "set_default_inference_dtype",
    "tape_mode",
    "KVCache",
    "MultiHeadAttention",
    "causal_mask",
    "combined_decoder_mask",
    "padding_mask",
    "load_checkpoint",
    "save_checkpoint",
    "ExperimentConfig",
    "ModelConfig",
    "TrainingConfig",
    "paper_config",
    "small_config",
    "tiny_config",
    "DecoderLoop",
    "GenerationConfig",
    "beam_search_decode",
    "beam_search_decode_batch",
    "greedy_decode",
    "greedy_decode_batch",
    "Embedding",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "Module",
    "PositionalEncoding",
    "sinusoidal_positions",
    "LossResult",
    "cross_entropy",
    "perplexity",
    "Adam",
    "AdamConfig",
    "EpochMetrics",
    "Trainer",
    "TrainingHistory",
    "DecoderLayer",
    "DecodingState",
    "EncoderLayer",
    "Seq2SeqTransformer",
]
