"""A minimal reverse-mode automatic-differentiation engine on NumPy arrays.

This is the reproduction's stand-in for PyTorch: the paper fine-tunes
SPT-Code with PyTorch on a V100; here the Transformer is trained on CPU with
this tape-based autograd.  Only the operations the Transformer needs are
implemented (broadcast arithmetic, matmul, reshape/transpose, softmax,
log-softmax, layer-norm statistics, embedding gather, masking, dropout,
reductions), each with an explicit backward function.

Design notes
------------
* A :class:`Tensor` wraps a float ndarray, a gradient buffer and a closure
  list of ``(parent, backward_fn)`` pairs.
* :meth:`Tensor.backward` runs a topological sort of the tape and accumulates
  gradients; broadcasting is undone with :func:`_unbroadcast`.
* No graph retention subtleties: each forward pass builds a fresh tape, which
  matches how the trainer uses it (one tape per mini-batch).

Execution modes (the inference fast path)
-----------------------------------------
Inference never calls :meth:`Tensor.backward`, so building the tape is pure
overhead on the decode hot path.  Two thread-local context managers control
execution:

* :func:`inference_mode` — the **no-tape mode**: every op skips tape
  construction *and* backward-closure allocation entirely (the ``if grad
  enabled`` guard sits in front of the closure literals, so not even the
  closure objects are created), and newly created tensors follow the mode's
  compute dtype (float32 by default, see below).  Tensors created in this
  mode carry an empty tape — calling ``backward()`` on them is a no-op.
* :func:`tape_mode` — forces the tape path (and float64) even inside the
  generation entry points, which otherwise switch themselves onto the fast
  path.  This is how the differential tests and benchmarks summon the
  reference implementation.

Dtype policy
------------
Each execution mode carries a compute dtype: training/tape code runs float64
(the historical behaviour), while :func:`inference_mode` defaults to float32
(configurable per-context via ``inference_mode(dtype=...)`` or globally via
:func:`set_default_inference_dtype`).  ``Tensor.__init__`` and the scalar
lifting in ``_as_tensor`` follow :func:`current_dtype` instead of a
hard-coded ``np.float64``, so constants created under a float32 policy stay
float32 rather than silently upcasting every downstream result; gradients
likewise follow the tensor's own dtype.

Parameters keep float64 master weights at all times — the fast path casts
them on demand (see ``repro.model.layers.cast_param``), keyed by
:attr:`Tensor.version`, which in-place mutators (the optimiser, the
checkpoint loader) bump via :meth:`Tensor.mark_updated`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable

import numpy as np

Array = np.ndarray


# ------------------------------------------------------------ execution mode


_TAPE_DTYPE = np.dtype(np.float64)
_DEFAULT_INFERENCE_DTYPE = np.dtype(np.float32)


class _ExecState(threading.local):
    """Per-thread execution mode: tape on/off, compute dtype, explicitness."""

    def __init__(self) -> None:
        self.grad_enabled = True
        self.dtype = _TAPE_DTYPE
        #: True once a mode context manager is active — generation entry
        #: points only switch to the fast path when no caller pinned a mode.
        self.explicit = False


_STATE = _ExecState()


def is_grad_enabled() -> bool:
    """True when ops record the tape (the default outside inference mode)."""
    return _STATE.grad_enabled


def current_dtype() -> np.dtype:
    """The compute dtype new tensors and lifted constants follow."""
    return _STATE.dtype


def mode_is_explicit() -> bool:
    """True when a caller pinned the execution mode with a context manager."""
    return _STATE.explicit


def default_inference_dtype() -> np.dtype:
    """The dtype :func:`inference_mode` uses when none is passed."""
    return _DEFAULT_INFERENCE_DTYPE


def set_default_inference_dtype(dtype) -> None:
    """Set the module-wide inference compute dtype (float32 or float64)."""
    global _DEFAULT_INFERENCE_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"inference dtype must be float32 or float64, got {dtype!r}")
    _DEFAULT_INFERENCE_DTYPE = resolved


@contextmanager
def _mode(grad_enabled: bool, dtype: np.dtype):
    previous = (_STATE.grad_enabled, _STATE.dtype, _STATE.explicit)
    _STATE.grad_enabled, _STATE.dtype, _STATE.explicit = grad_enabled, dtype, True
    try:
        yield
    finally:
        _STATE.grad_enabled, _STATE.dtype, _STATE.explicit = previous


def inference_mode(dtype=None):
    """No-tape execution: ops skip tape and closure allocation entirely.

    ``dtype`` selects the compute dtype (default: the module inference dtype,
    float32 unless reconfigured).  ``inference_mode(dtype=np.float64)`` gives
    the bitwise-reproducible fast path the differential tests compare against
    :func:`tape_mode`.
    """
    resolved = _DEFAULT_INFERENCE_DTYPE if dtype is None else np.dtype(dtype)
    return _mode(False, resolved)


def tape_mode(dtype=None):
    """Force the tape path (float64 by default) even inside generation."""
    resolved = _TAPE_DTYPE if dtype is None else np.dtype(dtype)
    return _mode(True, resolved)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Reduce ``grad`` so its shape matches ``shape`` (reverse of broadcasting).

    The reductions preserve ``grad``'s dtype, so gradients follow the tensor
    dtype they flow through rather than being forced to float64.
    """
    if grad.shape == shape:
        return grad
    # Sum out leading extra dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable array node."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name", "version")

    def __init__(self, data, *, requires_grad: bool = False, name: str = "") -> None:
        self.data = np.asarray(data, dtype=_STATE.dtype)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._parents: list[tuple["Tensor", Callable[[Array], Array]]] = []
        self.name = name
        #: Bumped by in-place mutators (optimiser steps, checkpoint loads) so
        #: the inference fast path can cache dtype-cast copies safely.
        self.version = 0

    # ------------------------------------------------------------- plumbing

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def mark_updated(self) -> None:
        """Record an in-place ``data`` mutation (invalidates cast caches)."""
        self.version += 1

    def _add_parent(self, parent: "Tensor", backward_fn: Callable[[Array], Array]) -> None:
        if parent.requires_grad:
            self._parents.append((parent, backward_fn))
            self.requires_grad = True

    def backward(self, grad: Array | None = None) -> None:
        """Backpropagate ``grad`` (defaults to ones) through the tape."""
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the sub-graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, Array] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.get(id(node))
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf parameter: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            for parent, backward_fn in node._parents:
                contribution = backward_fn(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = contribution if existing is None else existing + contribution
        # Non-leaf tensors that the caller may inspect.
        if self.requires_grad and self._parents:
            self.grad = grad

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data + other.data)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: _unbroadcast(g, self.data.shape))
            out._add_parent(other, lambda g: _unbroadcast(g, other.data.shape))
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data - other.data)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: _unbroadcast(g, self.data.shape))
            out._add_parent(other, lambda g: _unbroadcast(-g, other.data.shape))
        return out

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data * other.data)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: _unbroadcast(g * other.data, self.data.shape))
            out._add_parent(other, lambda g: _unbroadcast(g * self.data, other.data.shape))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(self.data / other.data)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: _unbroadcast(g / other.data, self.data.shape))
            out._add_parent(
                other,
                lambda g: _unbroadcast(-g * self.data / (other.data ** 2), other.data.shape),
            )
        return out

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: -g)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        out = Tensor(self.data ** exponent)
        if _STATE.grad_enabled:
            out._add_parent(
                self, lambda g: g * exponent * (self.data ** (exponent - 1))
            )
        return out

    # ------------------------------------------------------------ linear alg

    def matmul(self, other: "Tensor") -> "Tensor":
        other = _as_tensor(other)
        out = Tensor(np.matmul(self.data, other.data))
        if not _STATE.grad_enabled:
            return out

        def grad_self(g: Array) -> Array:
            return _unbroadcast(np.matmul(g, np.swapaxes(other.data, -1, -2)),
                                self.data.shape)

        def grad_other(g: Array) -> Array:
            return _unbroadcast(np.matmul(np.swapaxes(self.data, -1, -2), g),
                                other.data.shape)

        out._add_parent(self, grad_self)
        out._add_parent(other, grad_other)
        return out

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out = Tensor(np.transpose(self.data, axes_tuple))
        if _STATE.grad_enabled:
            inverse = np.argsort(axes_tuple)
            out._add_parent(self, lambda g: np.transpose(g, inverse))
        return out

    def reshape(self, *shape: int) -> "Tensor":
        out = Tensor(self.data.reshape(shape))
        if _STATE.grad_enabled:
            original = self.data.shape
            out._add_parent(self, lambda g: g.reshape(original))
        return out

    # -------------------------------------------------------------- reductions

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims))
        if not _STATE.grad_enabled:
            return out

        def grad_fn(g: Array) -> Array:
            if axis is None:
                return np.broadcast_to(g, self.data.shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis=axis)
            return np.broadcast_to(g_expanded, self.data.shape).copy()

        out._add_parent(self, grad_fn)
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------ elementwise

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g * value)
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data))
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g / self.data)
        return out

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        out = Tensor(value)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g * 0.5 / value)
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g * (1.0 - value ** 2))
        return out

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        out = Tensor(self.data * mask)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g * mask)
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation).

        The cubic is expanded to explicit multiplies: NumPy's float ``**``
        lowers to a full ``pow`` for exponent 3, which is an order of
        magnitude slower than two multiplications on the FFN hot path.
        """
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        x_sq = x * x
        inner = c * (x + 0.044715 * (x_sq * x))
        t = np.tanh(inner)
        value = 0.5 * x * (1.0 + t)
        out = Tensor(value)
        if not _STATE.grad_enabled:
            return out

        def grad_fn(g: Array) -> Array:
            dinner = c * (1.0 + 3 * 0.044715 * x_sq)
            dt = (1.0 - t ** 2) * dinner
            return g * (0.5 * (1.0 + t) + 0.5 * x * dt)

        out._add_parent(self, grad_fn)
        return out

    # --------------------------------------------------------------- nn ops

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        value = exps / exps.sum(axis=axis, keepdims=True)
        out = Tensor(value)
        if not _STATE.grad_enabled:
            return out

        def grad_fn(g: Array) -> Array:
            dot = (g * value).sum(axis=axis, keepdims=True)
            return value * (g - dot)

        out._add_parent(self, grad_fn)
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_z
        out = Tensor(value)
        if not _STATE.grad_enabled:
            return out
        softmax_value = np.exp(value)

        def grad_fn(g: Array) -> Array:
            return g - softmax_value * g.sum(axis=axis, keepdims=True)

        out._add_parent(self, grad_fn)
        return out

    def masked_fill(self, mask: Array, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (no grad flows
        through the filled positions)."""
        mask = np.broadcast_to(mask, self.data.shape)
        filled = np.where(mask, value, self.data)
        out = Tensor(filled)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: np.where(mask, 0.0, g))
        return out

    def dropout(self, rate: float, rng: np.random.Generator | None = None,
                training: bool = True) -> "Tensor":
        """Inverted dropout; identity when not training or rate == 0."""
        if not training or rate <= 0.0:
            return self
        rng = rng or np.random.default_rng()
        keep = (rng.random(self.data.shape) >= rate).astype(self.data.dtype)
        scale = 1.0 / (1.0 - rate)
        out = Tensor(self.data * keep * scale)
        if _STATE.grad_enabled:
            out._add_parent(self, lambda g: g * keep * scale)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def _as_tensor(value) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=_STATE.dtype))


# --------------------------------------------------------------------- helpers


def parameter(data: Array, name: str = "") -> Tensor:
    """Create a trainable parameter tensor."""
    return Tensor(data, requires_grad=True, name=name)


def embedding_lookup(weight: Tensor, ids: Array) -> Tensor:
    """Gather rows ``ids`` from an embedding matrix with scatter-add backward."""
    ids = np.asarray(ids, dtype=np.int64)
    out = Tensor(weight.data[ids])
    if not _STATE.grad_enabled:
        return out

    def grad_fn(g: Array) -> Array:
        grad_weight = np.zeros_like(weight.data)
        np.add.at(grad_weight, ids.reshape(-1), g.reshape(-1, weight.data.shape[1]))
        return grad_weight

    out._add_parent(weight, grad_fn)
    return out


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    datas = [t.data for t in tensors]
    out = Tensor(np.concatenate(datas, axis=axis))
    if not _STATE.grad_enabled:
        return out
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    for i, t in enumerate(tensors):
        start, stop = offsets[i], offsets[i + 1]

        def make_grad(start=start, stop=stop):
            def grad_fn(g: Array) -> Array:
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(start, stop)
                return g[tuple(slicer)]
            return grad_fn

        out._add_parent(t, make_grad())
    return out


def numerical_gradient(fn: Callable[[Tensor], Tensor], x: Tensor,
                       epsilon: float = 1e-6) -> Array:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``x``
    (used only by the test suite to validate analytic gradients)."""
    grad = np.zeros_like(x.data)
    flat = x.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = fn(Tensor(x.data.copy())).data.item()
        flat[i] = original - epsilon
        minus = fn(Tensor(x.data.copy())).data.item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad
