"""Encoder–decoder Transformer (the SPT-Code stand-in).

The architecture is the standard Vaswani et al. design with pre-layer-norm
blocks: the encoder consumes ``code [SEP] x-sbt`` token ids, the decoder is
auto-regressive over the target program's token ids.  Sizes are configured by
:class:`repro.model.config.ModelConfig` and are deliberately small so that
training runs on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .attention import KVCache, MultiHeadAttention, combined_decoder_mask, padding_mask
from .autograd import Tensor, current_dtype, is_grad_enabled
from .config import ModelConfig
from .layers import Embedding, FeedForward, LayerNorm, Linear, Module, PositionalEncoding


class EncoderLayer(Module):
    """One pre-norm encoder block: self-attention + feed-forward."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.self_attn = MultiHeadAttention(config.d_model, config.num_heads, rng,
                                            config.dropout)
        self.ffn = FeedForward(config.d_model, config.ffn_dim, rng, config.dropout)
        self.norm1 = LayerNorm(config.d_model)
        self.norm2 = LayerNorm(config.d_model)
        self.dropout = config.dropout

    def __call__(self, x: Tensor, mask: np.ndarray | None, *,
                 rng: np.random.Generator | None = None, training: bool = False) -> Tensor:
        normed = self.norm1(x)
        attended = self.self_attn(normed, normed, normed, mask, rng=rng, training=training)
        x = x + attended.dropout(self.dropout, rng, training)
        normed = self.norm2(x)
        x = x + self.ffn(normed, rng=rng, training=training).dropout(self.dropout, rng, training)
        return x

    def forward_data(self, x: np.ndarray, mask: np.ndarray | None, *,
                     dtype: np.dtype) -> np.ndarray:
        """No-tape encoder block on raw ndarrays (dropout is identity)."""
        normed = self.norm1.forward_data(x, dtype)
        x = x + self.self_attn.forward_data(normed, normed, normed, mask, dtype=dtype)
        x = x + self.ffn.forward_data(self.norm2.forward_data(x, dtype), dtype)
        return x


class DecoderLayer(Module):
    """One pre-norm decoder block: masked self-attention, cross-attention, FFN."""

    def __init__(self, config: ModelConfig, rng: np.random.Generator) -> None:
        self.self_attn = MultiHeadAttention(config.d_model, config.num_heads, rng,
                                            config.dropout)
        self.cross_attn = MultiHeadAttention(config.d_model, config.num_heads, rng,
                                             config.dropout)
        self.ffn = FeedForward(config.d_model, config.ffn_dim, rng, config.dropout)
        self.norm1 = LayerNorm(config.d_model)
        self.norm2 = LayerNorm(config.d_model)
        self.norm3 = LayerNorm(config.d_model)
        self.dropout = config.dropout

    def __call__(
        self,
        x: Tensor,
        memory: Tensor,
        self_mask: np.ndarray | None,
        memory_mask: np.ndarray | None,
        *,
        rng: np.random.Generator | None = None,
        training: bool = False,
        self_cache: KVCache | None = None,
        cross_cache: KVCache | None = None,
    ) -> Tensor:
        normed = self.norm1(x)
        attended = self.self_attn(normed, normed, normed, self_mask, rng=rng,
                                  training=training, cache=self_cache)
        x = x + attended.dropout(self.dropout, rng, training)

        normed = self.norm2(x)
        crossed = self.cross_attn(normed, memory, memory, memory_mask, rng=rng,
                                  training=training, cache=cross_cache,
                                  use_cached_kv=cross_cache is not None)
        x = x + crossed.dropout(self.dropout, rng, training)

        normed = self.norm3(x)
        x = x + self.ffn(normed, rng=rng, training=training).dropout(self.dropout, rng, training)
        return x

    def forward_data(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        self_mask: np.ndarray | None,
        memory_mask: np.ndarray | None,
        *,
        dtype: np.dtype,
        self_cache: KVCache | None = None,
        cross_cache: KVCache | None = None,
    ) -> np.ndarray:
        """No-tape decoder block on raw ndarrays (dropout is identity)."""
        normed = self.norm1.forward_data(x, dtype)
        x = x + self.self_attn.forward_data(normed, normed, normed, self_mask,
                                            dtype=dtype, cache=self_cache)
        normed = self.norm2.forward_data(x, dtype)
        x = x + self.cross_attn.forward_data(normed, memory, memory, memory_mask,
                                             dtype=dtype, cache=cross_cache,
                                             use_cached_kv=cross_cache is not None)
        x = x + self.ffn.forward_data(self.norm3.forward_data(x, dtype), dtype)
        return x


@dataclass
class DecodingState:
    """Per-layer caches used during incremental decoding."""

    self_caches: list[KVCache] = field(default_factory=list)
    cross_caches: list[KVCache] = field(default_factory=list)
    position: int = 0
    #: Memoised cross-attention padding mask.  For a static decode the source
    #: ids never change, so it is computed once at the first step — but it is
    #: keyed on :attr:`memory_mask_source` (the ids array it was built from)
    #: so a continuous batch whose row composition changes between steps
    #: never reuses a stale mask.
    memory_mask: np.ndarray | None = None
    #: The ``source_ids`` array :attr:`memory_mask` was computed from; a
    #: different array identity invalidates the memo.
    memory_mask_source: np.ndarray | None = None
    #: Per-row decode positions for continuous batching, where rows that
    #: joined at different times sit at different positions.  ``None`` keeps
    #: the scalar :attr:`position` fast path (all rows in lockstep).
    positions: np.ndarray | None = None


class Seq2SeqTransformer(Module):
    """The full encoder–decoder model with a tied output projection."""

    def __init__(self, config: ModelConfig) -> None:
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng)
        self.positional = PositionalEncoding(config.max_positions, config.d_model)
        self.encoder_layers = [EncoderLayer(config, rng)
                               for _ in range(config.num_encoder_layers)]
        self.decoder_layers = [DecoderLayer(config, rng)
                               for _ in range(config.num_decoder_layers)]
        self.encoder_norm = LayerNorm(config.d_model)
        self.decoder_norm = LayerNorm(config.d_model)
        self.output_proj = Linear(config.d_model, config.vocab_size, rng)
        self.embed_scale = float(np.sqrt(config.d_model))

    # --------------------------------------------------------------- encoder

    def encode(self, source_ids: np.ndarray, pad_id: int, *,
               rng: np.random.Generator | None = None, training: bool = False) -> Tensor:
        """Run the encoder; returns memory of shape (batch, src_len, d_model).

        Under :func:`repro.model.autograd.inference_mode` the whole pass runs
        on the no-tape raw-ndarray kernels at the mode's compute dtype.
        """
        if not is_grad_enabled() and not training:
            return Tensor(self._encode_data(source_ids, pad_id))
        mask = padding_mask(source_ids, pad_id)
        x = self.token_embedding(source_ids) * self.embed_scale
        x = self.positional(x)
        x = x.dropout(self.config.dropout, rng, training)
        for layer in self.encoder_layers:
            x = layer(x, mask, rng=rng, training=training)
        return self.encoder_norm(x)

    def _encode_data(self, source_ids: np.ndarray, pad_id: int) -> np.ndarray:
        """Fused no-tape encoder pass (same op order as the tape path)."""
        dtype = current_dtype()
        mask = padding_mask(source_ids, pad_id)
        x = self.token_embedding.lookup_data(source_ids, dtype) * self.embed_scale
        x = x + self.positional.slice_data(0, x.shape[-2], dtype)
        for layer in self.encoder_layers:
            x = layer.forward_data(x, mask, dtype=dtype)
        return self.encoder_norm.forward_data(x, dtype)

    # --------------------------------------------------------------- decoder

    def decode(self, target_ids: np.ndarray, memory: Tensor, source_ids: np.ndarray,
               pad_id: int, *, rng: np.random.Generator | None = None,
               training: bool = False) -> Tensor:
        """Teacher-forced decoding; returns logits (batch, tgt_len, vocab)."""
        self_mask = combined_decoder_mask(target_ids, pad_id)
        memory_mask = padding_mask(source_ids, pad_id)
        x = self.token_embedding(target_ids) * self.embed_scale
        x = self.positional(x)
        x = x.dropout(self.config.dropout, rng, training)
        for layer in self.decoder_layers:
            x = layer(x, memory, self_mask, memory_mask, rng=rng, training=training)
        x = self.decoder_norm(x)
        return self.output_proj(x)

    def forward(self, source_ids: np.ndarray, target_ids: np.ndarray, pad_id: int, *,
                rng: np.random.Generator | None = None, training: bool = False) -> Tensor:
        """Full forward pass used by the trainer."""
        memory = self.encode(source_ids, pad_id, rng=rng, training=training)
        return self.decode(target_ids, memory, source_ids, pad_id, rng=rng,
                           training=training)

    __call__ = forward

    # ------------------------------------------------------- incremental api

    def start_decoding(self) -> DecodingState:
        """Create fresh per-layer KV caches for incremental generation."""
        return DecodingState(
            self_caches=[KVCache() for _ in self.decoder_layers],
            cross_caches=[KVCache() for _ in self.decoder_layers],
            position=0,
        )

    def decode_step(self, token_ids: np.ndarray, memory: Tensor,
                    source_ids: np.ndarray, pad_id: int,
                    state: DecodingState) -> np.ndarray:
        """Decode one step for a batch of single tokens.

        ``token_ids`` has shape (batch, 1).  Returns logits (batch, vocab).
        Under :func:`repro.model.autograd.inference_mode` the step runs on
        the fused no-tape kernels (the decode hot path).
        """
        if not is_grad_enabled():
            return self._decode_step_data(token_ids, memory, source_ids,
                                          pad_id, state)
        if state.positions is not None:
            raise RuntimeError(
                "per-row decode positions (continuous batching) require the "
                "no-tape inference path; run under inference_mode()")
        memory_mask = self._memory_mask(state, source_ids, pad_id)
        x = self.token_embedding(token_ids) * self.embed_scale
        x = self.positional(x, offset=state.position)
        for layer, self_cache, cross_cache in zip(self.decoder_layers, state.self_caches,
                                                  state.cross_caches):
            x = layer(x, memory, None, memory_mask, self_cache=self_cache,
                      cross_cache=cross_cache)
        x = self.decoder_norm(x)
        logits = self.output_proj(x)
        state.position += 1
        return logits.data[:, 0, :]

    def _decode_step_data(self, token_ids: np.ndarray, memory: Tensor | np.ndarray,
                          source_ids: np.ndarray, pad_id: int,
                          state: DecodingState) -> np.ndarray:
        """Fused no-tape decode step (same op order as the tape path)."""
        dtype = current_dtype()
        memory_mask = self._memory_mask(state, source_ids, pad_id)
        self_mask = self._ragged_self_mask(state, token_ids.shape[1])
        memory_data = memory.data if isinstance(memory, Tensor) else memory
        x = self.token_embedding.lookup_data(token_ids, dtype) * self.embed_scale
        if state.positions is not None:
            x = x + self.positional.rows_data(state.positions, dtype)
        else:
            x = x + self.positional.slice_data(state.position, x.shape[-2], dtype)
        for layer, self_cache, cross_cache in zip(self.decoder_layers, state.self_caches,
                                                  state.cross_caches):
            x = layer.forward_data(x, memory_data, self_mask, memory_mask,
                                   dtype=dtype, self_cache=self_cache,
                                   cross_cache=cross_cache)
        x = self.decoder_norm.forward_data(x, dtype)
        logits = self.output_proj.forward_data(x, dtype)
        if state.positions is not None:
            state.positions += token_ids.shape[1]
        else:
            state.position += 1
        return logits[:, 0, :]

    @staticmethod
    def _memory_mask(state: DecodingState, source_ids: np.ndarray,
                     pad_id: int) -> np.ndarray | None:
        """The memoised cross-attention mask, recomputed on composition change.

        The memo is keyed on the *identity* of ``source_ids``: a static
        decode passes the same array every step (one computation total),
        while a continuous batch rebuilds its source matrix whenever rows
        join or retire — a new array, so the stale mask is never served.
        """
        if state.memory_mask is None or state.memory_mask_source is not source_ids:
            state.memory_mask = padding_mask(source_ids, pad_id)
            state.memory_mask_source = source_ids
        return state.memory_mask

    @staticmethod
    def _ragged_self_mask(state: DecodingState, q_len: int) -> np.ndarray | None:
        """Self-attention mask over ragged KV rows (``None`` when uniform).

        Row ``r``'s valid history after this step's append is
        ``row_lengths[r] + q_len``; positions at or beyond that are another
        row's padding and must not be attended.  Built fresh every step from
        the caches' current lengths — it cannot go stale across joins or
        retires — and skipped entirely (``None``) for uniform caches, which
        keeps the static decode path's masking bit-for-bit unchanged.
        """
        if not state.self_caches:
            return None
        first = state.self_caches[0]
        if not first.is_ragged:
            return None
        post = first.row_lengths + q_len
        width = int(post.max())
        return (np.arange(width)[None, :] >= post[:, None])[:, None, None, :]
