"""Training loop for the translation task.

Produces the per-epoch training loss, validation loss and validation token
accuracy that Figure 5 of the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tokenization.code_tokenizer import EncodedExample, pad_batch
from ..utils.timing import Stopwatch
from .config import TrainingConfig
from .loss import cross_entropy
from .optimizer import Adam, AdamConfig
from .transformer import Seq2SeqTransformer


@dataclass
class EpochMetrics:
    """Metrics recorded at the end of one epoch (one point of Figure 5)."""

    epoch: int
    train_loss: float
    validation_loss: float
    validation_accuracy: float
    steps: int
    seconds: float


@dataclass
class TrainingHistory:
    """Full training run record."""

    epochs: list[EpochMetrics] = field(default_factory=list)

    def train_losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def validation_losses(self) -> list[float]:
        return [e.validation_loss for e in self.epochs]

    def validation_accuracies(self) -> list[float]:
        return [e.validation_accuracy for e in self.epochs]


class Trainer:
    """Mini-batch trainer for :class:`Seq2SeqTransformer`."""

    def __init__(self, model: Seq2SeqTransformer, pad_id: int,
                 config: TrainingConfig | None = None) -> None:
        self.model = model
        self.pad_id = pad_id
        self.config = config or TrainingConfig()
        self.optimizer = Adam(
            model.parameters(),
            AdamConfig(
                learning_rate=self.config.learning_rate,
                warmup_steps=self.config.warmup_steps,
                gradient_clip=self.config.gradient_clip,
            ),
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()
        self.stopwatch = Stopwatch()

    # ----------------------------------------------------------------- steps

    def _make_batches(self, examples: list[EncodedExample],
                      shuffle: bool) -> list[list[EncodedExample]]:
        order = np.arange(len(examples))
        if shuffle:
            self.rng.shuffle(order)
        # Sort within a window by target length to reduce padding waste while
        # keeping some shuffling between epochs.
        ordered = [examples[i] for i in order]
        batches: list[list[EncodedExample]] = []
        size = self.config.batch_size
        for start in range(0, len(ordered), size):
            batches.append(ordered[start:start + size])
        return batches

    def train_step(self, batch: list[EncodedExample]) -> tuple[float, float]:
        """One optimisation step; returns (loss, token accuracy)."""
        src = pad_batch([b.encoder_ids for b in batch], self.pad_id)
        tgt = pad_batch([b.decoder_ids for b in batch], self.pad_id)
        decoder_input = tgt[:, :-1]
        decoder_target = tgt[:, 1:]

        self.optimizer.zero_grad()
        logits = self.model.forward(src, decoder_input, self.pad_id, rng=self.rng,
                                    training=True)
        result = cross_entropy(logits, decoder_target, self.pad_id,
                               self.config.label_smoothing)
        result.loss.backward()
        self.optimizer.clip_gradients()
        self.optimizer.step()
        return float(result.loss.data), result.token_accuracy

    def evaluate(self, examples: list[EncodedExample]) -> tuple[float, float]:
        """Mean loss and token accuracy over ``examples`` (no grad updates)."""
        if not examples:
            return 0.0, 0.0
        losses: list[float] = []
        accuracies: list[float] = []
        weights: list[int] = []
        for batch in self._make_batches(examples, shuffle=False):
            src = pad_batch([b.encoder_ids for b in batch], self.pad_id)
            tgt = pad_batch([b.decoder_ids for b in batch], self.pad_id)
            logits = self.model.forward(src, tgt[:, :-1], self.pad_id, training=False)
            result = cross_entropy(logits, tgt[:, 1:], self.pad_id, 0.0)
            losses.append(float(result.loss.data))
            accuracies.append(result.token_accuracy)
            weights.append(result.num_tokens)
        total = sum(weights)
        loss = sum(l * w for l, w in zip(losses, weights)) / total
        accuracy = sum(a * w for a, w in zip(accuracies, weights)) / total
        return loss, accuracy

    # ------------------------------------------------------------------- api

    def fit(self, train_examples: list[EncodedExample],
            validation_examples: list[EncodedExample] | None = None,
            *, verbose: bool = False) -> TrainingHistory:
        """Train for ``config.epochs`` epochs and return the history."""
        validation_examples = validation_examples or []
        for epoch in range(1, self.config.epochs + 1):
            with self.stopwatch.measure(f"epoch_{epoch}"):
                epoch_losses: list[float] = []
                steps = 0
                for batch in self._make_batches(train_examples, shuffle=True):
                    loss, _accuracy = self.train_step(batch)
                    epoch_losses.append(loss)
                    steps += 1
                    if (self.config.max_steps_per_epoch is not None
                            and steps >= self.config.max_steps_per_epoch):
                        break
                val_loss, val_accuracy = self.evaluate(validation_examples)
            metrics = EpochMetrics(
                epoch=epoch,
                train_loss=float(np.mean(epoch_losses)) if epoch_losses else 0.0,
                validation_loss=val_loss,
                validation_accuracy=val_accuracy,
                steps=steps,
                seconds=self.stopwatch.laps.get(f"epoch_{epoch}", 0.0),
            )
            self.history.epochs.append(metrics)
            if verbose:
                print(f"epoch {epoch}: train_loss={metrics.train_loss:.4f} "
                      f"val_loss={metrics.validation_loss:.4f} "
                      f"val_acc={metrics.validation_accuracy:.3f} "
                      f"({metrics.seconds:.1f}s)")
        return self.history
