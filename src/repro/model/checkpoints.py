"""Saving and restoring model weights + vocabulary + configuration.

A checkpoint is a directory of four files::

    weights.npz     every parameter array, in parameter order
    config.json     the ModelConfig the arrays belong to
    vocab.json      the Vocabulary the model was trained against
    manifest.json   integrity metadata written at save time

The manifest turns what used to be a late, cryptic shape-mismatch failure
into an immediate, actionable :class:`CheckpointError` at load time: it
records the parameter count, a digest over every parameter shape, a hash of
the vocabulary, and the checkpoint's content-hash **revision** — the identity
the model registry (:mod:`repro.registry`) uses to version entries and the
serving cache uses to isolate results across hot-swaps.  The revision is
computed over the *raw parameter bytes* plus config and vocabulary (not the
npz container), so an in-memory model and its saved checkpoint agree on one
fingerprint (:func:`model_fingerprint`).

Checkpoints saved before the manifest existed still load: verification is
skipped and the revision is recomputed from content.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..tokenization.vocab import Vocabulary
from .config import ModelConfig
from .transformer import Seq2SeqTransformer

#: Hex digits of the content hash kept as the human-facing revision string.
REVISION_DIGITS = 12

MANIFEST_FORMAT = 1


class CheckpointError(ValueError):
    """A checkpoint directory is unusable and the message says exactly why.

    Raised at load time — before any parameter array is copied — for missing
    files, parameter-count or shape mismatches against the saved config, and
    vocabulary or weight corruption detected through the manifest.
    """


@dataclass(frozen=True)
class CheckpointManifest:
    """Integrity metadata for one checkpoint directory."""

    #: Number of parameter arrays in ``weights.npz``.
    param_count: int
    #: Total scalar parameters across every array.
    total_parameters: int
    #: sha256 over the ordered parameter shapes (cheap structural identity).
    shapes_digest: str
    #: sha256 over the serialised vocabulary.
    vocab_hash: str
    #: Content-hash identity of (weights, config, vocab): the model version.
    revision: str
    format: int = MANIFEST_FORMAT

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointManifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 — names only
        return cls(**{key: value for key, value in data.items() if key in known})


def _shapes_digest(shapes: list[tuple[int, ...]]) -> str:
    text = ";".join(f"{i}:{'x'.join(map(str, shape))}"
                    for i, shape in enumerate(shapes))
    return hashlib.sha256(text.encode()).hexdigest()


def _vocab_hash(vocab: Vocabulary) -> str:
    payload = json.dumps(vocab.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def model_fingerprint(model: Seq2SeqTransformer, vocab: Vocabulary) -> str:
    """The content-hash revision of an in-memory model.

    Hashes the raw parameter bytes (in parameter order, shapes included),
    the model config and the vocabulary — the same inputs the manifest
    records at save time, so ``model_fingerprint(model, vocab)`` equals the
    saved checkpoint's ``revision`` and a registry entry created from a live
    model gets the same identity it would have after a save/load round-trip.
    """
    digest = hashlib.sha256()
    for param in model.parameters():
        array = np.ascontiguousarray(param.data)
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    digest.update(json.dumps(asdict(model.config), sort_keys=True).encode())
    digest.update(_vocab_hash(vocab).encode())
    return digest.hexdigest()[:REVISION_DIGITS]


def build_manifest(model: Seq2SeqTransformer,
                   vocab: Vocabulary) -> CheckpointManifest:
    """The manifest :func:`save_checkpoint` writes for ``model`` + ``vocab``."""
    params = model.parameters()
    shapes = [tuple(p.data.shape) for p in params]
    return CheckpointManifest(
        param_count=len(params),
        total_parameters=int(sum(p.data.size for p in params)),
        shapes_digest=_shapes_digest(shapes),
        vocab_hash=_vocab_hash(vocab),
        revision=model_fingerprint(model, vocab),
    )


def read_manifest(path: str | Path) -> CheckpointManifest | None:
    """The checkpoint's manifest, or None for pre-manifest checkpoints."""
    manifest_path = Path(path) / "manifest.json"
    if not manifest_path.exists():
        return None
    try:
        return CheckpointManifest.from_dict(json.loads(manifest_path.read_text()))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CheckpointError(
            f"unreadable manifest {manifest_path}: {exc}") from exc


def checkpoint_revision(path: str | Path) -> str | None:
    """The saved revision of the checkpoint under ``path`` (manifest only —
    pre-manifest checkpoints return None until loaded)."""
    manifest = read_manifest(path)
    return manifest.revision if manifest is not None else None


def save_checkpoint(path: str | Path, model: Seq2SeqTransformer,
                    vocab: Vocabulary) -> Path:
    """Write model weights (npz), config, vocabulary and manifest under ``path``.

    ``path`` is a directory; it is created if missing.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    params = model.parameters()
    arrays = {f"param_{i}": p.data for i, p in enumerate(params)}
    np.savez_compressed(path / "weights.npz", **arrays)

    (path / "config.json").write_text(json.dumps(asdict(model.config), indent=2))
    (path / "vocab.json").write_text(json.dumps(vocab.to_dict(), indent=2))
    (path / "manifest.json").write_text(
        json.dumps(build_manifest(model, vocab).to_dict(), indent=2))
    return path


def _require_file(path: Path) -> Path:
    if not path.exists():
        raise CheckpointError(
            f"checkpoint is missing {path.name!r} (looked in {path.parent})")
    return path


def load_checkpoint_with_manifest(
        path: str | Path) -> tuple[Seq2SeqTransformer, Vocabulary,
                                   CheckpointManifest]:
    """Rebuild a saved model + vocabulary and return its (verified) manifest.

    Verification happens *before* any array is copied into the model:
    parameter count and per-parameter shapes are checked against the saved
    config's expectations, and the vocabulary hash against the loaded
    vocabulary — so a truncated or mixed-up checkpoint fails with one
    :class:`CheckpointError` naming the problem, not a mid-copy numpy error.
    After loading, the content fingerprint is recomputed and compared to the
    manifest revision, catching silent weight corruption.

    Pre-manifest checkpoints skip verification; their manifest (and
    revision) is rebuilt from the loaded content.
    """
    path = Path(path)
    if not path.is_dir():
        raise CheckpointError(f"checkpoint directory {path} does not exist")
    config = ModelConfig(**json.loads(_require_file(path / "config.json")
                                      .read_text()))
    vocab = Vocabulary.from_dict(json.loads(_require_file(path / "vocab.json")
                                            .read_text()))
    manifest = read_manifest(path)
    model = Seq2SeqTransformer(config)
    params = model.parameters()

    if manifest is not None:
        if manifest.param_count != len(params):
            raise CheckpointError(
                f"checkpoint manifest records {manifest.param_count} parameter "
                f"arrays, the model built from its config has {len(params)} — "
                f"config.json and weights.npz do not belong together")
        expected = _shapes_digest([tuple(p.data.shape) for p in params])
        if manifest.shapes_digest != expected:
            raise CheckpointError(
                "checkpoint manifest shapes digest does not match the model "
                "built from its config — the weights were saved for a "
                "different architecture")
        if manifest.vocab_hash != _vocab_hash(vocab):
            raise CheckpointError(
                "checkpoint vocab.json does not match the manifest's vocab "
                "hash — the vocabulary file was replaced or corrupted")

    with np.load(_require_file(path / "weights.npz")) as data:
        if len(data.files) != len(params):
            raise CheckpointError(
                f"checkpoint has {len(data.files)} parameter arrays, "
                f"model expects {len(params)}")
        for i, p in enumerate(params):
            stored = data[f"param_{i}"]
            if stored.shape != p.data.shape:
                raise CheckpointError(
                    f"parameter {i} shape mismatch: checkpoint {stored.shape} "
                    f"vs model {p.data.shape}")
            p.data[...] = stored
            # In-place load: invalidate dtype-cast inference caches.
            p.mark_updated()

    if manifest is None:
        manifest = build_manifest(model, vocab)
    elif manifest.revision != model_fingerprint(model, vocab):
        raise CheckpointError(
            f"checkpoint content does not hash to its manifest revision "
            f"{manifest.revision!r} — weights.npz was modified after save")
    return model, vocab, manifest


def load_checkpoint(path: str | Path) -> tuple[Seq2SeqTransformer, Vocabulary]:
    """Rebuild a model + vocabulary saved with :func:`save_checkpoint`."""
    model, vocab, _ = load_checkpoint_with_manifest(path)
    return model, vocab
