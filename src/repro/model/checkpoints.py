"""Saving and restoring model weights + vocabulary + configuration."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..tokenization.vocab import Vocabulary
from .config import ModelConfig
from .transformer import Seq2SeqTransformer


def save_checkpoint(path: str | Path, model: Seq2SeqTransformer,
                    vocab: Vocabulary) -> Path:
    """Write model weights (npz), config and vocabulary (json) under ``path``.

    ``path`` is a directory; it is created if missing.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    params = model.parameters()
    arrays = {f"param_{i}": p.data for i, p in enumerate(params)}
    np.savez_compressed(path / "weights.npz", **arrays)

    (path / "config.json").write_text(json.dumps(asdict(model.config), indent=2))
    (path / "vocab.json").write_text(json.dumps(vocab.to_dict(), indent=2))
    return path


def load_checkpoint(path: str | Path) -> tuple[Seq2SeqTransformer, Vocabulary]:
    """Rebuild a model + vocabulary saved with :func:`save_checkpoint`."""
    path = Path(path)
    config = ModelConfig(**json.loads((path / "config.json").read_text()))
    vocab = Vocabulary.from_dict(json.loads((path / "vocab.json").read_text()))
    model = Seq2SeqTransformer(config)

    with np.load(path / "weights.npz") as data:
        params = model.parameters()
        if len(data.files) != len(params):
            raise ValueError(
                f"checkpoint has {len(data.files)} parameter arrays, "
                f"model expects {len(params)}"
            )
        for i, p in enumerate(params):
            stored = data[f"param_{i}"]
            if stored.shape != p.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: checkpoint {stored.shape} "
                    f"vs model {p.data.shape}"
                )
            p.data[...] = stored
            # In-place load: invalidate dtype-cast inference caches.
            p.mark_updated()
    return model, vocab
