"""Sequence generation: greedy and beam decoding with KV caching.

Two families of entry points live here:

* the **sequential reference decoders** (:func:`greedy_decode`,
  :func:`beam_search_decode`) — simple, per-source implementations that act
  as the executable specification; and
* the **batched decoders** (:func:`greedy_decode_batch`,
  :func:`beam_search_decode_batch`) — the serving layer's hot paths, built
  on the shared :class:`DecoderLoop`, and exact-match identical to running
  the corresponding sequential decoder per source
  (``tests/test_decoding_differential.py`` is the differential harness).

Candidate ordering in beam search is explicit and shared by both paths
(:func:`_candidate_key`): descending normalised score, then ascending
last-emitted token id, then ascending parent-beam rank.  Nothing depends on
Python sort stability or hypothesis insertion order, which is what lets the
flattened ``(batch × beam)`` implementation match the per-source one
bit-for-bit even on exactly tied scores.

Every decoder here runs on the **inference fast path** by default: the model
calls execute under :func:`repro.model.autograd.inference_mode` (no autograd
tape, fused no-tape kernels, float32 compute, preallocated KV-cache
buffers).  Callers that pin an execution mode first — ``tape_mode()`` for
the tape reference, ``inference_mode(dtype=np.float64)`` for the
bitwise-reproducible fast path — are respected; that is how the
differential tests in ``tests/test_inference_fastpath.py`` and the
``benchmarks/test_bench_decode_fastpath.py`` benchmark compare the paths.
"""

from __future__ import annotations

import copy
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from .attention import padding_mask
from .autograd import Tensor, current_dtype, inference_mode, mode_is_explicit
from .transformer import Seq2SeqTransformer


def _decode_mode():
    """The execution mode a generation entry point runs under.

    By default every decoder below switches onto the no-tape inference fast
    path (:func:`repro.model.autograd.inference_mode`, float32 compute).  A
    caller that pinned a mode — ``tape_mode()`` for the reference path, or
    ``inference_mode(dtype=np.float64)`` for the bitwise-reproducible fast
    path — is respected: the differential tests and benchmarks select the
    implementation by wrapping these entry points, not by extra arguments.
    """
    return nullcontext() if mode_is_explicit() else inference_mode()


@dataclass
class GenerationConfig:
    """Decoding settings."""

    max_length: int = 400
    beam_size: int = 1
    length_penalty: float = 0.0


# --------------------------------------------------------------------------
# Sequential reference decoders
# --------------------------------------------------------------------------


def greedy_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                  eos_id: int, pad_id: int, max_length: int = 400,
                  on_token=None) -> list[int]:
    """Greedy auto-regressive decoding for a single source sequence.

    Returns the generated ids without the leading SOS or trailing EOS.
    An empty source generates nothing (there is no memory to attend over).
    ``on_token`` (if given) is called with each token id the moment it is
    emitted — the streaming hook ``repro.model.decoding`` strategies expose.
    """
    if not source_ids:
        return []
    with _decode_mode():
        src = np.asarray([source_ids], dtype=np.int64)
        memory = model.encode(src, pad_id, training=False)
        state = model.start_decoding()

        generated: list[int] = []
        current = np.asarray([[sos_id]], dtype=np.int64)
        for _ in range(max_length):
            logits = model.decode_step(current, memory, src, pad_id, state)
            next_id = int(np.argmax(logits[0]))
            if next_id == eos_id:
                break
            generated.append(next_id)
            if on_token is not None:
                on_token(next_id)
            current = np.asarray([[next_id]], dtype=np.int64)
        return generated


@dataclass
class _Beam:
    ids: list[int]
    score: float
    state: object
    finished: bool = False


def beam_search_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                       eos_id: int, pad_id: int, beam_size: int = 3,
                       max_length: int = 400, length_penalty: float = 0.6) -> list[int]:
    """Beam-search decoding for a single source sequence.

    Each hypothesis needs its own KV cache, so this path runs one
    :meth:`Seq2SeqTransformer.decode_step` per live hypothesis per step; it
    is the slow reference that :func:`beam_search_decode_batch` is measured
    (and differentially tested) against.

    Candidate ordering is fully deterministic — see :func:`_candidate_key` —
    so equal-scoring hypotheses resolve identically run-to-run and across
    the sequential/batched implementations.
    """
    if beam_size <= 1:
        return greedy_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                             pad_id=pad_id, max_length=max_length)
    if not source_ids:
        return []
    beams = _beam_search_beams(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                               pad_id=pad_id, beam_size=beam_size,
                               max_length=max_length,
                               length_penalty=length_penalty)
    # Beams are kept in candidate order, so the best hypothesis is beams[0].
    return _strip_eos(beams[0].ids, eos_id)


def beam_search_nbest(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                      eos_id: int, pad_id: int, beam_size: int = 3,
                      max_length: int = 400,
                      length_penalty: float = 0.6) -> list[list[int]]:
    """All final beam hypotheses, best first.

    Element 0 is exactly what :func:`beam_search_decode` returns (both read
    the same final beam list in candidate order); the remainder are the
    runner-up hypotheses, which verification can promote when the top beam
    fails under simulation.  ``beam_size <= 1`` degenerates to a single
    greedy hypothesis; an empty source has no hypotheses at all.
    """
    if beam_size <= 1:
        return [greedy_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                              pad_id=pad_id, max_length=max_length)]
    if not source_ids:
        return []
    beams = _beam_search_beams(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                               pad_id=pad_id, beam_size=beam_size,
                               max_length=max_length,
                               length_penalty=length_penalty)
    return [_strip_eos(beam.ids, eos_id) for beam in beams]


def _beam_search_beams(model: Seq2SeqTransformer, source_ids: list[int], *,
                       sos_id: int, eos_id: int, pad_id: int, beam_size: int,
                       max_length: int, length_penalty: float) -> list[_Beam]:
    """The beam-search loop; returns the final beams in candidate order."""
    with _decode_mode():
        src = np.asarray([source_ids], dtype=np.int64)
        memory = model.encode(src, pad_id, training=False)

        beams: list[_Beam] = [_Beam(ids=[], score=0.0, state=model.start_decoding())]
        for _ in range(max_length):
            # (key, ids, score, finished, parent) — parent is the beam whose
            # post-step cache a kept unfinished candidate must inherit.
            candidates: list[tuple[tuple, list[int], float, bool, _Beam | None]] = []
            for rank, beam in enumerate(beams):
                if beam.finished:
                    key = _candidate_key(beam.score, beam.ids, length_penalty,
                                         beam.ids[-1], rank)
                    candidates.append((key, beam.ids, beam.score, True, None))
                    continue
                prev_id = beam.ids[-1] if beam.ids else sos_id
                current = np.asarray([[prev_id]], dtype=np.int64)
                logits = model.decode_step(current, memory, src, pad_id, beam.state)
                log_probs = _log_softmax(logits[0])
                for token in _ranked_top_tokens(log_probs, beam_size):
                    ids = beam.ids + [token]
                    score = beam.score + float(log_probs[token])
                    key = _candidate_key(score, ids, length_penalty, token, rank)
                    candidates.append((key, ids, score, token == eos_id, beam))
            candidates.sort(key=lambda c: c[0])
            beams = _materialise_kept(candidates[:beam_size])
            if all(b.finished for b in beams):
                break
        return beams


def _materialise_kept(kept: list[tuple]) -> list[_Beam]:
    """Turn kept candidates into beams, cloning parent caches only when shared.

    The first kept child of a parent inherits the parent's (post-step) cache
    in place; further kept children of the same parent deep-copy it.  Kept
    finished candidates never decode again and carry no state.
    """
    beams: list[_Beam] = []
    claimed: set[int] = set()
    for _, ids, score, finished, parent in kept:
        if finished or parent is None:
            state = None
        elif id(parent) not in claimed:
            claimed.add(id(parent))
            state = parent.state
        else:
            state = copy.deepcopy(parent.state)
        beams.append(_Beam(ids=ids, score=score, state=state, finished=finished))
    return beams


def _strip_eos(ids: list[int], eos_id: int) -> list[int]:
    return ids[:-1] if ids and ids[-1] == eos_id else ids


# --------------------------------------------------------------------------
# Shared ordering / numerics (both the sequential and batched beam paths)
# --------------------------------------------------------------------------


def _normalised(score: float, length: int, length_penalty: float) -> float:
    length = max(1, length)
    return score / (length ** length_penalty) if length_penalty else score


def _candidate_key(score: float, ids: list[int], length_penalty: float,
                   last_token: int, parent_rank: int) -> tuple:
    """The explicit total order over beam candidates (ascending sort key).

    Higher normalised score first; exact ties break on the lower last-emitted
    token id, then on the lower parent-beam rank.  Carried-over finished
    hypotheses participate with their final EOS as the last token.
    """
    return (-_normalised(score, len(ids), length_penalty), last_token, parent_rank)


def _ranked_top_tokens(log_probs: np.ndarray, beam_size: int) -> list[int]:
    """Top ``beam_size`` token ids by log-prob, ties broken by ascending id."""
    order = np.argsort(-log_probs, kind="stable")
    return [int(t) for t in order[:beam_size]]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.exp(shifted).sum())


def _log_softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, bitwise identical per row to :func:`_log_softmax`."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


# --------------------------------------------------------------------------
# DecoderLoop — the shared batched-decoding machinery
# --------------------------------------------------------------------------


class DecoderLoop:
    """Owns the batched incremental-decoding state for a set of sources.

    Responsibilities (everything the batched decoders would otherwise each
    reimplement):

    * **padding** — live (non-empty) sources are right-padded with ``pad_id``
      to a common width and encoded in one pass; empty sources are excluded
      up front (they generate nothing) and tracked via :attr:`live_indices`;
    * **row layout** — with ``rows_per_source > 1`` every source occupies a
      contiguous block of rows (the flattened ``(source × beam)`` hypothesis
      matrix used by batched beam search), sharing one encoder pass;
    * **per-row EOS/finished tracking** — :attr:`finished` is the canonical
      per-row flag; finished rows keep stepping on a dummy EOS input (rows of
      a batched step are computed independently, so the dummy never leaks);
    * **KV-cache state** — one shared :class:`DecodingState` whose per-layer
      caches hold one row per hypothesis; :meth:`reorder_rows` re-gathers
      them after beam pruning.
    """

    def __init__(self, model: Seq2SeqTransformer, source_ids_batch: list[list[int]],
                 *, pad_id: int, rows_per_source: int = 1) -> None:
        if rows_per_source < 1:
            raise ValueError(f"rows_per_source must be >= 1, got {rows_per_source}")
        self.model = model
        self.pad_id = pad_id
        self.rows_per_source = rows_per_source
        self.live_indices = [i for i, ids in enumerate(source_ids_batch) if ids]
        self.num_sources = len(self.live_indices)
        self.num_rows = self.num_sources * rows_per_source
        self.finished = np.zeros(self.num_rows, dtype=bool)
        if not self.num_sources:
            self.src = np.empty((0, 0), dtype=np.int64)
            self.memory = None
            self.state = None
            return

        live_sources = [source_ids_batch[i] for i in self.live_indices]
        width = max(len(ids) for ids in live_sources)
        src = np.full((self.num_sources, width), pad_id, dtype=np.int64)
        for row, ids in enumerate(live_sources):
            src[row, : len(ids)] = ids
        with _decode_mode():
            memory = model.encode(src, pad_id, training=False)
            if rows_per_source > 1:
                # One encoder pass per source; hypothesis rows share its memory.
                src = np.repeat(src, rows_per_source, axis=0)
                memory = Tensor(np.repeat(memory.data, rows_per_source, axis=0))
        self.src = src
        self.memory = memory
        self.state = model.start_decoding()

    def step(self, token_ids: np.ndarray) -> np.ndarray:
        """One incremental decoder step for every row; returns (rows, vocab)."""
        with _decode_mode():
            return self.model.decode_step(token_ids, self.memory, self.src,
                                          self.pad_id, self.state)

    def reorder_rows(self, parents: np.ndarray) -> None:
        """Re-gather the self-attention caches so row ``r`` continues ``parents[r]``.

        ``parents`` must stay inside each source's row block — a hypothesis
        can only descend from a hypothesis of the same source.  Cross-attention
        caches are *not* gathered: within a block every row is a projection of
        the same repeated memory row, so the gather would be an identity.

        The gather happens in place inside each cache's preallocated buffers
        (:meth:`repro.model.attention.KVCache.reorder_rows`) — beam pruning
        does not reallocate or shrink the cache capacity.
        """
        blocks = np.arange(self.num_rows) // self.rows_per_source
        if (np.asarray(parents) // self.rows_per_source != blocks).any():
            raise ValueError("beam reorder must stay within each source's rows")
        for cache in self.state.self_caches:
            cache.reorder_rows(parents)


# --------------------------------------------------------------------------
# ContinuousDecoderLoop — the step-resumable core for continuous batching
# --------------------------------------------------------------------------


class ContinuousDecoderLoop:
    """Step-resumable decode core whose row set changes *between* steps.

    Where :class:`DecoderLoop` fixes its batch at construction and decodes to
    completion, this loop owns a live row matrix that requests join and leave
    mid-decode (Orca-style continuous batching, driven by
    :mod:`repro.serving.sched`):

    * :meth:`join` encodes one source **alone at its own width** — bitwise
      the memory its sequential decode would see — inserts its rows into
      every per-layer KV cache (cross-attention caches adopt the projected
      memory up front, self-attention caches start at length zero) and
      extends the padded source matrix, the per-row positions and the
      memoised memory mask;
    * :meth:`step` runs one batched ``decode_step`` over the live rows, each
      row attending its own ragged history at its own position;
    * :meth:`reorder_rows` re-gathers rows after a beam pruning pass;
    * :meth:`retire` compacts a finished request's row block out.

    Exactness: rows of a batched decode step are computed independently (the
    property every batched ≡ sequential differential in this repo pins
    down); per-row cache lengths keep each joiner's garbage *trailing*
    behind the ragged mask; and the positional term is a per-row gather of
    the very table rows the sequential decode reads — so a request's tokens
    are bitwise identical to its sequential decode no matter what joins or
    retires around it (``tests/test_decoding_differential.py``).
    """

    def __init__(self, model: Seq2SeqTransformer, *, pad_id: int) -> None:
        self.model = model
        self.pad_id = pad_id
        self.state = model.start_decoding()
        self.state.positions = np.zeros(0, dtype=np.int64)
        self.src = np.zeros((0, 0), dtype=np.int64)
        #: Per-row true (unpadded) source length; the source matrix is kept
        #: exactly ``max(src_lengths)`` wide, which is also every
        #: cross-attention cache's view width — the invariant that keeps the
        #: memory mask and the cached projections aligned.
        self.src_lengths: list[int] = []
        self.num_rows = 0

    # ------------------------------------------------------------------- api

    def join(self, source_ids: list[int], rows: int = 1) -> int:
        """Admit one request occupying ``rows`` rows; return its first row.

        ``source_ids`` must be non-empty — an empty source has no memory to
        attend over; callers answer those with an empty generation without
        ever joining (the sequential decoders' contract).
        """
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if not source_ids:
            raise ValueError("cannot join an empty source")
        index = self.num_rows
        with _decode_mode():
            src_row = np.asarray([list(source_ids)], dtype=np.int64)
            memory = self.model.encode(src_row, self.pad_id, training=False)
            memory_data = (memory.data if isinstance(memory, Tensor)
                           else np.asarray(memory))
            self._insert_cross_rows(index, memory_data, rows)
        for cache in self.state.self_caches:
            cache.insert_rows(index, count=rows)
        width = max(self.src.shape[1], len(source_ids))
        src = np.full((index + rows, width), self.pad_id, dtype=np.int64)
        src[:index, :self.src.shape[1]] = self.src
        src[index:, :len(source_ids)] = source_ids
        self.src = src
        self.src_lengths.extend([len(source_ids)] * rows)
        self.state.positions = np.concatenate(
            [self.state.positions, np.zeros(rows, dtype=np.int64)])
        self.num_rows = index + rows
        self._refresh_memory_mask()
        return index

    def step(self, token_ids: np.ndarray) -> np.ndarray:
        """One incremental decode step for every live row: (rows, vocab)."""
        if not self.num_rows:
            raise RuntimeError("ContinuousDecoderLoop.step with no live rows")
        with _decode_mode():
            memory = np.zeros((self.num_rows, 0, 1))
            return self.model.decode_step(token_ids, memory, self.src,
                                          self.pad_id, self.state)

    def reorder_rows(self, parents: np.ndarray) -> None:
        """Re-gather rows so row ``r`` continues ``parents[r]`` (beam pruning).

        Callers must keep ``parents`` inside each request's row block (the
        scheduler validates).  Cross-attention caches are not gathered: a
        block's rows all project the same memory, so the gather would be an
        identity — the same reasoning as :meth:`DecoderLoop.reorder_rows`.
        """
        parents = np.asarray(parents)
        for cache in self.state.self_caches:
            cache.reorder_rows(parents)
        self.state.positions[:] = self.state.positions[parents]

    def retire(self, index: int, rows: int = 1) -> None:
        """Remove the row block ``[index, index + rows)`` (a finished request).

        Every cache compacts in place, the source matrix re-narrows to the
        widest surviving source, and the memory mask is rebuilt — joins after
        a retire see exactly the state a fresh batch of the survivors would.
        """
        if rows < 1 or index < 0 or index + rows > self.num_rows:
            raise ValueError(f"cannot retire rows [{index}, {index + rows}) "
                             f"of {self.num_rows}")
        block = range(index, index + rows)
        for cache in self.state.self_caches:
            if cache.rows:
                cache.retire_rows(block)
        for cache in self.state.cross_caches:
            if cache.rows:
                cache.retire_rows(block)
        keep = [r for r in range(self.num_rows)
                if r < index or r >= index + rows]
        self.src_lengths = [self.src_lengths[r] for r in keep]
        width = max(self.src_lengths, default=0)
        self.src = self.src[keep, :width]
        self.state.positions = self.state.positions[keep]
        self.num_rows -= rows
        self._refresh_memory_mask()

    # ------------------------------------------------------------ internals

    def _insert_cross_rows(self, index: int, memory_data: np.ndarray,
                           rows: int) -> None:
        """Pre-populate the cross-attention caches for a joining request.

        Per decoder layer this is exactly what the first ``decode_step``'s
        lazy population would compute from this memory (project, split
        heads, repeat per hypothesis row), so the memory tensor is never
        needed again — :meth:`step` passes a dummy.
        """
        caches = self.state.cross_caches
        if not caches:
            return
        dtype = current_dtype()
        width = memory_data.shape[1]
        for layer, cache in zip(self.model.decoder_layers, caches):
            attn = layer.cross_attn
            k = attn._split_data(attn.k_proj.forward_data(memory_data, dtype),
                                 1, width)
            v = attn._split_data(attn.v_proj.forward_data(memory_data, dtype),
                                 1, width)
            if rows > 1:
                k = np.repeat(k, rows, axis=0)
                v = np.repeat(v, rows, axis=0)
            cache.insert_rows(index, k, v)

    def _refresh_memory_mask(self) -> None:
        """Rebuild the cross-attention mask after any row change.

        A *fresh* array every time: the decode step's memo is keyed on the
        source matrix identity, so this is what invalidates it.
        """
        if self.num_rows:
            self.state.memory_mask = padding_mask(self.src, self.pad_id)
            self.state.memory_mask_source = self.src
        else:
            self.state.memory_mask = None
            self.state.memory_mask_source = None


# --------------------------------------------------------------------------
# Batched decoders
# --------------------------------------------------------------------------


def greedy_decode_batch(model: Seq2SeqTransformer, source_ids_batch: list[list[int]],
                        *, sos_id: int, eos_id: int, pad_id: int,
                        max_length: int = 400, on_token=None) -> list[list[int]]:
    """Greedy decoding for a batch of (possibly ragged) source sequences.

    One encoder pass and one :meth:`Seq2SeqTransformer.decode_step` per step
    for the whole batch, via :class:`DecoderLoop`.  The output is exact-match
    identical to calling :func:`greedy_decode` on each source individually:
    the encoder's padding mask zeroes attention to pad positions, so a padded
    row produces the same memory — and therefore the same argmax path — as
    its unpadded encoding.  Empty sources generate ``[]``, matching the
    single-sequence contract.  ``on_token`` (if given) is called with
    ``(source_index, token_id)`` as each row emits a token.
    """
    if not source_ids_batch:
        return []
    outputs: list[list[int]] = [[] for _ in source_ids_batch]
    loop = DecoderLoop(model, source_ids_batch, pad_id=pad_id)
    if not loop.num_rows:
        return outputs

    current = np.full((loop.num_rows, 1), sos_id, dtype=np.int64)
    for _ in range(max_length):
        logits = loop.step(current)
        next_ids = np.argmax(logits, axis=-1)
        for row, token in enumerate(next_ids):
            token = int(token)
            if loop.finished[row]:
                continue
            if token == eos_id:
                loop.finished[row] = True
            else:
                outputs[loop.live_indices[row]].append(token)
                if on_token is not None:
                    on_token(loop.live_indices[row], token)
        if loop.finished.all():
            break
        current = np.where(loop.finished[:, None], eos_id,
                           next_ids[:, None]).astype(np.int64)
    return outputs


def beam_search_decode_batch(model: Seq2SeqTransformer,
                             source_ids_batch: list[list[int]], *, sos_id: int,
                             eos_id: int, pad_id: int, beam_size: int = 3,
                             max_length: int = 400,
                             length_penalty: float = 0.6) -> list[list[int]]:
    """Batched beam search: one ``decode_step`` per step for every hypothesis.

    All sources are encoded in one pass and the per-source hypothesis sets
    are flattened into a ``(num_sources × beam_size)`` row matrix, so each
    generation step costs a single batched :meth:`decode_step` instead of one
    per live hypothesis.  Per-source pruning, length-penalty scoring and
    tie-breaking replicate :func:`beam_search_decode` exactly (same candidate
    enumeration order, same :func:`_candidate_key` total order, same float
    arithmetic), so the output is exact-match identical to running the
    sequential decoder on each source.

    ``beam_size <= 1`` delegates to :func:`greedy_decode_batch`, mirroring
    the sequential decoder's contract.
    """
    if beam_size <= 1:
        return greedy_decode_batch(model, source_ids_batch, sos_id=sos_id,
                                   eos_id=eos_id, pad_id=pad_id,
                                   max_length=max_length)
    if not source_ids_batch:
        return []
    outputs: list[list[int]] = [[] for _ in source_ids_batch]
    loop = DecoderLoop(model, source_ids_batch, pad_id=pad_id,
                       rows_per_source=beam_size)
    if not loop.num_rows:
        return outputs

    num_rows = loop.num_rows
    # Per-row hypothesis bookkeeping.  Rows of a source block are kept in
    # candidate order, so block slot == the sequential implementation's beam
    # rank and row 0 of each block is that source's best hypothesis.  Scores
    # accumulate as Python floats exactly like the sequential path.
    ids: list[list[int]] = [[] for _ in range(num_rows)]
    scores: list[float] = [0.0] * num_rows
    finished: list[bool] = [False] * num_rows
    # Only slot 0 of each block holds a real hypothesis at step 0 (the
    # sequential path starts from a single empty beam); the other rows are
    # placeholders until the first pruning pass fills them.
    valid: list[bool] = [slot == 0 for slot in
                         (row % beam_size for row in range(num_rows))]

    current = np.full((num_rows, 1), sos_id, dtype=np.int64)
    for _ in range(max_length):
        logits = loop.step(current)
        log_probs = _log_softmax_rows(logits)
        parents = np.arange(num_rows, dtype=np.int64)
        next_ids = list(ids)
        next_scores = list(scores)
        next_finished = list(finished)
        next_valid = list(valid)
        current = np.full((num_rows, 1), eos_id, dtype=np.int64)
        for source in range(loop.num_sources):
            base = source * beam_size
            candidates: list[tuple[tuple, list[int], float, bool, int]] = []
            for rank in range(beam_size):
                row = base + rank
                if not valid[row]:
                    continue
                if finished[row]:
                    key = _candidate_key(scores[row], ids[row], length_penalty,
                                         ids[row][-1], rank)
                    candidates.append((key, ids[row], scores[row], True, row))
                    continue
                row_log_probs = log_probs[row]
                for token in _ranked_top_tokens(row_log_probs, beam_size):
                    cand_ids = ids[row] + [token]
                    score = scores[row] + float(row_log_probs[token])
                    key = _candidate_key(score, cand_ids, length_penalty,
                                         token, rank)
                    candidates.append((key, cand_ids, score,
                                       token == eos_id, row))
            candidates.sort(key=lambda c: c[0])
            for slot, (_, cand_ids, score, done, parent_row) in \
                    enumerate(candidates[:beam_size]):
                row = base + slot
                next_ids[row] = cand_ids
                next_scores[row] = score
                next_finished[row] = done
                next_valid[row] = True
                parents[row] = parent_row
                if not done:
                    current[row, 0] = cand_ids[-1]
        loop.reorder_rows(parents)
        ids, scores, finished, valid = next_ids, next_scores, next_finished, next_valid
        if all(done for done, live in zip(finished, valid) if live):
            break

    for source in range(loop.num_sources):
        best = ids[source * beam_size]
        outputs[loop.live_indices[source]] = _strip_eos(best, eos_id)
    return outputs
