"""Sequence generation: greedy and beam decoding with KV caching."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .transformer import Seq2SeqTransformer


@dataclass
class GenerationConfig:
    """Decoding settings."""

    max_length: int = 400
    beam_size: int = 1
    length_penalty: float = 0.0


def greedy_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                  eos_id: int, pad_id: int, max_length: int = 400) -> list[int]:
    """Greedy auto-regressive decoding for a single source sequence.

    Returns the generated ids without the leading SOS or trailing EOS.
    """
    src = np.asarray([source_ids], dtype=np.int64)
    memory = model.encode(src, pad_id, training=False)
    state = model.start_decoding()

    generated: list[int] = []
    current = np.asarray([[sos_id]], dtype=np.int64)
    for _ in range(max_length):
        logits = model.decode_step(current, memory, src, pad_id, state)
        next_id = int(np.argmax(logits[0]))
        if next_id == eos_id:
            break
        generated.append(next_id)
        current = np.asarray([[next_id]], dtype=np.int64)
    return generated


@dataclass
class _Beam:
    ids: list[int]
    score: float
    state: object
    finished: bool = False


def beam_search_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                       eos_id: int, pad_id: int, beam_size: int = 3,
                       max_length: int = 400, length_penalty: float = 0.6) -> list[int]:
    """Beam-search decoding for a single source sequence.

    Because each hypothesis needs its own KV cache, beams are decoded without
    cache sharing; beam search therefore costs roughly ``beam_size`` times the
    greedy decode.  It exists mainly for the ablation comparing decode
    strategies — greedy is the default everywhere else.
    """
    if beam_size <= 1:
        return greedy_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                             pad_id=pad_id, max_length=max_length)

    src = np.asarray([source_ids], dtype=np.int64)
    memory = model.encode(src, pad_id, training=False)

    beams: list[_Beam] = [_Beam(ids=[], score=0.0, state=model.start_decoding())]
    # Prime each beam's cache with the SOS step lazily in the loop.
    for step in range(max_length):
        candidates: list[_Beam] = []
        for beam in beams:
            if beam.finished:
                candidates.append(beam)
                continue
            prev_id = beam.ids[-1] if beam.ids else sos_id
            current = np.asarray([[prev_id]], dtype=np.int64)
            logits = model.decode_step(current, memory, src, pad_id, beam.state)
            log_probs = _log_softmax(logits[0])
            top = np.argsort(log_probs)[::-1][:beam_size]
            for token in top:
                token = int(token)
                new_state = _clone_state(model, beam.state)
                candidate = _Beam(
                    ids=beam.ids + [token],
                    score=beam.score + float(log_probs[token]),
                    state=new_state,
                    finished=token == eos_id,
                )
                candidates.append(candidate)
        candidates.sort(key=lambda b: _normalised(b, length_penalty), reverse=True)
        beams = candidates[:beam_size]
        if all(b.finished for b in beams):
            break

    best = max(beams, key=lambda b: _normalised(b, length_penalty))
    ids = best.ids
    if ids and ids[-1] == eos_id:
        ids = ids[:-1]
    return ids


def _normalised(beam: _Beam, length_penalty: float) -> float:
    length = max(1, len(beam.ids))
    return beam.score / (length ** length_penalty) if length_penalty else beam.score


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.exp(shifted).sum())


def _clone_state(model: Seq2SeqTransformer, state) -> object:
    """Deep-copy a decoding state (each beam hypothesis owns its caches)."""
    import copy

    return copy.deepcopy(state)
