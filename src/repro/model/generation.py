"""Sequence generation: greedy and beam decoding with KV caching."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .transformer import Seq2SeqTransformer


@dataclass
class GenerationConfig:
    """Decoding settings."""

    max_length: int = 400
    beam_size: int = 1
    length_penalty: float = 0.0


def greedy_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                  eos_id: int, pad_id: int, max_length: int = 400) -> list[int]:
    """Greedy auto-regressive decoding for a single source sequence.

    Returns the generated ids without the leading SOS or trailing EOS.
    An empty source generates nothing (there is no memory to attend over).
    """
    if not source_ids:
        return []
    src = np.asarray([source_ids], dtype=np.int64)
    memory = model.encode(src, pad_id, training=False)
    state = model.start_decoding()

    generated: list[int] = []
    current = np.asarray([[sos_id]], dtype=np.int64)
    for _ in range(max_length):
        logits = model.decode_step(current, memory, src, pad_id, state)
        next_id = int(np.argmax(logits[0]))
        if next_id == eos_id:
            break
        generated.append(next_id)
        current = np.asarray([[next_id]], dtype=np.int64)
    return generated


def greedy_decode_batch(model: Seq2SeqTransformer, source_ids_batch: list[list[int]],
                        *, sos_id: int, eos_id: int, pad_id: int,
                        max_length: int = 400) -> list[list[int]]:
    """Greedy decoding for a batch of (possibly ragged) source sequences.

    Sources are right-padded with ``pad_id`` to a common length and encoded in
    one pass; decoding then runs one :meth:`Seq2SeqTransformer.decode_step`
    per step for the whole batch.  Each sequence stops contributing once it
    emits EOS; the batch keeps stepping until every sequence has finished (or
    ``max_length`` is reached).  Finished rows are fed their own EOS as a
    dummy input — rows of a batched step are computed independently, so the
    dummy never leaks into live rows.

    The output is exact-match identical to calling :func:`greedy_decode` on
    each source individually: the encoder's padding mask zeroes attention to
    pad positions, so a padded row produces the same memory — and therefore
    the same argmax path — as its unpadded encoding.  Empty sources generate
    ``[]``, matching the single-sequence contract.
    """
    if not source_ids_batch:
        return []

    outputs: list[list[int]] = [[] for _ in source_ids_batch]
    live_indices = [i for i, ids in enumerate(source_ids_batch) if ids]
    if not live_indices:
        return outputs

    live_sources = [source_ids_batch[i] for i in live_indices]
    width = max(len(ids) for ids in live_sources)
    src = np.full((len(live_sources), width), pad_id, dtype=np.int64)
    for row, ids in enumerate(live_sources):
        src[row, : len(ids)] = ids

    memory = model.encode(src, pad_id, training=False)
    state = model.start_decoding()

    finished = np.zeros(len(live_sources), dtype=bool)
    current = np.full((len(live_sources), 1), sos_id, dtype=np.int64)
    for _ in range(max_length):
        logits = model.decode_step(current, memory, src, pad_id, state)
        next_ids = np.argmax(logits, axis=-1)
        for row, token in enumerate(next_ids):
            token = int(token)
            if finished[row]:
                continue
            if token == eos_id:
                finished[row] = True
            else:
                outputs[live_indices[row]].append(token)
        if finished.all():
            break
        current = np.where(finished[:, None], eos_id, next_ids[:, None]).astype(np.int64)
    return outputs


@dataclass
class _Beam:
    ids: list[int]
    score: float
    state: object
    finished: bool = False


def beam_search_decode(model: Seq2SeqTransformer, source_ids: list[int], *, sos_id: int,
                       eos_id: int, pad_id: int, beam_size: int = 3,
                       max_length: int = 400, length_penalty: float = 0.6) -> list[int]:
    """Beam-search decoding for a single source sequence.

    Because each hypothesis needs its own KV cache, beams are decoded without
    cache sharing; beam search therefore costs roughly ``beam_size`` times the
    greedy decode.  It exists mainly for the ablation comparing decode
    strategies — greedy is the default everywhere else.
    """
    if beam_size <= 1:
        return greedy_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                             pad_id=pad_id, max_length=max_length)
    if not source_ids:
        return []

    src = np.asarray([source_ids], dtype=np.int64)
    memory = model.encode(src, pad_id, training=False)

    beams: list[_Beam] = [_Beam(ids=[], score=0.0, state=model.start_decoding())]
    # Prime each beam's cache with the SOS step lazily in the loop.
    for step in range(max_length):
        candidates: list[_Beam] = []
        for beam in beams:
            if beam.finished:
                candidates.append(beam)
                continue
            prev_id = beam.ids[-1] if beam.ids else sos_id
            current = np.asarray([[prev_id]], dtype=np.int64)
            logits = model.decode_step(current, memory, src, pad_id, beam.state)
            log_probs = _log_softmax(logits[0])
            top = np.argsort(log_probs)[::-1][:beam_size]
            for token in top:
                token = int(token)
                new_state = _clone_state(model, beam.state)
                candidate = _Beam(
                    ids=beam.ids + [token],
                    score=beam.score + float(log_probs[token]),
                    state=new_state,
                    finished=token == eos_id,
                )
                candidates.append(candidate)
        candidates.sort(key=lambda b: _normalised(b, length_penalty), reverse=True)
        beams = candidates[:beam_size]
        if all(b.finished for b in beams):
            break

    best = max(beams, key=lambda b: _normalised(b, length_penalty))
    ids = best.ids
    if ids and ids[-1] == eos_id:
        ids = ids[:-1]
    return ids


def _normalised(beam: _Beam, length_penalty: float) -> float:
    length = max(1, len(beam.ids))
    return beam.score / (length ** length_penalty) if length_penalty else beam.score


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.exp(shifted).sum())


def _clone_state(model: Seq2SeqTransformer, state) -> object:
    """Deep-copy a decoding state (each beam hypothesis owns its caches)."""
    import copy

    return copy.deepcopy(state)
