"""Model and training hyper-parameter configuration.

``paper_config`` mirrors the paper's setup as closely as the CPU substrate
allows (batch 32, 320 tokens, 5 epochs); ``small_config`` and ``tiny_config``
are scaled-down presets used by the benchmark harness and the test suite
respectively so that the full pipeline runs in seconds/minutes instead of GPU
hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ModelConfig:
    """Transformer architecture hyper-parameters."""

    vocab_size: int = 0  # filled in after the vocabulary is built
    d_model: int = 96
    num_heads: int = 4
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    ffn_dim: int = 192
    dropout: float = 0.1
    max_positions: int = 1024
    seed: int = 2023

    def validate(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be set before building the model")
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")


@dataclass
class TrainingConfig:
    """Optimisation hyper-parameters."""

    batch_size: int = 16
    epochs: int = 5
    learning_rate: float = 3e-4
    warmup_steps: int = 50
    label_smoothing: float = 0.1
    gradient_clip: float = 1.0
    seed: int = 7
    log_every: int = 10
    #: Optional cap on the number of optimisation steps per epoch (useful for
    #: smoke tests); None = no cap.
    max_steps_per_epoch: int | None = None


@dataclass
class ExperimentConfig:
    """Bundle of model + training + sequence-length settings."""

    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    max_source_tokens: int = 320
    max_xsbt_tokens: int = 160
    max_target_tokens: int = 360
    use_xsbt: bool = True


def paper_config() -> ExperimentConfig:
    """Closest-to-paper settings (still CPU-sized)."""
    return ExperimentConfig(
        model=ModelConfig(d_model=128, num_heads=8, num_encoder_layers=3,
                          num_decoder_layers=3, ffn_dim=256, dropout=0.1),
        training=TrainingConfig(batch_size=32, epochs=5, learning_rate=3e-4),
    )


def small_config() -> ExperimentConfig:
    """Benchmark-harness preset: minutes on a laptop CPU."""
    return ExperimentConfig(
        model=ModelConfig(d_model=64, num_heads=4, num_encoder_layers=2,
                          num_decoder_layers=2, ffn_dim=128, dropout=0.1),
        training=TrainingConfig(batch_size=16, epochs=5, learning_rate=1e-3),
    )


def tiny_config() -> ExperimentConfig:
    """Test-suite preset: seconds."""
    return ExperimentConfig(
        model=ModelConfig(d_model=32, num_heads=2, num_encoder_layers=1,
                          num_decoder_layers=1, ffn_dim=64, dropout=0.0),
        training=TrainingConfig(batch_size=8, epochs=1, learning_rate=1e-3,
                                label_smoothing=0.0),
        max_source_tokens=160,
        max_xsbt_tokens=64,
        max_target_tokens=200,
    )
