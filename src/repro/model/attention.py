"""Multi-head scaled dot-product attention with optional KV caching.

The cache is used only at inference time (greedy/beam decoding): the decoder
feeds one new token per step and attends over the concatenation of cached and
new keys/values, which turns the per-step cost from O(L²) to O(L).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .autograd import Tensor
from .layers import Linear, Module


@dataclass
class KVCache:
    """Cached key/value activations for one attention layer."""

    keys: np.ndarray | None = None
    values: np.ndarray | None = None

    def append(self, new_keys: np.ndarray, new_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values along the sequence axis and return the full arrays."""
        if self.keys is None:
            self.keys = new_keys
            self.values = new_values
        else:
            self.keys = np.concatenate([self.keys, new_keys], axis=2)
            self.values = np.concatenate([self.values, new_values], axis=2)
        return self.keys, self.values

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]


class MultiHeadAttention(Module):
    """Standard multi-head attention (self- or cross-)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        if dim % num_heads != 0:
            raise ValueError(f"model dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.dropout = dropout
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    # ------------------------------------------------------------------ api

    def __call__(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
        *,
        rng: np.random.Generator | None = None,
        training: bool = False,
        cache: KVCache | None = None,
        use_cached_kv: bool = False,
    ) -> Tensor:
        """Attend ``query`` over ``key``/``value``.

        Parameters
        ----------
        mask:
            Boolean array broadcastable to ``(batch, heads, q_len, k_len)``;
            True marks positions that must NOT be attended.
        cache:
            When given for self-attention decoding, new keys/values are
            appended to the cache and attention runs over the full history.
        use_cached_kv:
            For cross-attention decoding: reuse the cached keys/values without
            recomputing the projections of the (static) encoder output.
        """
        batch, q_len, _ = query.shape

        q = self._split_heads(self.q_proj(query), batch, q_len)

        if use_cached_kv and cache is not None and cache.keys is not None:
            k_data, v_data = cache.keys, cache.values
            k = Tensor(k_data)
            v = Tensor(v_data)
        else:
            k_len = key.shape[1]
            k = self._split_heads(self.k_proj(key), batch, k_len)
            v = self._split_heads(self.v_proj(value), batch, k_len)
            if cache is not None:
                if use_cached_kv:
                    # First call of a cross-attention cache: store projections.
                    cache.keys, cache.values = k.data, v.data
                else:
                    k_data, v_data = cache.append(k.data, v.data)
                    k = Tensor(k_data)
                    v = Tensor(v_data)

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
        weights = weights.dropout(self.dropout, rng, training)
        context = weights.matmul(v)
        merged = self._merge_heads(context, batch, q_len)
        return self.out_proj(merged)

    # ------------------------------------------------------------ internals

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, length, dim) -> (batch, heads, length, head_dim)"""
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, heads, length, head_dim) -> (batch, length, dim)"""
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)


def padding_mask(ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Mask of shape (batch, 1, 1, length): True where ``ids`` is padding."""
    return (ids == pad_id)[:, None, None, :]


def causal_mask(length: int) -> np.ndarray:
    """Mask of shape (1, 1, length, length): True above the diagonal."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)[None, None, :, :]


def combined_decoder_mask(target_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Causal mask combined with target padding mask."""
    length = target_ids.shape[1]
    return causal_mask(length) | padding_mask(target_ids, pad_id)
