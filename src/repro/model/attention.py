"""Multi-head scaled dot-product attention with optional KV caching.

The cache is used only at inference time (greedy/beam decoding): the decoder
feeds one new token per step and attends over the concatenation of cached and
new keys/values, which turns the per-step cost from O(L²) to O(L).

:class:`KVCache` keeps its history in **preallocated, capacity-doubling
buffers**: ``append`` writes the new step into spare capacity and returns
views of the valid prefix, so per-step cache maintenance is amortized O(1)
in copies instead of the O(L) full-history reconcatenation it used to be
(O(L²) per decoded sequence).  Beam pruning re-gathers rows in place via
:meth:`KVCache.reorder_rows` — the buffers are reused, not reallocated.

:meth:`MultiHeadAttention.forward_data` is the fused no-tape kernel used by
the inference fast path: a single pass over raw ndarrays (projections from
dtype-cast cached weights, scaled dot-product scores, in-place masking and a
numerically-safe in-place softmax) with the exact op order of the tape path,
so the float64 fast path is bitwise identical to the reference.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .autograd import Tensor
from .layers import Linear, Module, cast_param


class KVCache:
    """Cached key/value activations for one attention layer.

    Layout is ``(batch_rows, heads, steps, head_dim)``.  Internally the
    arrays are over-allocated along the ``steps`` axis and grown by doubling;
    :attr:`keys`/:attr:`values` expose views of the valid prefix (and accept
    assignment of replacement arrays, which are adopted as the new buffers).
    Views returned before a growth keep referencing the old buffer, so they
    stay valid — growth copies, it never mutates the retired buffer.

    Continuous batching extends the row axis at runtime: :meth:`insert_rows`
    admits a freshly-encoded request mid-decode (with an initial history for
    cross-attention caches, or length zero for self-attention caches) and
    :meth:`retire_rows` compacts finished rows out.  Rows may then hold
    histories of different lengths (*ragged* mode): each row's valid prefix
    is ``[0, row_lengths[r])`` and :meth:`append` writes every row at its own
    length, so the garbage is always *trailing* — the property the attention
    mask and the fused softmax's exactness analysis rely on.  Spare capacity
    is zero-filled whenever the cache is ragged: a masked score is overwritten
    before the softmax, but the value rows are still multiplied by the
    (exactly zero) weights, and ``0.0 * garbage`` must not produce NaN.
    """

    __slots__ = ("_keys", "_values", "_length", "_rows", "_row_lengths")

    #: Steps preallocated by the first single-step append; larger first
    #: appends preallocate twice their own length instead.
    MIN_CAPACITY = 8

    def __init__(self, keys: np.ndarray | None = None,
                 values: np.ndarray | None = None) -> None:
        self._keys: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._length = 0
        self._rows = 0
        #: Per-row valid lengths; ``None`` means uniform (every row at
        #: ``_length`` — the static decoders' fast path).
        self._row_lengths: np.ndarray | None = None
        if (keys is None) != (values is None):
            raise ValueError("KVCache needs keys and values together (or neither)")
        if keys is not None:
            self.keys = keys
            self.values = values

    # ------------------------------------------------------------ properties

    @property
    def keys(self) -> np.ndarray | None:
        """View of the cached keys (``None`` while the cache is empty)."""
        if self._keys is None:
            return None
        return self._keys[:self._rows, :, :self._length, :]

    @keys.setter
    def keys(self, array: np.ndarray | None) -> None:
        """Adopt ``array`` as the key buffer; ``None`` empties the whole cache
        (keys *and* values), keeping the two sides symmetric.  Assign keys
        first, then values — length follows the keys."""
        if array is None:
            self._keys = None
            self._values = None
            self._length = 0
            self._rows = 0
            self._row_lengths = None
        else:
            self._keys = np.asarray(array)
            self._length = self._keys.shape[2]
            self._rows = self._keys.shape[0]
            self._row_lengths = None

    @property
    def values(self) -> np.ndarray | None:
        """View of the cached values (``None`` while the cache is empty)."""
        if self._values is None:
            return None
        return self._values[:self._rows, :, :self._length, :]

    @values.setter
    def values(self, array: np.ndarray | None) -> None:
        if array is None:
            self._keys = None
            self._values = None
            self._length = 0
            self._rows = 0
            self._row_lengths = None
        else:
            self._values = np.asarray(array)

    @property
    def length(self) -> int:
        """The longest row's valid length (the width of the exposed views)."""
        return 0 if self._keys is None else self._length

    @property
    def rows(self) -> int:
        """Number of live rows."""
        return 0 if self._keys is None else self._rows

    @property
    def row_lengths(self) -> np.ndarray:
        """Per-row valid lengths, shape ``(rows,)`` (a defensive copy)."""
        if self._keys is None:
            return np.zeros(0, dtype=np.int64)
        if self._row_lengths is None:
            return np.full(self._rows, self._length, dtype=np.int64)
        return self._row_lengths.copy()

    @property
    def is_ragged(self) -> bool:
        """True when rows hold histories of different lengths (some row's
        exposed view therefore has a trailing zero-filled region that an
        attention mask must exclude)."""
        if self._row_lengths is None or not self._row_lengths.size:
            return False
        return int(self._row_lengths.min()) != self._length

    @property
    def capacity(self) -> int:
        """Steps the buffers can hold before the next growth."""
        return 0 if self._keys is None else self._keys.shape[2]

    # ------------------------------------------------------------------- api

    def append(self, new_keys: np.ndarray, new_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values along the sequence axis; return full views.

        Amortized O(1): the new step is written into spare capacity and the
        returned arrays are views of the valid prefix, not copies of the
        history.  When capacity runs out the buffers double (copying the
        valid prefix once into the new allocation).

        When the cache is ragged every row writes at its *own* length, so a
        freshly-joined row's history stays contiguous at the front and the
        zero padding stays trailing.
        """
        if self._keys is not None and self._values is None:
            raise ValueError("KVCache has keys but no values; assign both "
                             "before appending")
        new_keys = np.asarray(new_keys)
        new_values = np.asarray(new_values)
        steps = new_keys.shape[2]
        if self._keys is not None and new_keys.shape[0] != self._rows:
            raise ValueError(f"append expects {self._rows} rows, "
                             f"got {new_keys.shape[0]}")
        if self._row_lengths is None:
            # Uniform fast path: one contiguous write for the whole batch.
            needed = self._length + steps
            if self._keys is None or needed > self._keys.shape[2]:
                self._grow(new_keys, new_values, needed)
            rows = self._rows
            self._keys[:rows, :, self._length:needed] = new_keys
            self._values[:rows, :, self._length:needed] = new_values
            self._length = needed
            return self.keys, self.values
        lengths = self._row_lengths
        needed = (int(lengths.max()) if lengths.size else 0) + steps
        if needed > self._keys.shape[2]:
            self._grow(new_keys, new_values, needed)
        if steps == 1:
            # One decode step: a single scatter along (row, position) beats a
            # Python loop over rows (the continuous scheduler lands here on
            # every iteration of a ragged in-flight batch).
            rows = np.arange(self._rows)
            self._keys[rows, :, lengths] = new_keys[:, :, 0]
            self._values[rows, :, lengths] = new_values[:, :, 0]
        else:
            for row in range(self._rows):
                start = int(lengths[row])
                self._keys[row, :, start:start + steps] = new_keys[row]
                self._values[row, :, start:start + steps] = new_values[row]
        lengths += steps
        self._length = needed
        return self.keys, self.values

    def _grow(self, new_keys: np.ndarray, new_values: np.ndarray,
              needed: int) -> None:
        """Reallocate the step axis to hold ``needed`` steps (doubling).

        Ragged buffers are zero-allocated so trailing regions of short rows
        are never NaN-capable garbage (see the class docstring); uniform
        buffers keep the cheaper uninitialised allocation — no position past
        the shared length is ever read there.
        """
        capacity = max(self.MIN_CAPACITY, 2 * needed,
                       0 if self._keys is None else 2 * self._keys.shape[2])
        if self._keys is None:
            batch, heads, _, head_dim = new_keys.shape
            self._rows = batch
        else:
            batch = self._rows
            _, heads, _, head_dim = self._keys.shape
        alloc = np.empty if self._row_lengths is None else np.zeros
        grown_keys = alloc((batch, heads, capacity, head_dim),
                           dtype=new_keys.dtype)
        grown_values = alloc((batch, heads, capacity, head_dim),
                             dtype=new_values.dtype)
        if self._keys is not None and self._length:
            grown_keys[:, :, :self._length] = self._keys[:batch, :, :self._length]
            grown_values[:, :, :self._length] = self._values[:batch, :, :self._length]
        self._keys = grown_keys
        self._values = grown_values

    def insert_rows(self, index: int, keys: np.ndarray | None = None,
                    values: np.ndarray | None = None, *,
                    count: int | None = None) -> None:
        """Insert rows at ``index``, admitting a request into a live batch.

        Two call shapes:

        * ``insert_rows(i, keys, values)`` — the new rows carry an initial
          history (``(count, heads, steps, head_dim)``): how cross-attention
          caches adopt a joining request's projected encoder memory.
        * ``insert_rows(i, count=n)`` — ``n`` empty rows (length zero): how
          self-attention caches make room before the joiner's first step.
          On an *empty* cache this is a no-op — there is no history to be
          ragged against, and the rows materialise at the first append.

        The surviving rows' histories are preserved bit-for-bit; the row axis
        is rebuilt around the insertion point into zero-filled buffers (the
        cache is ragged from here on, see the class docstring).
        """
        if (keys is None) != (values is None):
            raise ValueError("insert_rows needs keys and values together "
                             "(or neither)")
        if keys is not None:
            keys = np.asarray(keys)
            values = np.asarray(values)
            if values.shape != keys.shape:
                raise ValueError(f"keys shape {keys.shape} != values shape "
                                 f"{values.shape}")
            if count is not None and count != keys.shape[0]:
                raise ValueError(f"count={count} disagrees with "
                                 f"{keys.shape[0]} key rows")
            count = keys.shape[0]
            steps = keys.shape[2]
        else:
            if count is None:
                raise ValueError("insert_rows needs keys/values or count")
            steps = 0
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rows = self.rows
        if self._keys is None and keys is None:
            # Empty cache, empty rows: a pure no-op at ANY index — several
            # requests may join before the first append materialises the row
            # axis, so ``index`` can legitimately exceed the (zero) row
            # count here; the first append carries every pending row.
            if index < 0:
                raise ValueError(f"insert index {index} out of range")
            return
        if index < 0 or index > rows:
            raise ValueError(f"insert index {index} out of range for "
                             f"{rows} rows")
        if self._keys is None:
            batch, heads, _, head_dim = keys.shape
            capacity = max(self.MIN_CAPACITY, 2 * steps)
            self._keys = np.zeros((batch, heads, capacity, head_dim),
                                  dtype=keys.dtype)
            self._values = np.zeros((batch, heads, capacity, head_dim),
                                    dtype=values.dtype)
            self._keys[:, :, :steps] = keys
            self._values[:, :, :steps] = values
            self._rows = batch
            self._length = steps
            self._row_lengths = np.full(batch, steps, dtype=np.int64)
            return
        if self._values is None:
            raise ValueError("KVCache has keys but no values; assign both "
                             "before inserting rows")
        lengths = self.row_lengths
        new_length = max(self._length, steps)
        capacity = self._keys.shape[2]
        if new_length > capacity:
            capacity = max(self.MIN_CAPACITY, 2 * new_length)
        _, heads, _, head_dim = self._keys.shape
        new_rows = rows + count
        grown_keys = np.zeros((new_rows, heads, capacity, head_dim),
                              dtype=self._keys.dtype)
        grown_values = np.zeros((new_rows, heads, capacity, head_dim),
                                dtype=self._values.dtype)
        if self._length:
            grown_keys[:index, :, :self._length] = \
                self._keys[:index, :, :self._length]
            grown_keys[index + count:, :, :self._length] = \
                self._keys[index:rows, :, :self._length]
            grown_values[:index, :, :self._length] = \
                self._values[:index, :, :self._length]
            grown_values[index + count:, :, :self._length] = \
                self._values[index:rows, :, :self._length]
        if steps:
            grown_keys[index:index + count, :, :steps] = keys
            grown_values[index:index + count, :, :steps] = values
        self._keys = grown_keys
        self._values = grown_values
        self._rows = new_rows
        self._length = new_length
        self._row_lengths = np.concatenate(
            [lengths[:index], np.full(count, steps, dtype=np.int64),
             lengths[index:]])

    def retire_rows(self, rows_to_remove) -> None:
        """Remove the given row indices and compact the survivors in place.

        The buffers are reused (surviving rows shift down inside the existing
        allocation); the exposed view narrows to the surviving rows and to
        their longest remaining history.  Retiring every row empties the
        cache entirely.
        """
        drop = sorted(set(int(r) for r in rows_to_remove))
        if not drop:
            return
        if self._keys is None:
            raise ValueError("cannot retire rows from an empty cache")
        if drop[0] < 0 or drop[-1] >= self._rows:
            raise ValueError(f"retire indices {drop} out of range for "
                             f"{self._rows} rows")
        dropped = set(drop)
        keep = [r for r in range(self._rows) if r not in dropped]
        if not keep:
            self.keys = None
            return
        lengths = self.row_lengths[keep]
        prefix = self._length
        self._keys[:len(keep), :, :prefix] = self._keys[keep, :, :prefix]
        self._values[:len(keep), :, :prefix] = self._values[keep, :, :prefix]
        self._rows = len(keep)
        self._row_lengths = lengths
        self._length = int(lengths.max())

    def reorder_rows(self, parents: np.ndarray) -> None:
        """In-place row gather: row ``r`` becomes old row ``parents[r]``.

        Used by beam pruning to make each hypothesis row continue its parent
        hypothesis' history.  Only the valid prefix is touched and the
        buffers are reused — no reallocation, capacity is preserved.
        """
        if self._keys is None or not self._length:
            return
        parents = np.asarray(parents)
        changed = np.nonzero(parents != np.arange(parents.size))[0]
        if not changed.size:
            return
        lo, hi = int(changed[0]), int(changed[-1]) + 1
        moved = parents[lo:hi]
        if int(moved.min()) < lo or int(moved.max()) >= hi:
            # The permutation crosses the untouched span: full gather.
            lo, hi, moved = 0, self._rows, parents
        keys = self._keys[:self._rows, :, :self._length]
        values = self._values[:self._rows, :, :self._length]
        keys[lo:hi] = keys[moved]
        values[lo:hi] = values[moved]
        if self._row_lengths is not None:
            lengths = self._row_lengths.copy()
            lengths[lo:hi] = self._row_lengths[moved]
            self._row_lengths = lengths
            self._length = int(lengths.max())


class MultiHeadAttention(Module):
    """Standard multi-head attention (self- or cross-)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        if dim % num_heads != 0:
            raise ValueError(f"model dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.dropout = dropout
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    # ------------------------------------------------------------------ api

    def __call__(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
        *,
        rng: np.random.Generator | None = None,
        training: bool = False,
        cache: KVCache | None = None,
        use_cached_kv: bool = False,
    ) -> Tensor:
        """Attend ``query`` over ``key``/``value``.

        Parameters
        ----------
        mask:
            Boolean array broadcastable to ``(batch, heads, q_len, k_len)``;
            True marks positions that must NOT be attended.
        cache:
            When given for self-attention decoding, new keys/values are
            appended to the cache and attention runs over the full history.
        use_cached_kv:
            For cross-attention decoding: reuse the cached keys/values without
            recomputing the projections of the (static) encoder output.
        """
        batch, q_len, _ = query.shape

        q = self._split_heads(self.q_proj(query), batch, q_len)

        if use_cached_kv and cache is not None and cache.keys is not None:
            k_data, v_data = cache.keys, cache.values
            k = Tensor(k_data)
            v = Tensor(v_data)
        else:
            k_len = key.shape[1]
            k = self._split_heads(self.k_proj(key), batch, k_len)
            v = self._split_heads(self.v_proj(value), batch, k_len)
            if cache is not None:
                if use_cached_kv:
                    # First call of a cross-attention cache: store projections.
                    cache.keys, cache.values = k.data, v.data
                else:
                    k_data, v_data = cache.append(k.data, v.data)
                    k = Tensor(k_data)
                    v = Tensor(v_data)

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
        weights = weights.dropout(self.dropout, rng, training)
        context = weights.matmul(v)
        merged = self._merge_heads(context, batch, q_len)
        return self.out_proj(merged)

    def forward_data(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: np.ndarray | None = None,
        *,
        dtype: np.dtype,
        cache: KVCache | None = None,
        use_cached_kv: bool = False,
    ) -> np.ndarray:
        """Fused no-tape attention on raw ndarrays (the inference kernel).

        Mirrors :meth:`__call__` with ``training=False`` operation for
        operation — same projections, same score scaling, same mask fill
        value, same softmax shift — so at float64 the result is bitwise
        identical to the tape path while skipping every Tensor/tape
        allocation.  The softmax runs in place on the score buffer
        (max-shifted, so it is numerically safe at float32 too).
        """
        batch, q_len, _ = query.shape

        q = self._split_data(self.q_proj.forward_data(query, dtype), batch, q_len)

        if use_cached_kv and cache is not None and cache.keys is not None:
            k, v = cache.keys, cache.values
        else:
            k_len = key.shape[1]
            k = self._split_data(self.k_proj.forward_data(key, dtype), batch, k_len)
            v = self._split_data(self.v_proj.forward_data(value, dtype), batch, k_len)
            if cache is not None:
                if use_cached_kv:
                    cache.keys, cache.values = k, v
                else:
                    k, v = cache.append(k, v)

        scores = np.matmul(q, np.transpose(k, (0, 1, 3, 2)))
        scores *= 1.0 / float(np.sqrt(self.head_dim))
        if mask is not None:
            np.copyto(scores, -1e9, where=mask)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        context = np.matmul(scores, v)
        merged = np.transpose(context, (0, 2, 1, 3)).reshape(batch, q_len, self.dim)
        return self.out_proj.forward_data(merged, dtype)

    # ------------------------------------------------------------ internals

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, length, dim) -> (batch, heads, length, head_dim)"""
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _split_data(self, x: np.ndarray, batch: int, length: int) -> np.ndarray:
        """Raw-ndarray :meth:`_split_heads` (same view-producing steps)."""
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, heads, length, head_dim) -> (batch, length, dim)"""
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)


def padding_mask(ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Mask of shape (batch, 1, 1, length): True where ``ids`` is padding."""
    return (ids == pad_id)[:, None, None, :]


@lru_cache(maxsize=64)
def _causal_mask_cached(length: int) -> np.ndarray:
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)[None, None, :, :]
    mask.flags.writeable = False
    return mask


def causal_mask(length: int) -> np.ndarray:
    """Mask of shape (1, 1, length, length): True above the diagonal.

    Cached per length (and therefore read-only): every training step and
    teacher-forced decode of the same width shares one allocation.
    """
    return _causal_mask_cached(length)


def combined_decoder_mask(target_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Causal mask combined with target padding mask."""
    length = target_ids.shape[1]
    return causal_mask(length) | padding_mask(target_ids, pad_id)
