"""Multi-head scaled dot-product attention with optional KV caching.

The cache is used only at inference time (greedy/beam decoding): the decoder
feeds one new token per step and attends over the concatenation of cached and
new keys/values, which turns the per-step cost from O(L²) to O(L).

:class:`KVCache` keeps its history in **preallocated, capacity-doubling
buffers**: ``append`` writes the new step into spare capacity and returns
views of the valid prefix, so per-step cache maintenance is amortized O(1)
in copies instead of the O(L) full-history reconcatenation it used to be
(O(L²) per decoded sequence).  Beam pruning re-gathers rows in place via
:meth:`KVCache.reorder_rows` — the buffers are reused, not reallocated.

:meth:`MultiHeadAttention.forward_data` is the fused no-tape kernel used by
the inference fast path: a single pass over raw ndarrays (projections from
dtype-cast cached weights, scaled dot-product scores, in-place masking and a
numerically-safe in-place softmax) with the exact op order of the tape path,
so the float64 fast path is bitwise identical to the reference.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .autograd import Tensor
from .layers import Linear, Module, cast_param


class KVCache:
    """Cached key/value activations for one attention layer.

    Layout is ``(batch_rows, heads, steps, head_dim)``.  Internally the
    arrays are over-allocated along the ``steps`` axis and grown by doubling;
    :attr:`keys`/:attr:`values` expose views of the valid prefix (and accept
    assignment of replacement arrays, which are adopted as the new buffers).
    Views returned before a growth keep referencing the old buffer, so they
    stay valid — growth copies, it never mutates the retired buffer.
    """

    __slots__ = ("_keys", "_values", "_length")

    #: Steps preallocated by the first single-step append; larger first
    #: appends preallocate twice their own length instead.
    MIN_CAPACITY = 8

    def __init__(self, keys: np.ndarray | None = None,
                 values: np.ndarray | None = None) -> None:
        self._keys: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._length = 0
        if (keys is None) != (values is None):
            raise ValueError("KVCache needs keys and values together (or neither)")
        if keys is not None:
            self.keys = keys
            self.values = values

    # ------------------------------------------------------------ properties

    @property
    def keys(self) -> np.ndarray | None:
        """View of the cached keys (``None`` while the cache is empty)."""
        if self._keys is None:
            return None
        return self._keys[:, :, :self._length, :]

    @keys.setter
    def keys(self, array: np.ndarray | None) -> None:
        """Adopt ``array`` as the key buffer; ``None`` empties the whole cache
        (keys *and* values), keeping the two sides symmetric.  Assign keys
        first, then values — length follows the keys."""
        if array is None:
            self._keys = None
            self._values = None
            self._length = 0
        else:
            self._keys = np.asarray(array)
            self._length = self._keys.shape[2]

    @property
    def values(self) -> np.ndarray | None:
        """View of the cached values (``None`` while the cache is empty)."""
        if self._values is None:
            return None
        return self._values[:, :, :self._length, :]

    @values.setter
    def values(self, array: np.ndarray | None) -> None:
        if array is None:
            self._keys = None
            self._values = None
            self._length = 0
        else:
            self._values = np.asarray(array)

    @property
    def length(self) -> int:
        return 0 if self._keys is None else self._length

    @property
    def capacity(self) -> int:
        """Steps the buffers can hold before the next growth."""
        return 0 if self._keys is None else self._keys.shape[2]

    # ------------------------------------------------------------------- api

    def append(self, new_keys: np.ndarray, new_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new keys/values along the sequence axis; return full views.

        Amortized O(1): the new step is written into spare capacity and the
        returned arrays are views of the valid prefix, not copies of the
        history.  When capacity runs out the buffers double (copying the
        valid prefix once into the new allocation).
        """
        if self._keys is not None and self._values is None:
            raise ValueError("KVCache has keys but no values; assign both "
                             "before appending")
        new_keys = np.asarray(new_keys)
        new_values = np.asarray(new_values)
        steps = new_keys.shape[2]
        needed = self._length + steps
        if self._keys is None or needed > self._keys.shape[2]:
            capacity = max(self.MIN_CAPACITY, 2 * needed,
                           0 if self._keys is None else 2 * self._keys.shape[2])
            batch, heads, _, head_dim = new_keys.shape
            grown_keys = np.empty((batch, heads, capacity, head_dim),
                                  dtype=new_keys.dtype)
            grown_values = np.empty((batch, heads, capacity, head_dim),
                                    dtype=new_values.dtype)
            if self._keys is not None and self._length:
                grown_keys[:, :, :self._length] = self._keys[:, :, :self._length]
                grown_values[:, :, :self._length] = self._values[:, :, :self._length]
            self._keys = grown_keys
            self._values = grown_values
        self._keys[:, :, self._length:needed] = new_keys
        self._values[:, :, self._length:needed] = new_values
        self._length = needed
        return self.keys, self.values

    def reorder_rows(self, parents: np.ndarray) -> None:
        """In-place row gather: row ``r`` becomes old row ``parents[r]``.

        Used by beam pruning to make each hypothesis row continue its parent
        hypothesis' history.  Only the valid prefix is touched and the
        buffers are reused — no reallocation, capacity is preserved.
        """
        if self._keys is None or not self._length:
            return
        parents = np.asarray(parents)
        keys = self._keys[:, :, :self._length]
        values = self._values[:, :, :self._length]
        keys[:] = keys[parents]
        values[:] = values[parents]


class MultiHeadAttention(Module):
    """Standard multi-head attention (self- or cross-)."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        if dim % num_heads != 0:
            raise ValueError(f"model dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.dropout = dropout
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    # ------------------------------------------------------------------ api

    def __call__(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: np.ndarray | None = None,
        *,
        rng: np.random.Generator | None = None,
        training: bool = False,
        cache: KVCache | None = None,
        use_cached_kv: bool = False,
    ) -> Tensor:
        """Attend ``query`` over ``key``/``value``.

        Parameters
        ----------
        mask:
            Boolean array broadcastable to ``(batch, heads, q_len, k_len)``;
            True marks positions that must NOT be attended.
        cache:
            When given for self-attention decoding, new keys/values are
            appended to the cache and attention runs over the full history.
        use_cached_kv:
            For cross-attention decoding: reuse the cached keys/values without
            recomputing the projections of the (static) encoder output.
        """
        batch, q_len, _ = query.shape

        q = self._split_heads(self.q_proj(query), batch, q_len)

        if use_cached_kv and cache is not None and cache.keys is not None:
            k_data, v_data = cache.keys, cache.values
            k = Tensor(k_data)
            v = Tensor(v_data)
        else:
            k_len = key.shape[1]
            k = self._split_heads(self.k_proj(key), batch, k_len)
            v = self._split_heads(self.v_proj(value), batch, k_len)
            if cache is not None:
                if use_cached_kv:
                    # First call of a cross-attention cache: store projections.
                    cache.keys, cache.values = k.data, v.data
                else:
                    k_data, v_data = cache.append(k.data, v.data)
                    k = Tensor(k_data)
                    v = Tensor(v_data)

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
        weights = weights.dropout(self.dropout, rng, training)
        context = weights.matmul(v)
        merged = self._merge_heads(context, batch, q_len)
        return self.out_proj(merged)

    def forward_data(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        mask: np.ndarray | None = None,
        *,
        dtype: np.dtype,
        cache: KVCache | None = None,
        use_cached_kv: bool = False,
    ) -> np.ndarray:
        """Fused no-tape attention on raw ndarrays (the inference kernel).

        Mirrors :meth:`__call__` with ``training=False`` operation for
        operation — same projections, same score scaling, same mask fill
        value, same softmax shift — so at float64 the result is bitwise
        identical to the tape path while skipping every Tensor/tape
        allocation.  The softmax runs in place on the score buffer
        (max-shifted, so it is numerically safe at float32 too).
        """
        batch, q_len, _ = query.shape

        q = self._split_data(self.q_proj.forward_data(query, dtype), batch, q_len)

        if use_cached_kv and cache is not None and cache.keys is not None:
            k, v = cache.keys, cache.values
        else:
            k_len = key.shape[1]
            k = self._split_data(self.k_proj.forward_data(key, dtype), batch, k_len)
            v = self._split_data(self.v_proj.forward_data(value, dtype), batch, k_len)
            if cache is not None:
                if use_cached_kv:
                    cache.keys, cache.values = k, v
                else:
                    k, v = cache.append(k, v)

        scores = np.matmul(q, np.transpose(k, (0, 1, 3, 2)))
        scores *= 1.0 / float(np.sqrt(self.head_dim))
        if mask is not None:
            np.copyto(scores, -1e9, where=mask)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        context = np.matmul(scores, v)
        merged = np.transpose(context, (0, 2, 1, 3)).reshape(batch, q_len, self.dim)
        return self.out_proj.forward_data(merged, dtype)

    # ------------------------------------------------------------ internals

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, length, dim) -> (batch, heads, length, head_dim)"""
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _split_data(self, x: np.ndarray, batch: int, length: int) -> np.ndarray:
        """Raw-ndarray :meth:`_split_heads` (same view-producing steps)."""
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        """(batch, heads, length, head_dim) -> (batch, length, dim)"""
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)


def padding_mask(ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Mask of shape (batch, 1, 1, length): True where ``ids`` is padding."""
    return (ids == pad_id)[:, None, None, :]


@lru_cache(maxsize=64)
def _causal_mask_cached(length: int) -> np.ndarray:
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)[None, None, :, :]
    mask.flags.writeable = False
    return mask


def causal_mask(length: int) -> np.ndarray:
    """Mask of shape (1, 1, length, length): True above the diagonal.

    Cached per length (and therefore read-only): every training step and
    teacher-forced decode of the same width shares one allocation.
    """
    return _causal_mask_cached(length)


def combined_decoder_mask(target_ids: np.ndarray, pad_id: int) -> np.ndarray:
    """Causal mask combined with target padding mask."""
    length = target_ids.shape[1]
    return causal_mask(length) | padding_mask(target_ids, pad_id)
