"""Neural-network building blocks on top of the autograd engine.

Every block has two forward paths:

* ``__call__`` — the tape path used for training (Tensor in, Tensor out);
* ``forward_data`` — the no-tape inference kernel on raw ndarrays, running
  at the execution mode's compute dtype.  Parameters keep float64 masters;
  :func:`cast_param` memoises the dtype-cast copies the fast path reads,
  keyed by each parameter's :attr:`~repro.model.autograd.Tensor.version`
  (bumped by the optimiser / checkpoint loader on in-place updates), so a
  float32 decode never pays a per-step cast and never reads stale weights.

The ``forward_data`` kernels replicate the tape path's float expressions
operation for operation, which is what makes the float64 fast path bitwise
identical to the tape reference (see ``tests/test_inference_fastpath.py``).
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, embedding_lookup, parameter


def cast_param(cache: dict, param: Tensor, dtype) -> np.ndarray:
    """``param.data`` cast to ``dtype``, memoised in ``cache``.

    When ``dtype`` matches the master dtype the master array itself is
    returned (``astype(copy=False)``), so the float64 fast path can never go
    stale.  Other dtypes cache one cast copy, invalidated when the parameter
    is rebound (``id`` changes) or mutated in place (``version`` bumped).
    """
    key = np.dtype(dtype)
    token = (id(param.data), param.version)
    hit = cache.get(key)
    if hit is not None and hit[0] == token:
        return hit[1]
    cast = param.data.astype(key, copy=False)
    cache[key] = (token, cast)
    return cast


def gelu_data(x: np.ndarray) -> np.ndarray:
    """Raw-ndarray GELU (tanh approximation), matching :meth:`Tensor.gelu`
    expression for expression (the cubic is explicit multiplies there too)."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = c * (x + 0.044715 * (x * x * x))
    t = np.tanh(inner)
    return 0.5 * x * (1.0 + t)


class Module:
    """Base class: tracks parameters of itself and registered sub-modules."""

    def parameters(self) -> list[Tensor]:
        """Return every trainable parameter reachable from this module."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in vars(self).values():
            params.extend(_collect(value, seen))
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))


def _collect(value, seen: set[int]) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) in seen:
            return []
        seen.add(id(value))
        return [value]
    if isinstance(value, Module):
        out = []
        for sub in vars(value).values():
            out.extend(_collect(sub, seen))
        return out
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_collect(item, seen))
        return out
    return []


class Linear(Module):
    """Affine projection ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, *, bias: bool = True) -> None:
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = parameter(rng.normal(0.0, scale, size=(in_features, out_features)),
                                name="linear.weight")
        self.bias = parameter(np.zeros(out_features), name="linear.bias") if bias else None
        self._cast_weight: dict = {}
        self._cast_bias: dict = {}

    def __call__(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def forward_data(self, x: np.ndarray, dtype) -> np.ndarray:
        """No-tape affine projection; weights stored pre-oriented ``(in, out)``
        so the projection is a single matmul with no transpose."""
        out = np.matmul(x, cast_param(self._cast_weight, self.weight, dtype))
        if self.bias is not None:
            out += cast_param(self._cast_bias, self.bias, dtype)
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, epsilon: float = 1e-5) -> None:
        self.gamma = parameter(np.ones(dim), name="layernorm.gamma")
        self.beta = parameter(np.zeros(dim), name="layernorm.beta")
        self.epsilon = epsilon
        self._cast_gamma: dict = {}
        self._cast_beta: dict = {}

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.epsilon).sqrt()
        return normalised * self.gamma + self.beta

    def forward_data(self, x: np.ndarray, dtype) -> np.ndarray:
        # Same expression as the tape path, which computes the mean as
        # sum * (1/dim) with the reciprocal lifted to the compute dtype.
        inv_dim = np.asarray(1.0 / x.shape[-1], dtype=dtype)
        mean = x.sum(axis=-1, keepdims=True) * inv_dim
        centered = x - mean
        variance = (centered * centered).sum(axis=-1, keepdims=True) * inv_dim
        normalised = centered / np.sqrt(variance + np.asarray(self.epsilon, dtype=dtype))
        return (normalised * cast_param(self._cast_gamma, self.gamma, dtype)
                + cast_param(self._cast_beta, self.beta, dtype))


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator) -> None:
        self.weight = parameter(rng.normal(0.0, 0.02, size=(vocab_size, dim)),
                                name="embedding.weight")
        self.dim = dim
        self._cast_weight: dict = {}

    def __call__(self, ids: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, ids)

    def lookup_data(self, ids: np.ndarray, dtype) -> np.ndarray:
        """No-tape row gather from the dtype-cast embedding table."""
        return cast_param(self._cast_weight, self.weight, dtype)[np.asarray(ids, dtype=np.int64)]


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)
        self.dropout = dropout

    def __call__(self, x: Tensor, *, rng: np.random.Generator | None = None,
                 training: bool = False) -> Tensor:
        hidden = self.fc1(x).gelu()
        hidden = hidden.dropout(self.dropout, rng, training)
        return self.fc2(hidden)

    def forward_data(self, x: np.ndarray, dtype) -> np.ndarray:
        return self.fc2.forward_data(gelu_data(self.fc1.forward_data(x, dtype)), dtype)


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positional encoding matrix of shape ``(length, dim)``."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class PositionalEncoding(Module):
    """Adds (non-trainable) sinusoidal position information to embeddings."""

    def __init__(self, max_length: int, dim: int) -> None:
        self.encoding = sinusoidal_positions(max_length, dim)
        self.max_length = max_length
        self.dim = dim
        self._cast_encoding: dict = {}

    def __call__(self, x: Tensor, offset: int = 0) -> Tensor:
        length = x.shape[-2]
        self._check_bounds(offset, length)
        positions = Tensor(self.encoding[offset:offset + length])
        return x + positions

    def slice_data(self, offset: int, length: int, dtype) -> np.ndarray:
        """The dtype-cast encoding rows ``[offset, offset + length)``.

        The cast table is cached per dtype (the encoding is static), so a
        float32 decode reads a slice view rather than re-casting per step.
        """
        self._check_bounds(offset, length)
        return self._cast_table(dtype)[offset:offset + length]

    def rows_data(self, positions: np.ndarray, dtype) -> np.ndarray:
        """Per-row encoding gather: row ``r`` gets position ``positions[r]``.

        Shape ``(rows, 1, dim)`` — the continuous decode step's positional
        term, where every batch row sits at its own decode position.  Each
        row is the same table entry :meth:`slice_data` would return for that
        position, so a row's sum is bitwise identical to its sequential
        decode.
        """
        positions = np.asarray(positions)
        if positions.size and int(positions.max()) >= self.max_length:
            raise ValueError(
                f"position {int(positions.max())} exceeds positional table "
                f"({self.max_length}); increase ModelConfig.max_positions"
            )
        return self._cast_table(dtype)[positions][:, None, :]

    def _cast_table(self, dtype) -> np.ndarray:
        key = np.dtype(dtype)
        table = self._cast_encoding.get(key)
        if table is None:
            table = self.encoding.astype(key, copy=False)
            self._cast_encoding[key] = table
        return table

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset + length > self.max_length:
            raise ValueError(
                f"sequence of length {offset + length} exceeds positional table "
                f"({self.max_length}); increase ModelConfig.max_positions"
            )
