"""Neural-network building blocks on top of the autograd engine."""

from __future__ import annotations

import numpy as np

from .autograd import Tensor, embedding_lookup, parameter


class Module:
    """Base class: tracks parameters of itself and registered sub-modules."""

    def parameters(self) -> list[Tensor]:
        """Return every trainable parameter reachable from this module."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in vars(self).values():
            params.extend(_collect(value, seen))
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))


def _collect(value, seen: set[int]) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) in seen:
            return []
        seen.add(id(value))
        return [value]
    if isinstance(value, Module):
        out = []
        for sub in vars(value).values():
            out.extend(_collect(sub, seen))
        return out
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_collect(item, seen))
        return out
    return []


class Linear(Module):
    """Affine projection ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, *, bias: bool = True) -> None:
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = parameter(rng.normal(0.0, scale, size=(in_features, out_features)),
                                name="linear.weight")
        self.bias = parameter(np.zeros(out_features), name="linear.bias") if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, epsilon: float = 1e-5) -> None:
        self.gamma = parameter(np.ones(dim), name="layernorm.gamma")
        self.beta = parameter(np.zeros(dim), name="layernorm.beta")
        self.epsilon = epsilon

    def __call__(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.epsilon).sqrt()
        return normalised * self.gamma + self.beta


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator) -> None:
        self.weight = parameter(rng.normal(0.0, 0.02, size=(vocab_size, dim)),
                                name="embedding.weight")
        self.dim = dim

    def __call__(self, ids: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, ids)


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)
        self.dropout = dropout

    def __call__(self, x: Tensor, *, rng: np.random.Generator | None = None,
                 training: bool = False) -> Tensor:
        hidden = self.fc1(x).gelu()
        hidden = hidden.dropout(self.dropout, rng, training)
        return self.fc2(hidden)


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positional encoding matrix of shape ``(length, dim)``."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class PositionalEncoding(Module):
    """Adds (non-trainable) sinusoidal position information to embeddings."""

    def __init__(self, max_length: int, dim: int) -> None:
        self.encoding = sinusoidal_positions(max_length, dim)
        self.max_length = max_length
        self.dim = dim

    def __call__(self, x: Tensor, offset: int = 0) -> Tensor:
        length = x.shape[-2]
        if offset + length > self.max_length:
            raise ValueError(
                f"sequence of length {offset + length} exceeds positional table "
                f"({self.max_length}); increase ModelConfig.max_positions"
            )
        positions = Tensor(self.encoding[offset:offset + length])
        return x + positions
