"""Pluggable decoding strategies: the registry behind ``repro.api``.

Before this module existed, every layer of the stack dispatched decodes
through its own ``if generation.beam_size > 1`` ladder and threaded each new
decoding knob (``beam_size``, ``length_penalty``, ...) by hand through five
call sites.  A :class:`DecodingStrategy` packages one decoding *algorithm
plus its parameters* as a frozen, serialisable value object that every layer
passes through unchanged:

* :meth:`DecodingStrategy.decode` / :meth:`DecodingStrategy.decode_batch`
  run the sequential / batched implementation (both built on the existing
  decoders and :class:`repro.model.generation.DecoderLoop`, so the KV-cache
  fast path is inherited);
* :meth:`DecodingStrategy.canonical` is the **canonical serialized form** —
  the single string that serving derives cache keys, micro-batch group keys
  and per-config metrics labels from, so two requests share a batch exactly
  when they share a cache entry, with no hand-maintained label functions;
* :meth:`DecodingStrategy.to_dict` / :func:`strategy_from_dict` are the wire
  format used by the v1 HTTP API (``{"name": "beam", "beam_size": 4, ...}``).

Strategies register themselves under a short name (:func:`register_strategy`)
so new algorithms become one new class instead of a cross-layer kwarg sweep:

>>> strategy_from_dict({"name": "sample", "temperature": 0.8, "seed": 7})
SampleStrategy(temperature=0.8, top_k=0, top_p=1.0, seed=7)

Streaming: every strategy accepts an ``on_token`` callback.  Greedy and
sampling invoke it the moment each token is emitted; beam search only knows
its best hypothesis once search finishes, so it replays the winning tokens
through the callback at the end (the streaming protocol still holds — the
chunks just arrive late).

:class:`SampleStrategy` is the new workload: temperature / top-k / top-p
sampling with an **explicit seed**.  Sampling is bitwise reproducible — the
per-row RNG stream depends only on ``seed`` (never on batch composition), and
token selection runs in float64 off the model's logits, so the same seed
yields the same tokens sequentially and batched, and across the tape and
float64 inference paths (``tests/test_sampling_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Iterator
import math

import numpy as np

from .generation import (
    DecoderLoop,
    GenerationConfig,
    _candidate_key,
    _decode_mode,
    _log_softmax_rows,
    _ranked_top_tokens,
    _strip_eos,
    beam_search_decode,
    beam_search_decode_batch,
    beam_search_nbest,
    greedy_decode,
    greedy_decode_batch,
)
from .transformer import Seq2SeqTransformer

#: Sequential streaming callback: called with each emitted token id.
OnToken = Callable[[int], None]
#: Batched streaming callback: called with ``(source_index, token_id)``.
OnTokenBatch = Callable[[int, int], None]

#: Largest accepted beam size; beam cost scales linearly with the hypothesis
#: count, so an unbounded client value is a denial-of-service knob.  Lives
#: here (not in the HTTP layer) so every entry point enforces the same bound.
MAX_BEAM_SIZE = 16

#: Largest accepted top-k; like the beam bound, a sanity cap shared by every
#: entry point (0 means "no top-k filtering").
MAX_TOP_K = 1024


class StrategyParamError(ValueError):
    """An invalid strategy parameter, carrying the offending field name.

    ``kind`` is the machine-readable failure class — ``"type"`` (wrong JSON
    type), ``"value"`` (right type, out of range), or ``"unknown"`` (no such
    parameter/strategy) — so the API layer (:mod:`repro.api`) maps this onto
    its structured error envelope and the 400/422 status split without
    string matching, which is what keeps server and service validation
    identical.
    """

    def __init__(self, field: str, message: str, *, kind: str = "value") -> None:
        super().__init__(message)
        self.field = field
        self.kind = kind


def _require_int(name: str, value, *, minimum: int, maximum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise StrategyParamError(name, f'"{name}" must be an integer',
                                 kind="type")
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise StrategyParamError(name, f'"{name}" must be {bound}')
    return value


def _require_number(name: str, value, *, minimum: float | None = None,
                    minimum_exclusive: float | None = None,
                    maximum: float | None = None) -> float:
    """A finite float within bounds; NaN/inf are rejected for every field.

    A non-finite parameter would poison beam ranking (NaN breaks the
    candidate total order), sampling renormalisation and the cache key, so
    the rejection lives here — the single validation point — rather than in
    each transport layer.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise StrategyParamError(name, f'"{name}" must be a number',
                                 kind="type")
    value = float(value)
    if not math.isfinite(value):
        raise StrategyParamError(name, f'"{name}" must be finite')
    if minimum is not None and value < minimum:
        raise StrategyParamError(name, f'"{name}" must be >= {minimum}')
    if minimum_exclusive is not None and value <= minimum_exclusive:
        raise StrategyParamError(name, f'"{name}" must be > {minimum_exclusive}')
    if maximum is not None and value > maximum:
        raise StrategyParamError(name, f'"{name}" must be <= {maximum}')
    return value


def _coerce_float_fields(strategy: DecodingStrategy, *names: str) -> None:
    """Normalise real-number fields of a frozen strategy to ``float``.

    JSON clients spell ``1.0`` as ``1`` freely; without coercion the int and
    float spellings of the same value would ``repr`` differently and get
    distinct canonical forms — distinct cache entries and micro-batch groups
    for identical decodes.  Non-numeric junk is left untouched for
    :meth:`validate` to reject with a proper type error.
    """
    for name in names:
        value = getattr(strategy, name)
        if isinstance(value, int) and not isinstance(value, bool):
            object.__setattr__(strategy, name, float(value))


@dataclass(frozen=True)
class DecodingStrategy:
    """Base class: one decoding algorithm plus its (frozen) parameters.

    Subclasses are frozen dataclasses whose fields are exactly the wire
    parameters; the base class derives serialisation, the canonical string
    and strict construction from the dataclass machinery, so a new strategy
    only implements :meth:`validate`, :meth:`decode` and :meth:`decode_batch`.
    """

    #: Registry key and wire name; set by each subclass.
    name: ClassVar[str] = ""

    # ------------------------------------------------------- serialisation

    def params(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> dict:
        """The v1 wire form: ``{"name": ..., <param>: ..., ...}``."""
        return {"name": self.name, **self.params()}

    def canonical(self) -> str:
        """The canonical serialized form (cache keys, batch groups, metrics).

        Two strategies share micro-batches, cache entries and metric buckets
        exactly when their canonical strings are equal, so every
        output-changing parameter must appear here at full precision
        (``repr``, not a rounded format).
        """
        params = ",".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{self.name}:{params}" if params else self.name

    @classmethod
    def from_params(cls, params: dict) -> "DecodingStrategy":
        """Strict construction: unknown parameters are rejected by name."""
        known = {f.name for f in fields(cls)}
        for key in params:
            if key not in known:
                raise StrategyParamError(
                    key, f'unknown parameter "{key}" for strategy "{cls.name}"',
                    kind="unknown")
        strategy = cls(**params)
        strategy.validate()
        return strategy

    # ---------------------------------------------------------- behaviour

    def validate(self) -> None:
        """Raise :class:`StrategyParamError` on any out-of-range parameter."""

    def normalised(self) -> "DecodingStrategy":
        """The strategy whose canonical form keys caches and batches.

        Parameter combinations that cannot change the output collapse to one
        representative (e.g. ``beam_size=1`` is greedy regardless of length
        penalty), so equivalent requests share cache entries and batches.
        """
        return self

    def decode(self, model: Seq2SeqTransformer, source_ids: list[int], *,
               sos_id: int, eos_id: int, pad_id: int, max_length: int = 400,
               on_token: OnToken | None = None) -> list[int]:
        raise NotImplementedError

    def decode_batch(self, model: Seq2SeqTransformer,
                     source_ids_batch: list[list[int]], *, sos_id: int,
                     eos_id: int, pad_id: int, max_length: int = 400,
                     on_token: OnTokenBatch | None = None) -> list[list[int]]:
        raise NotImplementedError

    def row_state(self, *, sos_id: int, eos_id: int, max_length: int = 400,
                  on_token: OnToken | None = None) -> "RowDecodeState":
        """The per-request state machine for continuous batching.

        Returns a fresh :class:`RowDecodeState` that drives this strategy's
        rows inside a shared iteration-level batch
        (:class:`repro.serving.sched.InflightBatch`).  Strategies that cannot
        guarantee batch-invariant outputs raise ``NotImplementedError`` — the
        scheduler then routes such requests to the static micro-batcher.
        """
        raise NotImplementedError(
            f"strategy {self.name!r} does not support continuous batching")

    # ------------------------------------------------------------- candidates

    def nbest_limit(self) -> int:
        """How many distinct candidates this strategy can produce per source.

        Deterministic single-hypothesis strategies (greedy) return 1; beam
        search is bounded by its beam size; sampling is effectively unbounded
        (each extra candidate re-seeds the stream).  Verification uses this
        to avoid asking for candidates a strategy cannot provide.
        """
        return 1

    def decode_nbest(self, model: Seq2SeqTransformer, source_ids: list[int], *,
                     sos_id: int, eos_id: int, pad_id: int,
                     max_length: int = 400,
                     max_candidates: int = 1) -> list[list[int]]:
        """Up to ``max_candidates`` candidate generations, best first.

        Candidate 0 is **always** exactly what :meth:`decode` returns — the
        verification layer relies on that to reuse the already-served result
        as the first candidate without re-decoding.  The default produces the
        single :meth:`decode` hypothesis.
        """
        del max_candidates
        return [self.decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                            pad_id=pad_id, max_length=max_length)]


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_REGISTRY: dict[str, type[DecodingStrategy]] = {}


def register_strategy(cls: type[DecodingStrategy]) -> type[DecodingStrategy]:
    """Class decorator: register ``cls`` under its :attr:`name`."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if _REGISTRY.get(cls.name, cls) is not cls:
        raise ValueError(f"strategy name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def registered_strategies() -> dict[str, type[DecodingStrategy]]:
    """Snapshot of the registry (wire name -> strategy class)."""
    return dict(_REGISTRY)


def strategy_from_dict(data: dict | str) -> DecodingStrategy:
    """Build a strategy from its wire form (a dict, or a bare name string)."""
    if isinstance(data, str):
        data = {"name": data}
    if not isinstance(data, dict):
        raise StrategyParamError(
            "strategy", '"strategy" must be a name or an object with a "name"',
            kind="type")
    params = dict(data)
    name = params.pop("name", None)
    if not isinstance(name, str) or not name:
        raise StrategyParamError("strategy.name", 'strategy "name" is required',
                                 kind="type")
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY))
        raise StrategyParamError(
            "strategy.name", f'unknown strategy "{name}" (known: {known})',
            kind="unknown")
    return cls.from_params(params)


def strategy_from_generation(generation: GenerationConfig | None) -> DecodingStrategy:
    """The strategy equivalent of a legacy :class:`GenerationConfig`.

    ``beam_size <= 1`` normalises to greedy (the length penalty only reranks
    beam hypotheses), mirroring the pre-registry cache-key normalisation.
    """
    if generation is None or generation.beam_size <= 1:
        return GreedyStrategy()
    return BeamStrategy(beam_size=generation.beam_size,
                        length_penalty=generation.length_penalty)


def merge_legacy_overrides(base: GenerationConfig, beam_size: int | None,
                           length_penalty: float | None) -> GenerationConfig:
    """Validate the deprecated ``(beam_size, length_penalty)`` override pair
    and merge it onto ``base`` — the pre-v1 resolution semantics.

    A partial override keeps the other knob from ``base`` (``beam_size=4``
    alone keeps the configured penalty, a lone ``length_penalty=`` keeps the
    configured beam size).  This is the **single** implementation of the
    legacy mapping; the serving shim and the deprecated ``predict_*`` kwargs
    both call it, and :func:`strategy_from_generation` turns the result into
    the canonical strategy.  Raises :class:`StrategyParamError` on bad
    values.
    """
    if beam_size is not None:
        _require_int("beam_size", beam_size, minimum=1, maximum=MAX_BEAM_SIZE)
    if length_penalty is not None:
        length_penalty = _require_number("length_penalty", length_penalty,
                                         minimum=0.0)
    return GenerationConfig(
        max_length=base.max_length,
        beam_size=base.beam_size if beam_size is None else beam_size,
        length_penalty=(base.length_penalty if length_penalty is None
                        else length_penalty),
    )


# --------------------------------------------------------------------------
# Per-row strategy state machines (continuous batching)
# --------------------------------------------------------------------------


class RowDecodeState:
    """One request's decode state machine inside a continuous batch.

    The scheduler owns a shared step loop
    (:class:`repro.model.generation.ContinuousDecoderLoop`); each request
    contributes :attr:`rows` rows plus a state machine that consumes its
    block of logits every iteration and yields the tokens to feed next.
    Implementations replicate the corresponding *batched* decoder's math
    operation for operation (same argsort kinds, same float accumulation,
    same tie-breaking), so a request's output is bitwise identical to its
    sequential decode regardless of what joins or retires around it.
    """

    #: Rows this request occupies (``beam_size`` for beam search).
    rows: int = 1

    def __init__(self, *, sos_id: int, eos_id: int, max_length: int = 400,
                 on_token: OnToken | None = None) -> None:
        self.sos_id = sos_id
        self.eos_id = eos_id
        self.max_length = max_length
        self.on_token = on_token
        self.steps = 0
        self.finished = False

    def first_tokens(self) -> list[int]:
        """The tokens fed at this request's first step (SOS per row)."""
        return [self.sos_id] * self.rows

    def advance(self, logits: np.ndarray) -> tuple[list[int], list[int] | None]:
        """Consume this block's logits ``(rows, vocab)`` for one step.

        Returns ``(next_tokens, parents)``: the token to feed each row next
        step, and — for beam search — the block-local parent row each row
        must continue (``None`` when every row continues itself).  Sets
        :attr:`finished` once the request is complete.
        """
        raise NotImplementedError

    def result(self) -> list[int]:
        """The generated ids (no SOS/EOS), valid once :attr:`finished`."""
        raise NotImplementedError


class GreedyRowState(RowDecodeState):
    """Replicates :func:`repro.model.generation.greedy_decode` per step:
    argmax of the row's logits, stopping on EOS or ``max_length`` tokens."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.ids: list[int] = []

    def advance(self, logits: np.ndarray) -> tuple[list[int], list[int] | None]:
        token = int(np.argmax(logits[0]))
        self.steps += 1
        if token == self.eos_id:
            self.finished = True
        else:
            self.ids.append(token)
            if self.on_token is not None:
                self.on_token(token)
            if self.steps >= self.max_length:
                self.finished = True
        return [self.eos_id if self.finished else token], None

    def result(self) -> list[int]:
        return self.ids


class SampleRowState(RowDecodeState):
    """Replicates :func:`sample_decode`: a private ``default_rng(seed)``
    stream with exactly one draw per emitted position — batch composition
    can never perturb the stream, which is the sampling batch-invariance
    property the static batched sampler already relies on."""

    def __init__(self, *, temperature: float, top_k: int, top_p: float,
                 seed: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.temperature = temperature
        self.top_k = top_k
        self.top_p = top_p
        self.rng = np.random.default_rng(seed)
        self.ids: list[int] = []

    def advance(self, logits: np.ndarray) -> tuple[list[int], list[int] | None]:
        z = _scaled_logits(logits[0], self.temperature)
        order = np.argsort(-z, kind="stable")
        token = _sample_from_order(z, order, top_k=self.top_k,
                                   top_p=self.top_p, rng=self.rng)
        self.steps += 1
        if token == self.eos_id:
            self.finished = True
        else:
            self.ids.append(token)
            if self.on_token is not None:
                self.on_token(token)
            if self.steps >= self.max_length:
                self.finished = True
        return [self.eos_id if self.finished else token], None

    def result(self) -> list[int]:
        return self.ids


class BeamRowState(RowDecodeState):
    """Replicates one source block of :func:`beam_search_decode_batch`
    bit-for-bit: same candidate enumeration order, same
    :func:`_candidate_key` total order, same Python-float score
    accumulation — which the differential harness proves equal to the
    sequential beam search.  Block slot == sequential beam rank, so slot 0
    is always the best hypothesis."""

    def __init__(self, *, beam_size: int, length_penalty: float,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.rows = beam_size
        self.length_penalty = length_penalty
        self.ids: list[list[int]] = [[] for _ in range(beam_size)]
        self.scores: list[float] = [0.0] * beam_size
        self.done: list[bool] = [False] * beam_size
        # Only slot 0 is a real hypothesis before the first pruning pass
        # (the sequential path starts from a single empty beam).
        self.valid: list[bool] = [slot == 0 for slot in range(beam_size)]

    def advance(self, logits: np.ndarray) -> tuple[list[int], list[int] | None]:
        beam_size = self.rows
        log_probs = _log_softmax_rows(logits)
        candidates: list[tuple[tuple, list[int], float, bool, int]] = []
        for rank in range(beam_size):
            if not self.valid[rank]:
                continue
            if self.done[rank]:
                key = _candidate_key(self.scores[rank], self.ids[rank],
                                     self.length_penalty,
                                     self.ids[rank][-1], rank)
                candidates.append((key, self.ids[rank], self.scores[rank],
                                   True, rank))
                continue
            row_log_probs = log_probs[rank]
            for token in _ranked_top_tokens(row_log_probs, beam_size):
                cand_ids = self.ids[rank] + [token]
                score = self.scores[rank] + float(row_log_probs[token])
                key = _candidate_key(score, cand_ids, self.length_penalty,
                                     token, rank)
                candidates.append((key, cand_ids, score,
                                   token == self.eos_id, rank))
        candidates.sort(key=lambda c: c[0])
        next_ids = list(self.ids)
        next_scores = list(self.scores)
        next_done = list(self.done)
        next_valid = list(self.valid)
        parents = list(range(beam_size))
        feed = [self.eos_id] * beam_size
        for slot, (_, cand_ids, score, done, parent) in \
                enumerate(candidates[:beam_size]):
            next_ids[slot] = cand_ids
            next_scores[slot] = score
            next_done[slot] = done
            next_valid[slot] = True
            parents[slot] = parent
            if not done:
                feed[slot] = cand_ids[-1]
        self.ids, self.scores = next_ids, next_scores
        self.done, self.valid = next_done, next_valid
        self.steps += 1
        if (all(done for done, live in zip(self.done, self.valid) if live)
                or self.steps >= self.max_length):
            self.finished = True
        return feed, parents

    def result(self) -> list[int]:
        ids = _strip_eos(self.ids[0], self.eos_id)
        if self.on_token is not None:
            # The winning hypothesis is only known once search finishes —
            # replay it, exactly like the static BeamStrategy streaming.
            for token in ids:
                self.on_token(token)
        return ids


# --------------------------------------------------------------------------
# Greedy / beam: thin strategy wrappers over the existing decoders
# --------------------------------------------------------------------------


@register_strategy
@dataclass(frozen=True)
class GreedyStrategy(DecodingStrategy):
    """Deterministic argmax decoding (the serving default)."""

    name: ClassVar[str] = "greedy"

    def canonical(self) -> str:
        return "greedy"

    def decode(self, model, source_ids, *, sos_id, eos_id, pad_id,
               max_length=400, on_token=None):
        return greedy_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                             pad_id=pad_id, max_length=max_length,
                             on_token=on_token)

    def decode_batch(self, model, source_ids_batch, *, sos_id, eos_id, pad_id,
                     max_length=400, on_token=None):
        return greedy_decode_batch(model, source_ids_batch, sos_id=sos_id,
                                   eos_id=eos_id, pad_id=pad_id,
                                   max_length=max_length, on_token=on_token)

    def row_state(self, *, sos_id, eos_id, max_length=400, on_token=None):
        return GreedyRowState(sos_id=sos_id, eos_id=eos_id,
                              max_length=max_length, on_token=on_token)


@register_strategy
@dataclass(frozen=True)
class BeamStrategy(DecodingStrategy):
    """Beam search (the paper's headline quality setting)."""

    name: ClassVar[str] = "beam"

    beam_size: int = 3
    length_penalty: float = 0.6

    def __post_init__(self) -> None:
        _coerce_float_fields(self, "length_penalty")

    def canonical(self) -> str:
        # Keeps the pre-registry label format ("beam4:lp0.6"), so dashboards
        # and the per-config metrics history stay comparable across versions.
        return f"beam{self.beam_size}:lp{self.length_penalty!r}"

    def validate(self) -> None:
        _require_int("beam_size", self.beam_size, minimum=1,
                     maximum=MAX_BEAM_SIZE)
        _require_number("length_penalty", self.length_penalty, minimum=0.0)

    def normalised(self) -> DecodingStrategy:
        # beam_size=1 *is* greedy (beam_search_decode delegates), and greedy
        # ignores the length penalty — collapse so such requests share the
        # greedy cache entries and batches, as they always have.
        return GreedyStrategy() if self.beam_size <= 1 else self

    def decode(self, model, source_ids, *, sos_id, eos_id, pad_id,
               max_length=400, on_token=None):
        ids = beam_search_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                                 pad_id=pad_id, beam_size=self.beam_size,
                                 max_length=max_length,
                                 length_penalty=self.length_penalty)
        if on_token is not None:
            # The winning hypothesis is only known once search finishes.
            for token in ids:
                on_token(token)
        return ids

    def decode_batch(self, model, source_ids_batch, *, sos_id, eos_id, pad_id,
                     max_length=400, on_token=None):
        outputs = beam_search_decode_batch(
            model, source_ids_batch, sos_id=sos_id, eos_id=eos_id,
            pad_id=pad_id, beam_size=self.beam_size, max_length=max_length,
            length_penalty=self.length_penalty)
        if on_token is not None:
            for index, ids in enumerate(outputs):
                for token in ids:
                    on_token(index, token)
        return outputs

    def row_state(self, *, sos_id, eos_id, max_length=400, on_token=None):
        if self.beam_size <= 1:
            # beam_size=1 *is* greedy — same delegation as decode().
            return GreedyRowState(sos_id=sos_id, eos_id=eos_id,
                                  max_length=max_length, on_token=on_token)
        return BeamRowState(beam_size=self.beam_size,
                            length_penalty=self.length_penalty,
                            sos_id=sos_id, eos_id=eos_id,
                            max_length=max_length, on_token=on_token)

    def nbest_limit(self) -> int:
        return self.beam_size

    def decode_nbest(self, model, source_ids, *, sos_id, eos_id, pad_id,
                     max_length=400, max_candidates=1):
        hypotheses = beam_search_nbest(
            model, source_ids, sos_id=sos_id, eos_id=eos_id, pad_id=pad_id,
            beam_size=self.beam_size, max_length=max_length,
            length_penalty=self.length_penalty)
        return hypotheses[:max(1, max_candidates)]


# --------------------------------------------------------------------------
# Sampling: the new workload
# --------------------------------------------------------------------------


def _scaled_logits(logits: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature-scaled float64 logits (1-D row or 2-D batch of rows).

    Elementwise, so scaling a whole batch is bitwise identical per row to
    scaling each row alone — the property the batched sampler leans on.
    """
    z = np.asarray(logits, dtype=np.float64)
    return z / temperature if temperature != 1.0 else z


def _sample_from_order(z: np.ndarray, order: np.ndarray, *, top_k: int,
                       top_p: float, rng: np.random.Generator) -> int:
    """Draw one token given scaled logits ``z`` and their descending order.

    The draw consumes exactly one ``rng.random()``, and all arithmetic is
    float64 off ``z`` — equal logit bit patterns plus an equal RNG state
    always produce the same token.
    """
    if 0 < top_k < order.size:
        order = order[:top_k]
    shifted = z[order] - z[order[0]]
    probs = np.exp(shifted)
    probs /= probs.sum()
    if top_p < 1.0:
        cumulative = np.cumsum(probs)
        keep = int(np.searchsorted(cumulative, top_p, side="left")) + 1
        order = order[:keep]
        probs = probs[:keep] / probs[:keep].sum()
    draw = rng.random()
    index = int(np.searchsorted(np.cumsum(probs), draw, side="right"))
    return int(order[min(index, order.size - 1)])


def _sample_token(logits: np.ndarray, *, temperature: float, top_k: int,
                  top_p: float, rng: np.random.Generator, eos_id: int) -> int:
    """Draw one token id from ``logits`` — deterministically given the bits.

    Selection runs entirely in float64 (exact for float32 or float64 model
    logits), ties rank by ascending token id (a stable sort on the negated
    logits), and the draw consumes exactly one ``rng.random()`` — so equal
    logit bit patterns plus an equal RNG state always produce the same token,
    which is what makes sequential and batched sampling exact-match equal.

    ``eos_id`` is unused by the math but kept in the signature so callers
    can't accidentally drop it from the per-step contract.
    """
    z = _scaled_logits(logits, temperature)
    order = np.argsort(-z, kind="stable")
    return _sample_from_order(z, order, top_k=top_k, top_p=top_p, rng=rng)


def sample_decode(model: Seq2SeqTransformer, source_ids: list[int], *,
                  sos_id: int, eos_id: int, pad_id: int, max_length: int = 400,
                  temperature: float = 1.0, top_k: int = 0, top_p: float = 1.0,
                  seed: int = 0, on_token: OnToken | None = None) -> list[int]:
    """Seeded ancestral sampling for a single source sequence.

    The RNG stream is ``np.random.default_rng(seed)`` with exactly one draw
    per emitted position, so a given ``seed`` fully determines the output for
    given model logits.  Mirrors :func:`repro.model.generation.greedy_decode`
    otherwise (empty source generates nothing; EOS stops).
    """
    if not source_ids:
        return []
    rng = np.random.default_rng(seed)
    with _decode_mode():
        src = np.asarray([source_ids], dtype=np.int64)
        memory = model.encode(src, pad_id, training=False)
        state = model.start_decoding()

        generated: list[int] = []
        current = np.asarray([[sos_id]], dtype=np.int64)
        for _ in range(max_length):
            logits = model.decode_step(current, memory, src, pad_id, state)
            next_id = _sample_token(logits[0], temperature=temperature,
                                    top_k=top_k, top_p=top_p, rng=rng,
                                    eos_id=eos_id)
            if next_id == eos_id:
                break
            generated.append(next_id)
            if on_token is not None:
                on_token(next_id)
            current = np.asarray([[next_id]], dtype=np.int64)
        return generated


def sample_decode_batch(model: Seq2SeqTransformer,
                        source_ids_batch: list[list[int]], *, sos_id: int,
                        eos_id: int, pad_id: int, max_length: int = 400,
                        temperature: float = 1.0, top_k: int = 0,
                        top_p: float = 1.0, seed: int = 0,
                        on_token: OnTokenBatch | None = None) -> list[list[int]]:
    """Batched seeded sampling — exact-match equal to per-source sampling.

    Every row owns an independent ``default_rng(seed)`` stream (exactly what
    the sequential decoder would use for that source) and draws only while
    unfinished, so batch composition can never perturb a row's tokens; the
    logits themselves match the sequential run because the encoder's padding
    mask makes padded rows decode identically (the property the greedy/beam
    differential harnesses already pin down).
    """
    if not source_ids_batch:
        return []
    outputs: list[list[int]] = [[] for _ in source_ids_batch]
    loop = DecoderLoop(model, source_ids_batch, pad_id=pad_id)
    if not loop.num_rows:
        return outputs
    rngs = [np.random.default_rng(seed) for _ in range(loop.num_rows)]

    current = np.full((loop.num_rows, 1), sos_id, dtype=np.int64)
    for _ in range(max_length):
        logits = loop.step(current)
        # One vectorised scale + row-wise stable argsort for the whole batch;
        # elementwise scaling and per-row sorting are bitwise identical to
        # the sequential decoder's per-row versions, so tokens can't drift.
        z = _scaled_logits(logits, temperature)
        orders = np.argsort(-z, axis=-1, kind="stable")
        current = np.full((loop.num_rows, 1), eos_id, dtype=np.int64)
        for row in range(loop.num_rows):
            if loop.finished[row]:
                continue
            token = _sample_from_order(z[row], orders[row], top_k=top_k,
                                       top_p=top_p, rng=rngs[row])
            if token == eos_id:
                loop.finished[row] = True
            else:
                source = loop.live_indices[row]
                outputs[source].append(token)
                if on_token is not None:
                    on_token(source, token)
                current[row, 0] = token
        if loop.finished.all():
            break
    return outputs


@register_strategy
@dataclass(frozen=True)
class SampleStrategy(DecodingStrategy):
    """Temperature / top-k / top-p sampling with an explicit seed.

    ``temperature`` scales the logits (must be > 0); ``top_k=0`` disables
    top-k filtering; ``top_p=1.0`` disables nucleus filtering; ``seed`` pins
    the RNG stream for bitwise-reproducible generations.
    """

    name: ClassVar[str] = "sample"

    temperature: float = 1.0
    top_k: int = 0
    top_p: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        _coerce_float_fields(self, "temperature", "top_p")

    def validate(self) -> None:
        _require_number("temperature", self.temperature, minimum_exclusive=0.0)
        _require_int("top_k", self.top_k, minimum=0, maximum=MAX_TOP_K)
        _require_number("top_p", self.top_p, minimum_exclusive=0.0, maximum=1.0)
        _require_int("seed", self.seed, minimum=0, maximum=2**63 - 1)

    def _kwargs(self) -> dict:
        return dict(temperature=self.temperature, top_k=self.top_k,
                    top_p=self.top_p, seed=self.seed)

    def with_seed(self, seed: int) -> "SampleStrategy":
        """This strategy under a different seed (a fresh cache identity)."""
        return replace(self, seed=seed)

    def decode(self, model, source_ids, *, sos_id, eos_id, pad_id,
               max_length=400, on_token=None):
        return sample_decode(model, source_ids, sos_id=sos_id, eos_id=eos_id,
                             pad_id=pad_id, max_length=max_length,
                             on_token=on_token, **self._kwargs())

    def decode_batch(self, model, source_ids_batch, *, sos_id, eos_id, pad_id,
                     max_length=400, on_token=None):
        return sample_decode_batch(model, source_ids_batch, sos_id=sos_id,
                                   eos_id=eos_id, pad_id=pad_id,
                                   max_length=max_length, on_token=on_token,
                                   **self._kwargs())

    def row_state(self, *, sos_id, eos_id, max_length=400, on_token=None):
        return SampleRowState(temperature=self.temperature, top_k=self.top_k,
                              top_p=self.top_p, seed=self.seed,
                              sos_id=sos_id, eos_id=eos_id,
                              max_length=max_length, on_token=on_token)

    def nbest_limit(self) -> int:
        # Each extra candidate re-seeds the stream, so the supply is bounded
        # only by the caller's budget; the cap lives at the API layer.
        return 2**31

    def decode_nbest(self, model, source_ids, *, sos_id, eos_id, pad_id,
                     max_length=400, max_candidates=1):
        # Candidate k samples under seed + k: candidate 0 is bitwise the
        # decode() output, and every candidate is itself reproducible (the
        # derived seeds are a pure function of the request's seed).
        candidates: list[list[int]] = []
        for k in range(max(1, max_candidates)):
            variant = self.with_seed(self.seed + k)
            candidates.append(variant.decode(
                model, source_ids, sos_id=sos_id, eos_id=eos_id, pad_id=pad_id,
                max_length=max_length))
        return candidates


def iter_strategy_examples() -> Iterator[DecodingStrategy]:
    """One default-constructed instance per registered strategy (for tests)."""
    for cls in _REGISTRY.values():
        yield cls()
