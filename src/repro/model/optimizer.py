"""Adam optimiser with warmup + inverse-square-root decay and gradient clipping."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .autograd import Tensor


@dataclass
class AdamConfig:
    """Adam hyper-parameters."""

    learning_rate: float = 3e-4
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    warmup_steps: int = 0
    gradient_clip: float = 0.0


class Adam:
    """Adam over a fixed list of parameter tensors."""

    def __init__(self, parameters: list[Tensor], config: AdamConfig | None = None) -> None:
        self.parameters = parameters
        self.config = config or AdamConfig()
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]

    # ------------------------------------------------------------------ api

    def current_learning_rate(self) -> float:
        """Learning rate after warmup scaling (Noam-style ramp then flat)."""
        base = self.config.learning_rate
        if self.config.warmup_steps <= 0:
            return base
        step = max(1, self.step_count)
        if step < self.config.warmup_steps:
            return base * step / self.config.warmup_steps
        return base

    def clip_gradients(self) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float((p.grad ** 2).sum())
        norm = float(np.sqrt(total))
        limit = self.config.gradient_clip
        if limit and limit > 0 and norm > limit:
            scale = limit / (norm + 1e-12)
            for p in self.parameters:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self.step_count += 1
        lr = self.current_learning_rate()
        beta1, beta2 = self.config.beta1, self.config.beta2
        eps = self.config.epsilon
        bias1 = 1.0 - beta1 ** self.step_count
        bias2 = 1.0 - beta2 ** self.step_count

        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            self._m[i] = beta1 * self._m[i] + (1.0 - beta1) * grad
            self._v[i] = beta2 * self._v[i] + (1.0 - beta2) * (grad * grad)
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data -= lr * m_hat / (np.sqrt(v_hat) + eps)
            # In-place update: invalidate any dtype-cast inference caches.
            p.mark_updated()

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
