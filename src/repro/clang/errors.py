"""Error types raised by the C front-end."""

from __future__ import annotations


class CFrontEndError(Exception):
    """Base class for all C front-end errors."""


class LexError(CFrontEndError):
    """Raised when the lexer encounters an unrecognisable character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(CFrontEndError):
    """Raised when the parser cannot make sense of the token stream.

    The parser is error-tolerant when constructed with ``tolerant=True`` (the
    default used by the live-advising pipeline); in that mode most recoverable
    problems are recorded as :class:`ParseDiagnostic` entries instead of
    raising.  ``tolerant=False`` is used by the corpus inclusion filter, where
    a strict parse decides whether a file enters the dataset.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseDiagnostic:
    """A recoverable problem recorded during a tolerant parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"ParseDiagnostic({self.message!r}, line={self.line}, column={self.column})"


class CodeGenError(CFrontEndError):
    """Raised when the code generator meets an AST node it cannot emit."""


class InterpreterError(CFrontEndError):
    """Raised by the C interpreter (repro.mpisim) for unsupported constructs."""
