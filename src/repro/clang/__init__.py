"""C language front-end: lexer, parser, AST, and code generator.

This package is the reproduction's substitute for the paper's use of
pycparser (strict parsing for corpus filtering) and TreeSitter (error-tolerant
parsing for live advising and X-SBT construction).
"""

from . import ast_nodes
from .codegen import CodeGenerator, generate_code, standardize
from .errors import CFrontEndError, CodeGenError, LexError, ParseError
from .lexer import Lexer, code_token_texts, tokenize
from .parser import Parser, parse_source, parse_source_with_diagnostics, parses_cleanly
from .tokens import Token, TokenKind, TokenStream

__all__ = [
    "ast_nodes",
    "CodeGenerator",
    "generate_code",
    "standardize",
    "CFrontEndError",
    "CodeGenError",
    "LexError",
    "ParseError",
    "Lexer",
    "code_token_texts",
    "tokenize",
    "Parser",
    "parse_source",
    "parse_source_with_diagnostics",
    "parses_cleanly",
    "Token",
    "TokenKind",
    "TokenStream",
]
