"""Recursive-descent parser for the C subset used by MPI numerical codes.

The grammar covers what actually appears in MPI domain-decomposition programs:
preprocessor includes/defines (preserved verbatim), global declarations,
typedefs, struct definitions, function definitions, the full statement set
(compound/if/while/do/for/switch/return/break/continue/goto/label), and the C
expression grammar with correct precedence, calls, casts, subscripts, member
access, pointers and the ternary operator.

Two parsing modes exist:

* ``tolerant=True`` (default) — recoverable errors are recorded as
  diagnostics and parsing continues by skipping to a synchronisation point.
  This mirrors the paper's reliance on TreeSitter's error tolerance for live
  advising on incomplete code.
* ``tolerant=False`` — the first error raises :class:`ParseError`.  The corpus
  inclusion filter uses this mode (the paper uses a strict pycparser pass for
  the same purpose).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseDiagnostic, ParseError
from .lexer import Lexer
from .tokens import Token, TokenKind, TokenStream

#: Base type keywords that can start a declaration.
_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "_Bool", "bool", "struct", "union", "enum", "const",
    "volatile", "static", "extern", "register", "inline", "restrict",
}

#: Well-known typedef names that appear in MPI programs.  Treating these as
#: types keeps the declaration/expression disambiguation simple without a full
#: symbol table for typedefs.
_KNOWN_TYPEDEFS = {
    "size_t", "ssize_t", "ptrdiff_t", "FILE", "time_t", "clock_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "MPI_Comm", "MPI_Status", "MPI_Request", "MPI_Datatype", "MPI_Op",
    "MPI_Group", "MPI_Win", "MPI_File", "MPI_Info", "MPI_Aint", "MPI_Offset",
}

#: Assignment operators.
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Binary operator precedence (highest binds tightest).
_BINARY_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """Parse a token stream into a :class:`repro.clang.ast_nodes.TranslationUnit`."""

    def __init__(self, stream: TokenStream, *, tolerant: bool = True,
                 directives: list[Token] | None = None) -> None:
        self.stream = stream
        self.tolerant = tolerant
        self.directives = directives or []
        self.diagnostics: list[ParseDiagnostic] = []
        self.typedef_names: set[str] = set(_KNOWN_TYPEDEFS)

    # ------------------------------------------------------------------ api

    def parse(self) -> ast.TranslationUnit:
        """Parse the whole stream and return the translation unit."""
        unit = ast.TranslationUnit()
        # Preprocessor directives, preserved in source-line order.
        for d in self.directives:
            unit.items.append(ast.Include(text=d.text, line=d.line))

        while not self.stream.at_end():
            before = self.stream.index
            item = self._parse_external()
            if item is not None:
                unit.items.append(item)
            if self.stream.index == before:
                # no progress — skip one token to avoid an infinite loop
                bad = self.stream.next()
                self._error(f"unexpected token {bad.text!r}", bad)

        unit.items.sort(key=lambda n: n.line if n.line else 0)
        return unit

    # ------------------------------------------------------------ utilities

    def _error(self, message: str, token: Token) -> None:
        if self.tolerant:
            self.diagnostics.append(ParseDiagnostic(message, token.line, token.column))
        else:
            raise ParseError(message, token.line, token.column)

    def _expect_punct(self, text: str) -> Token:
        tok = self.stream.peek()
        if tok.is_punct(text):
            return self.stream.next()
        self._error(f"expected {text!r} but found {tok.text!r}", tok)
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self.stream.peek().is_punct(text):
            self.stream.next()
            return True
        return False

    def _is_type_start(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS:
            return True
        if tok.kind is TokenKind.IDENTIFIER and tok.text in self.typedef_names:
            return True
        return False

    def _skip_to(self, *puncts: str) -> None:
        """Skip tokens until one of ``puncts`` (consumed) or EOF; used for recovery."""
        depth = 0
        while not self.stream.at_end():
            tok = self.stream.peek()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                if depth == 0 and "}" in puncts:
                    self.stream.next()
                    return
                depth = max(0, depth - 1)
            elif depth == 0 and tok.kind is TokenKind.PUNCT and tok.text in puncts:
                self.stream.next()
                return
            self.stream.next()

    # ------------------------------------------------------------ top level

    def _parse_external(self) -> ast.Node | None:
        tok = self.stream.peek()

        if tok.is_keyword("typedef"):
            return self._parse_typedef()

        if tok.is_keyword("struct", "union", "enum") and self.stream.peek(2).is_punct("{"):
            # struct definition possibly followed by ';'
            return self._parse_struct_definition()

        if self._is_type_start(tok):
            return self._parse_declaration_or_function()

        if tok.kind is TokenKind.IDENTIFIER:
            # Unknown return type (e.g. a project typedef) — try function/decl anyway.
            return self._parse_declaration_or_function()

        self._error(f"unexpected token {tok.text!r} at top level", tok)
        self.stream.next()
        return None

    def _parse_typedef(self) -> ast.TypedefDecl:
        start = self.stream.next()  # 'typedef'
        type_parts: list[str] = []
        while not self.stream.peek().is_punct(";") and not self.stream.at_end():
            type_parts.append(self.stream.next().text)
        self._accept_punct(";")
        alias = type_parts[-1] if type_parts else "anonymous"
        base = " ".join(type_parts[:-1]) if len(type_parts) > 1 else "int"
        self.typedef_names.add(alias)
        return ast.TypedefDecl(type_name=base, alias=alias, line=start.line)

    def _parse_struct_definition(self) -> ast.StructDef:
        start = self.stream.next()  # struct/union/enum
        name: str | None = None
        if self.stream.peek().kind is TokenKind.IDENTIFIER:
            name = self.stream.next().text
        fields: list[ast.Declaration] = []
        if self._accept_punct("{"):
            while not self.stream.peek().is_punct("}") and not self.stream.at_end():
                before = self.stream.index
                decl = self._parse_declaration()
                if decl is not None:
                    fields.append(decl)
                if self.stream.index == before:
                    self.stream.next()
            self._expect_punct("}")
        self._accept_punct(";")
        if name:
            self.typedef_names.add(name)
        return ast.StructDef(name=name, fields=fields, line=start.line)

    def _parse_type_specifier(self) -> tuple[str, str | None]:
        """Consume type specifier keywords and return (type_name, storage)."""
        parts: list[str] = []
        storage: str | None = None
        while True:
            tok = self.stream.peek()
            if tok.is_keyword("static", "extern", "register", "inline"):
                storage = tok.text
                self.stream.next()
                continue
            if tok.is_keyword("const", "volatile", "restrict", "signed", "unsigned",
                              "short", "long", "void", "char", "int", "float",
                              "double", "_Bool", "bool"):
                parts.append(self.stream.next().text)
                continue
            if tok.is_keyword("struct", "union", "enum"):
                parts.append(self.stream.next().text)
                if self.stream.peek().kind is TokenKind.IDENTIFIER:
                    parts.append(self.stream.next().text)
                continue
            if tok.kind is TokenKind.IDENTIFIER and tok.text in self.typedef_names and not parts:
                parts.append(self.stream.next().text)
                continue
            break
        if not parts:
            parts.append("int")
        return " ".join(parts), storage

    def _parse_declaration_or_function(self) -> ast.Node | None:
        start = self.stream.peek()
        mark = self.stream.mark()
        type_name, storage = self._parse_type_specifier()

        pointer = 0
        while self._accept_punct("*"):
            pointer += 1

        name_tok = self.stream.peek()
        if name_tok.kind is not TokenKind.IDENTIFIER:
            self.stream.commit()
            self._error(f"expected identifier after type, found {name_tok.text!r}", name_tok)
            self._skip_to(";", "}")
            return None
        self.stream.next()

        # Function definition / prototype?
        if self.stream.peek().is_punct("("):
            self.stream.commit()
            return self._parse_function_rest(type_name, name_tok.text, pointer, start.line)

        # Otherwise it is a declaration — rewind and reparse uniformly.
        self.stream.reset()
        return self._parse_declaration()

    def _parse_function_rest(self, return_type: str, name: str, pointer: int,
                             line: int) -> ast.Node | None:
        self._expect_punct("(")
        params: list[ast.ParamDecl] = []
        if not self.stream.peek().is_punct(")"):
            while True:
                params.append(self._parse_param())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")

        if self._accept_punct(";"):
            # Prototype — represent as a declaration with no initialiser.
            decl = ast.Declaration(
                type_name=return_type,
                declarators=[ast.Declarator(name=name, pointer=pointer, line=line)],
                line=line,
            )
            return decl

        if not self.stream.peek().is_punct("{"):
            self._error("expected function body", self.stream.peek())
            self._skip_to(";", "}")
            return None

        body = self._parse_compound()
        return ast.FunctionDef(
            return_type=return_type, name=name, params=params, body=body,
            pointer=pointer, line=line,
        )

    def _parse_param(self) -> ast.ParamDecl:
        start = self.stream.peek()
        if start.is_punct("..."):
            self.stream.next()
            return ast.ParamDecl(type_name="...", name=None, line=start.line)
        type_name, _ = self._parse_type_specifier()
        pointer = 0
        while self._accept_punct("*"):
            pointer += 1
        name: str | None = None
        if self.stream.peek().kind is TokenKind.IDENTIFIER:
            name = self.stream.next().text
        array = False
        while self.stream.peek().is_punct("["):
            array = True
            self.stream.next()
            while not self.stream.peek().is_punct("]") and not self.stream.at_end():
                self.stream.next()
            self._accept_punct("]")
        return ast.ParamDecl(type_name=type_name, name=name, pointer=pointer,
                             array=array, line=start.line)

    # ---------------------------------------------------------- declarations

    def _parse_declaration(self) -> ast.Declaration | None:
        start = self.stream.peek()
        type_name, storage = self._parse_type_specifier()
        declarators: list[ast.Declarator] = []
        while True:
            decl = self._parse_declarator()
            if decl is None:
                break
            declarators.append(decl)
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if not declarators:
            return None
        return ast.Declaration(type_name=type_name, declarators=declarators,
                               storage=storage, line=start.line)

    def _parse_declarator(self) -> ast.Declarator | None:
        pointer = 0
        while self._accept_punct("*"):
            pointer += 1
        tok = self.stream.peek()
        if tok.kind is not TokenKind.IDENTIFIER:
            self._error(f"expected declarator name, found {tok.text!r}", tok)
            return None
        name = self.stream.next().text
        line = tok.line

        array_dims: list[ast.Node | None] = []
        while self._accept_punct("["):
            if self.stream.peek().is_punct("]"):
                array_dims.append(None)
            else:
                array_dims.append(self._parse_expression())
            self._expect_punct("]")

        init: ast.Node | None = None
        if self._accept_punct("="):
            if self.stream.peek().is_punct("{"):
                init = self._parse_init_list()
            else:
                init = self._parse_assignment_expr()

        return ast.Declarator(name=name, pointer=pointer, array_dims=array_dims,
                              init=init, line=line)

    def _parse_init_list(self) -> ast.InitList:
        start = self._expect_punct("{")
        values: list[ast.Node] = []
        while not self.stream.peek().is_punct("}") and not self.stream.at_end():
            if self.stream.peek().is_punct("{"):
                values.append(self._parse_init_list())
            else:
                values.append(self._parse_assignment_expr())
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return ast.InitList(values=values, line=start.line)

    # ------------------------------------------------------------ statements

    def _parse_compound(self) -> ast.Compound:
        start = self._expect_punct("{")
        block = ast.Compound(line=start.line)
        while not self.stream.peek().is_punct("}") and not self.stream.at_end():
            before = self.stream.index
            stmt = self._parse_statement()
            if stmt is not None:
                block.statements.append(stmt)
            if self.stream.index == before:
                self.stream.next()
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> ast.Node | None:
        tok = self.stream.peek()

        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_punct(";"):
            self.stream.next()
            return ast.ExpressionStatement(expr=None, line=tok.line)
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            return self._parse_while()
        if tok.is_keyword("do"):
            return self._parse_do_while()
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("switch"):
            return self._parse_switch()
        if tok.is_keyword("return"):
            self.stream.next()
            value = None
            if not self.stream.peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value=value, line=tok.line)
        if tok.is_keyword("break"):
            self.stream.next()
            self._expect_punct(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self.stream.next()
            self._expect_punct(";")
            return ast.Continue(line=tok.line)
        if tok.is_keyword("goto"):
            self.stream.next()
            label = self.stream.next().text
            self._expect_punct(";")
            return ast.Goto(label=label, line=tok.line)
        if tok.is_keyword("case", "default"):
            return self._parse_case()
        if tok.kind is TokenKind.IDENTIFIER and self.stream.peek(1).is_punct(":"):
            self.stream.next()
            self.stream.next()
            return ast.Label(name=tok.text, line=tok.line)
        if tok.is_keyword("typedef"):
            return self._parse_typedef()
        if self._is_type_start(tok) and not tok.is_keyword("struct") or (
            tok.is_keyword("struct") and self.stream.peek(2).kind is TokenKind.IDENTIFIER
        ):
            if self._looks_like_declaration():
                return self._parse_declaration()

        # Fallback: an expression statement.
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExpressionStatement(expr=expr, line=tok.line)

    def _looks_like_declaration(self) -> bool:
        """Speculatively decide whether the upcoming tokens form a declaration."""
        tok = self.stream.peek()
        if not self._is_type_start(tok):
            return False
        # A type keyword always starts a declaration in statement position.
        if tok.kind is TokenKind.KEYWORD:
            return True
        # identifier identifier  -> typedef-name declaration
        nxt = self.stream.peek(1)
        return nxt.kind is TokenKind.IDENTIFIER or nxt.is_punct("*")

    def _parse_if(self) -> ast.If:
        start = self.stream.next()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement() or ast.Compound(line=start.line)
        otherwise: ast.Node | None = None
        if self.stream.peek().is_keyword("else"):
            self.stream.next()
            otherwise = self._parse_statement()
        return ast.If(cond=ast.Parenthesized(cond, line=start.line), then=then,
                      otherwise=otherwise, line=start.line)

    def _parse_while(self) -> ast.While:
        start = self.stream.next()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement() or ast.Compound(line=start.line)
        return ast.While(cond=ast.Parenthesized(cond, line=start.line), body=body,
                         line=start.line)

    def _parse_do_while(self) -> ast.DoWhile:
        start = self.stream.next()
        body = self._parse_statement() or ast.Compound(line=start.line)
        if self.stream.peek().is_keyword("while"):
            self.stream.next()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body=body, cond=ast.Parenthesized(cond, line=start.line),
                           line=start.line)

    def _parse_for(self) -> ast.For:
        start = self.stream.next()
        self._expect_punct("(")
        init: ast.Node | None = None
        if not self.stream.peek().is_punct(";"):
            if self._looks_like_declaration():
                init = self._parse_declaration()
            else:
                init = ast.ExpressionStatement(self._parse_expression(), line=start.line)
                self._expect_punct(";")
        else:
            self._expect_punct(";")
        cond: ast.Node | None = None
        if not self.stream.peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        update: ast.Node | None = None
        if not self.stream.peek().is_punct(")"):
            update = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement() or ast.Compound(line=start.line)
        return ast.For(init=init, cond=cond, update=update, body=body, line=start.line)

    def _parse_switch(self) -> ast.Switch:
        start = self.stream.next()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_compound()
        return ast.Switch(cond=ast.Parenthesized(cond, line=start.line), body=body,
                          line=start.line)

    def _parse_case(self) -> ast.CaseLabel:
        tok = self.stream.next()
        value: ast.Node | None = None
        if tok.text == "case":
            value = self._parse_expression()
        self._expect_punct(":")
        return ast.CaseLabel(value=value, line=tok.line)

    # ----------------------------------------------------------- expressions

    def _parse_expression(self) -> ast.Node:
        expr = self._parse_assignment_expr()
        if self.stream.peek().is_punct(","):
            parts = [expr]
            while self._accept_punct(","):
                parts.append(self._parse_assignment_expr())
            return ast.CommaExpression(parts=parts, line=expr.line)
        return expr

    def _parse_assignment_expr(self) -> ast.Node:
        left = self._parse_conditional_expr()
        tok = self.stream.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self.stream.next()
            right = self._parse_assignment_expr()
            return ast.Assignment(op=tok.text, target=left, value=right, line=left.line)
        return left

    def _parse_conditional_expr(self) -> ast.Node:
        cond = self._parse_binary_expr(0)
        if self._accept_punct("?"):
            then = self._parse_assignment_expr()
            self._expect_punct(":")
            otherwise = self._parse_conditional_expr()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise, line=cond.line)
        return cond

    def _parse_binary_expr(self, level: int) -> ast.Node:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary_expr()
        left = self._parse_binary_expr(level + 1)
        ops = _BINARY_PRECEDENCE[level]
        while True:
            tok = self.stream.peek()
            if tok.kind is TokenKind.PUNCT and tok.text in ops:
                self.stream.next()
                right = self._parse_binary_expr(level + 1)
                left = ast.BinaryOp(op=tok.text, left=left, right=right, line=left.line)
            else:
                return left

    def _parse_unary_expr(self) -> ast.Node:
        tok = self.stream.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("+", "-", "!", "~", "&", "*", "++", "--"):
            self.stream.next()
            operand = self._parse_unary_expr()
            return ast.UnaryOp(op=tok.text, operand=operand, line=tok.line)
        if tok.is_keyword("sizeof"):
            self.stream.next()
            if self.stream.peek().is_punct("("):
                self.stream.next()
                if self._is_type_start(self.stream.peek()):
                    type_name, _ = self._parse_type_specifier()
                    pointer = 0
                    while self._accept_punct("*"):
                        pointer += 1
                    self._expect_punct(")")
                    return ast.UnaryOp(op="sizeof",
                                       operand=ast.Identifier(type_name + "*" * pointer,
                                                              line=tok.line),
                                       line=tok.line)
                inner = self._parse_expression()
                self._expect_punct(")")
                return ast.UnaryOp(op="sizeof", operand=ast.Parenthesized(inner, line=tok.line),
                                   line=tok.line)
            operand = self._parse_unary_expr()
            return ast.UnaryOp(op="sizeof", operand=operand, line=tok.line)
        # Cast expression:  ( type ) expr
        if tok.is_punct("(") and self._is_type_start(self.stream.peek(1)):
            mark_idx = self.stream.mark()
            self.stream.next()
            type_name, _ = self._parse_type_specifier()
            pointer = 0
            while self._accept_punct("*"):
                pointer += 1
            if self.stream.peek().is_punct(")"):
                self.stream.next()
                nxt = self.stream.peek()
                # Disambiguate from a parenthesised expression: a cast must be
                # followed by the start of another unary expression.
                if (nxt.kind in (TokenKind.IDENTIFIER, TokenKind.NUMBER, TokenKind.STRING,
                                 TokenKind.CHAR)
                        or nxt.is_punct("(", "*", "&", "-", "+", "!", "~", "++", "--")):
                    self.stream.commit()
                    operand = self._parse_unary_expr()
                    return ast.Cast(type_name=type_name + "*" * pointer, operand=operand,
                                    line=tok.line)
            self.stream.reset()
        return self._parse_postfix_expr()

    def _parse_postfix_expr(self) -> ast.Node:
        expr = self._parse_primary_expr()
        while True:
            tok = self.stream.peek()
            if tok.is_punct("("):
                self.stream.next()
                args: list[ast.Node] = []
                if not self.stream.peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(func=expr, args=args, line=expr.line or tok.line)
            elif tok.is_punct("["):
                self.stream.next()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.ArraySubscript(array=expr, index=index, line=expr.line or tok.line)
            elif tok.is_punct("."):
                self.stream.next()
                member = self.stream.next().text
                expr = ast.MemberAccess(obj=expr, member=member, arrow=False,
                                        line=expr.line or tok.line)
            elif tok.is_punct("->"):
                self.stream.next()
                member = self.stream.next().text
                expr = ast.MemberAccess(obj=expr, member=member, arrow=True,
                                        line=expr.line or tok.line)
            elif tok.is_punct("++", "--"):
                self.stream.next()
                expr = ast.PostfixOp(op=tok.text, operand=expr, line=expr.line or tok.line)
            else:
                return expr

    def _parse_primary_expr(self) -> ast.Node:
        tok = self.stream.peek()
        if tok.kind is TokenKind.IDENTIFIER or (tok.kind is TokenKind.KEYWORD
                                                and tok.text in ("bool", "_Bool")):
            self.stream.next()
            return ast.Identifier(name=tok.text, line=tok.line)
        if tok.kind is TokenKind.NUMBER:
            self.stream.next()
            return ast.Literal(value=tok.text, category="number", line=tok.line)
        if tok.kind is TokenKind.STRING:
            self.stream.next()
            # Adjacent string literal concatenation.
            text = tok.text
            while self.stream.peek().kind is TokenKind.STRING:
                text += " " + self.stream.next().text
            return ast.Literal(value=text, category="string", line=tok.line)
        if tok.kind is TokenKind.CHAR:
            self.stream.next()
            return ast.Literal(value=tok.text, category="char", line=tok.line)
        if tok.is_punct("("):
            self.stream.next()
            inner = self._parse_expression()
            self._expect_punct(")")
            return ast.Parenthesized(inner=inner, line=tok.line)
        if tok.is_punct("{"):
            return self._parse_init_list()
        self._error(f"unexpected token {tok.text!r} in expression", tok)
        self.stream.next()
        return ast.Identifier(name=tok.text or "<error>", line=tok.line)


# ------------------------------------------------------------------ helpers


def parse_source(source: str, *, tolerant: bool = True) -> ast.TranslationUnit:
    """Lex and parse ``source`` into a translation unit."""
    lexer = Lexer(source, keep_comments=True)
    all_tokens = lexer.tokenize()
    directives = [t for t in all_tokens if t.kind is TokenKind.DIRECTIVE]
    relevant = [
        t for t in all_tokens
        if t.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.DIRECTIVE,
                          TokenKind.ERROR)
    ]
    parser = Parser(TokenStream(relevant), tolerant=tolerant, directives=directives)
    return parser.parse()


def parse_source_with_diagnostics(
    source: str,
) -> tuple[ast.TranslationUnit, list[ParseDiagnostic]]:
    """Parse tolerantly and also return the diagnostics produced."""
    lexer = Lexer(source, keep_comments=True)
    all_tokens = lexer.tokenize()
    directives = [t for t in all_tokens if t.kind is TokenKind.DIRECTIVE]
    relevant = [
        t for t in all_tokens
        if t.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.DIRECTIVE,
                          TokenKind.ERROR)
    ]
    parser = Parser(TokenStream(relevant), tolerant=True, directives=directives)
    unit = parser.parse()
    return unit, parser.diagnostics


def parses_cleanly(source: str) -> bool:
    """Return True if ``source`` parses with no errors in strict mode.

    This is the corpus inclusion criterion (the paper uses pycparser for the
    same yes/no decision).
    """
    try:
        unit = parse_source(source, tolerant=False)
    except Exception:
        return False
    return unit.has_main() or bool(unit.functions())
