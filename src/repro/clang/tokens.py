"""Token definitions for the C front-end.

The lexer produces a flat stream of :class:`Token` objects.  Token kinds are
deliberately coarse (identifier, keyword, number, string, char, punctuator,
comment, directive) because the downstream consumers — the recursive-descent
parser, the code standardiser, and the sequence tokenizer that feeds the
Transformer — only need that level of granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    COMMENT = "comment"
    DIRECTIVE = "directive"
    NEWLINE = "newline"
    EOF = "eof"
    ERROR = "error"


#: The C keywords recognised by the lexer (C99 plus a few common extensions).
C_KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default", "do",
        "double", "else", "enum", "extern", "float", "for", "goto", "if",
        "inline", "int", "long", "register", "restrict", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while", "_Bool", "_Complex",
        "_Imaginary", "bool",
    }
)

#: Multi-character punctuators, longest first so the lexer can do maximal munch.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "{", "}", "[", "]", "(", ")", ";", ",", ".", "?", ":",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
)


@dataclass
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The coarse lexical category.
    text:
        The exact source text of the token (including quotes for strings).
    line:
        1-based source line on which the token starts.
    column:
        1-based source column on which the token starts.
    """

    kind: TokenKind
    text: str
    line: int = 0
    column: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is a keyword with one of ``names``."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *texts: str) -> bool:
        """Return True if this token is a punctuator with one of ``texts``."""
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_identifier(self, name: str | None = None) -> bool:
        """Return True if this token is an identifier (optionally named)."""
        if self.kind is not TokenKind.IDENTIFIER:
            return False
        return name is None or self.text == name

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}({self.text!r}@{self.line}:{self.column})"


@dataclass
class TokenStream:
    """A cursor over a list of tokens with lookahead and backtracking.

    The parser uses :meth:`mark`/:meth:`reset` pairs for speculative parses
    (e.g. disambiguating declarations from expressions).
    """

    tokens: list[Token]
    index: int = 0
    _marks: list[int] = field(default_factory=list)

    def peek(self, offset: int = 0) -> Token:
        """Return the token ``offset`` positions ahead without consuming it."""
        idx = self.index + offset
        if idx >= len(self.tokens):
            return self.tokens[-1]
        return self.tokens[idx]

    def next(self) -> Token:
        """Consume and return the current token."""
        tok = self.peek()
        if self.index < len(self.tokens) - 1:
            self.index += 1
        return tok

    def at_end(self) -> bool:
        """Return True when the cursor sits on the EOF token."""
        return self.peek().kind is TokenKind.EOF

    def mark(self) -> int:
        """Record the current position for later :meth:`reset`."""
        self._marks.append(self.index)
        return self.index

    def reset(self) -> None:
        """Rewind to the most recent :meth:`mark`."""
        self.index = self._marks.pop()

    def commit(self) -> None:
        """Discard the most recent :meth:`mark` without rewinding."""
        self._marks.pop()

    def __len__(self) -> int:
        return len(self.tokens)
