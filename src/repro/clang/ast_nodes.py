"""AST node classes for the C subset handled by the front-end.

The node vocabulary intentionally mirrors TreeSitter's C grammar names
(``compound_statement``, ``call_expression``, ``parameter_declaration`` …)
because the X-SBT linearisation in the paper is defined over those names.
Every node exposes:

* ``kind``     — the TreeSitter-style node-type string,
* ``children()`` — ordered child nodes (for traversals),
* ``line``     — the 1-based source line the node starts on (0 = unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class Node:
    """Base class for all AST nodes."""

    kind: str = "node"
    line: int = 0

    def children(self) -> list["Node"]:
        """Return the ordered list of child nodes (default: none)."""
        return []

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def find_all(self, kind: str) -> list["Node"]:
        """Return every descendant (including self) whose kind equals ``kind``."""
        return [n for n in self.walk() if n.kind == kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} kind={self.kind!r} line={self.line}>"


# --------------------------------------------------------------------------- expressions


@dataclass(repr=False)
class Identifier(Node):
    name: str
    line: int = 0
    kind: str = field(default="identifier", init=False)


@dataclass(repr=False)
class Literal(Node):
    """Number, string, or character literal.  ``category`` is one of
    ``number``, ``string``, ``char``."""

    value: str
    category: str = "number"
    line: int = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        if self.category == "number":
            return "number_literal"
        if self.category == "string":
            return "string_literal"
        return "char_literal"


@dataclass(repr=False)
class BinaryOp(Node):
    op: str
    left: Node
    right: Node
    line: int = 0
    kind: str = field(default="binary_expression", init=False)

    def children(self) -> list[Node]:
        return [self.left, self.right]


@dataclass(repr=False)
class UnaryOp(Node):
    """Prefix unary operator (including ``&``, ``*``, ``!``, ``-``, ``~``,
    ``++``, ``--``, ``sizeof``)."""

    op: str
    operand: Node
    line: int = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        if self.op == "&":
            return "pointer_expression"
        if self.op == "*":
            return "pointer_expression"
        if self.op in ("++", "--"):
            return "update_expression"
        if self.op == "sizeof":
            return "sizeof_expression"
        return "unary_expression"

    def children(self) -> list[Node]:
        return [self.operand]


@dataclass(repr=False)
class PostfixOp(Node):
    """Postfix ``++`` / ``--``."""

    op: str
    operand: Node
    line: int = 0
    kind: str = field(default="update_expression", init=False)

    def children(self) -> list[Node]:
        return [self.operand]


@dataclass(repr=False)
class Assignment(Node):
    op: str
    target: Node
    value: Node
    line: int = 0
    kind: str = field(default="assignment_expression", init=False)

    def children(self) -> list[Node]:
        return [self.target, self.value]


@dataclass(repr=False)
class Call(Node):
    func: Node
    args: list[Node] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="call_expression", init=False)

    def children(self) -> list[Node]:
        return [self.func, *self.args]

    @property
    def callee_name(self) -> str | None:
        """Return the simple name of the callee if it is an identifier."""
        if isinstance(self.func, Identifier):
            return self.func.name
        return None


@dataclass(repr=False)
class ArraySubscript(Node):
    array: Node
    index: Node
    line: int = 0
    kind: str = field(default="subscript_expression", init=False)

    def children(self) -> list[Node]:
        return [self.array, self.index]


@dataclass(repr=False)
class MemberAccess(Node):
    """``obj.field`` or ``ptr->field``."""

    obj: Node
    member: str
    arrow: bool = False
    line: int = 0
    kind: str = field(default="field_expression", init=False)

    def children(self) -> list[Node]:
        return [self.obj]


@dataclass(repr=False)
class Cast(Node):
    type_name: str
    operand: Node
    line: int = 0
    kind: str = field(default="cast_expression", init=False)

    def children(self) -> list[Node]:
        return [self.operand]


@dataclass(repr=False)
class Conditional(Node):
    """Ternary ``cond ? a : b``."""

    cond: Node
    then: Node
    otherwise: Node
    line: int = 0
    kind: str = field(default="conditional_expression", init=False)

    def children(self) -> list[Node]:
        return [self.cond, self.then, self.otherwise]


@dataclass(repr=False)
class Parenthesized(Node):
    inner: Node
    line: int = 0
    kind: str = field(default="parenthesized_expression", init=False)

    def children(self) -> list[Node]:
        return [self.inner]


@dataclass(repr=False)
class InitList(Node):
    """Brace initialiser ``{1, 2, 3}``."""

    values: list[Node] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="initializer_list", init=False)

    def children(self) -> list[Node]:
        return list(self.values)


@dataclass(repr=False)
class CommaExpression(Node):
    parts: list[Node] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="comma_expression", init=False)

    def children(self) -> list[Node]:
        return list(self.parts)


# --------------------------------------------------------------------------- declarations


@dataclass(repr=False)
class Declarator(Node):
    """A single declarator: name, pointer depth, array dims, initialiser."""

    name: str
    pointer: int = 0
    array_dims: list[Node | None] = field(default_factory=list)
    init: Node | None = None
    line: int = 0
    kind: str = field(default="init_declarator", init=False)

    def children(self) -> list[Node]:
        out: list[Node] = [d for d in self.array_dims if d is not None]
        if self.init is not None:
            out.append(self.init)
        return out


@dataclass(repr=False)
class Declaration(Node):
    """A declaration statement: ``int i = 0, *p;``"""

    type_name: str
    declarators: list[Declarator] = field(default_factory=list)
    storage: str | None = None  # static / extern / typedef ...
    line: int = 0
    kind: str = field(default="declaration", init=False)

    def children(self) -> list[Node]:
        return list(self.declarators)


@dataclass(repr=False)
class ParamDecl(Node):
    type_name: str
    name: str | None = None
    pointer: int = 0
    array: bool = False
    line: int = 0
    kind: str = field(default="parameter_declaration", init=False)


@dataclass(repr=False)
class StructDef(Node):
    name: str | None
    fields: list[Declaration] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="struct_specifier", init=False)

    def children(self) -> list[Node]:
        return list(self.fields)


@dataclass(repr=False)
class TypedefDecl(Node):
    type_name: str
    alias: str
    line: int = 0
    kind: str = field(default="type_definition", init=False)


# --------------------------------------------------------------------------- statements


@dataclass(repr=False)
class ExpressionStatement(Node):
    expr: Node | None
    line: int = 0
    kind: str = field(default="expression_statement", init=False)

    def children(self) -> list[Node]:
        return [self.expr] if self.expr is not None else []


@dataclass(repr=False)
class Compound(Node):
    statements: list[Node] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="compound_statement", init=False)

    def children(self) -> list[Node]:
        return list(self.statements)


@dataclass(repr=False)
class If(Node):
    cond: Node
    then: Node
    otherwise: Node | None = None
    line: int = 0
    kind: str = field(default="if_statement", init=False)

    def children(self) -> list[Node]:
        out = [self.cond, self.then]
        if self.otherwise is not None:
            out.append(self.otherwise)
        return out


@dataclass(repr=False)
class While(Node):
    cond: Node
    body: Node
    line: int = 0
    kind: str = field(default="while_statement", init=False)

    def children(self) -> list[Node]:
        return [self.cond, self.body]


@dataclass(repr=False)
class DoWhile(Node):
    body: Node
    cond: Node
    line: int = 0
    kind: str = field(default="do_statement", init=False)

    def children(self) -> list[Node]:
        return [self.body, self.cond]


@dataclass(repr=False)
class For(Node):
    init: Node | None
    cond: Node | None
    update: Node | None
    body: Node
    line: int = 0
    kind: str = field(default="for_statement", init=False)

    def children(self) -> list[Node]:
        out: list[Node] = []
        for part in (self.init, self.cond, self.update):
            if part is not None:
                out.append(part)
        out.append(self.body)
        return out


@dataclass(repr=False)
class Return(Node):
    value: Node | None = None
    line: int = 0
    kind: str = field(default="return_statement", init=False)

    def children(self) -> list[Node]:
        return [self.value] if self.value is not None else []


@dataclass(repr=False)
class Break(Node):
    line: int = 0
    kind: str = field(default="break_statement", init=False)


@dataclass(repr=False)
class Continue(Node):
    line: int = 0
    kind: str = field(default="continue_statement", init=False)


@dataclass(repr=False)
class Switch(Node):
    cond: Node
    body: "Compound"
    line: int = 0
    kind: str = field(default="switch_statement", init=False)

    def children(self) -> list[Node]:
        return [self.cond, self.body]


@dataclass(repr=False)
class CaseLabel(Node):
    """``case expr:`` or ``default:`` (value None)."""

    value: Node | None
    line: int = 0
    kind: str = field(default="case_statement", init=False)

    def children(self) -> list[Node]:
        return [self.value] if self.value is not None else []


@dataclass(repr=False)
class Goto(Node):
    label: str
    line: int = 0
    kind: str = field(default="goto_statement", init=False)


@dataclass(repr=False)
class Label(Node):
    name: str
    line: int = 0
    kind: str = field(default="labeled_statement", init=False)


# --------------------------------------------------------------------------- top level


@dataclass(repr=False)
class FunctionDef(Node):
    return_type: str
    name: str
    params: list[ParamDecl] = field(default_factory=list)
    body: Compound = field(default_factory=Compound)
    pointer: int = 0
    line: int = 0
    kind: str = field(default="function_definition", init=False)

    def children(self) -> list[Node]:
        return [*self.params, self.body]


@dataclass(repr=False)
class Include(Node):
    """A ``#include`` or other preprocessor directive preserved verbatim."""

    text: str
    line: int = 0
    kind: str = field(default="preproc_include", init=False)


@dataclass(repr=False)
class TranslationUnit(Node):
    items: list[Node] = field(default_factory=list)
    line: int = 0
    kind: str = field(default="translation_unit", init=False)

    def children(self) -> list[Node]:
        return list(self.items)

    def functions(self) -> list[FunctionDef]:
        """Return all function definitions in the unit."""
        return [n for n in self.items if isinstance(n, FunctionDef)]

    def function(self, name: str) -> FunctionDef | None:
        """Return the function named ``name`` or None."""
        for fn in self.functions():
            if fn.name == name:
                return fn
        return None

    def has_main(self) -> bool:
        """True if the unit defines a ``main`` function (the paper's
        definition of a *program*)."""
        return self.function("main") is not None


#: Node kinds considered "expression level or below" — X-SBT keeps only nodes
#: at expression level and above, so these are the cut-off set's complement.
EXPRESSION_KINDS = frozenset(
    {
        "identifier",
        "number_literal",
        "string_literal",
        "char_literal",
        "field_expression",
        "subscript_expression",
        "initializer_list",
    }
)
