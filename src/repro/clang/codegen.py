"""Regenerate C source text from the AST.

This implements the paper's *code standardisation* step: every corpus program
is regenerated from its AST so that indentation, spacing and line breaks are
uniform across the dataset.  The generator is also what turns the model's
predicted AST edits back into source the user sees.

The emitted style is deterministic: 4-space indentation, one statement per
line, a single blank line between top-level items, and ``{`` on the same line
as its statement header.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import CodeGenError

INDENT = "    "


class CodeGenerator:
    """Convert AST nodes back into standardised C source text."""

    def __init__(self, indent: str = INDENT) -> None:
        self.indent = indent

    # ------------------------------------------------------------------ api

    def generate(self, node: ast.Node) -> str:
        """Generate source text for ``node`` (usually a TranslationUnit)."""
        if isinstance(node, ast.TranslationUnit):
            return self._gen_unit(node)
        if isinstance(node, ast.FunctionDef):
            return "\n".join(self._gen_function(node))
        lines = self._gen_statement(node, 0)
        return "\n".join(lines)

    def expression(self, node: ast.Node) -> str:
        """Generate source text for an expression node."""
        return self._gen_expr(node)

    # ------------------------------------------------------------ top level

    def _gen_unit(self, unit: ast.TranslationUnit) -> str:
        chunks: list[str] = []
        for item in unit.items:
            if isinstance(item, ast.Include):
                chunks.append(item.text)
            elif isinstance(item, ast.FunctionDef):
                chunks.append("\n".join(self._gen_function(item)))
            elif isinstance(item, ast.Declaration):
                chunks.append(self._gen_declaration(item) + ";")
            elif isinstance(item, ast.TypedefDecl):
                chunks.append(f"typedef {item.type_name} {item.alias};")
            elif isinstance(item, ast.StructDef):
                chunks.append(self._gen_struct(item))
            else:
                chunks.append("\n".join(self._gen_statement(item, 0)))
        text = "\n".join(chunks)
        if not text.endswith("\n"):
            text += "\n"
        return text

    def _gen_function(self, fn: ast.FunctionDef) -> list[str]:
        params = ", ".join(self._gen_param(p) for p in fn.params) or "void"
        stars = "*" * fn.pointer
        header = f"{fn.return_type} {stars}{fn.name}({params})"
        lines = [header + " {"]
        lines.extend(self._gen_block_body(fn.body, 1))
        lines.append("}")
        return lines

    def _gen_param(self, p: ast.ParamDecl) -> str:
        if p.type_name == "...":
            return "..."
        stars = "*" * p.pointer
        suffix = "[]" if p.array else ""
        if p.name:
            return f"{p.type_name} {stars}{p.name}{suffix}"
        return f"{p.type_name}{stars}"

    def _gen_struct(self, s: ast.StructDef) -> str:
        name = f" {s.name}" if s.name else ""
        lines = [f"struct{name} {{"]
        for f in s.fields:
            lines.append(self.indent + self._gen_declaration(f) + ";")
        lines.append("};")
        return "\n".join(lines)

    # ------------------------------------------------------------ statements

    def _gen_block_body(self, block: ast.Compound, depth: int) -> list[str]:
        lines: list[str] = []
        for stmt in block.statements:
            lines.extend(self._gen_statement(stmt, depth))
        return lines

    def _gen_statement(self, node: ast.Node, depth: int) -> list[str]:
        pad = self.indent * depth

        if isinstance(node, ast.Compound):
            lines = [pad + "{"]
            lines.extend(self._gen_block_body(node, depth + 1))
            lines.append(pad + "}")
            return lines

        if isinstance(node, ast.Declaration):
            return [pad + self._gen_declaration(node) + ";"]

        if isinstance(node, ast.ExpressionStatement):
            if node.expr is None:
                return [pad + ";"]
            return [pad + self._gen_expr(node.expr) + ";"]

        if isinstance(node, ast.If):
            cond = self._gen_expr(self._unwrap_paren(node.cond))
            lines = [pad + f"if ({cond}) {{"]
            lines.extend(self._gen_nested_body(node.then, depth + 1))
            if node.otherwise is not None:
                lines.append(pad + "} else {")
                lines.extend(self._gen_nested_body(node.otherwise, depth + 1))
            lines.append(pad + "}")
            return lines

        if isinstance(node, ast.While):
            cond = self._gen_expr(self._unwrap_paren(node.cond))
            lines = [pad + f"while ({cond}) {{"]
            lines.extend(self._gen_nested_body(node.body, depth + 1))
            lines.append(pad + "}")
            return lines

        if isinstance(node, ast.DoWhile):
            cond = self._gen_expr(self._unwrap_paren(node.cond))
            lines = [pad + "do {"]
            lines.extend(self._gen_nested_body(node.body, depth + 1))
            lines.append(pad + f"}} while ({cond});")
            return lines

        if isinstance(node, ast.For):
            init = ""
            if isinstance(node.init, ast.Declaration):
                init = self._gen_declaration(node.init)
            elif isinstance(node.init, ast.ExpressionStatement) and node.init.expr is not None:
                init = self._gen_expr(node.init.expr)
            elif node.init is not None:
                init = self._gen_expr(node.init)
            cond = self._gen_expr(node.cond) if node.cond is not None else ""
            update = self._gen_expr(node.update) if node.update is not None else ""
            lines = [pad + f"for ({init}; {cond}; {update}) {{"]
            lines.extend(self._gen_nested_body(node.body, depth + 1))
            lines.append(pad + "}")
            return lines

        if isinstance(node, ast.Switch):
            cond = self._gen_expr(self._unwrap_paren(node.cond))
            lines = [pad + f"switch ({cond}) {{"]
            lines.extend(self._gen_block_body(node.body, depth + 1))
            lines.append(pad + "}")
            return lines

        if isinstance(node, ast.CaseLabel):
            if node.value is None:
                return [pad + "default:"]
            return [pad + f"case {self._gen_expr(node.value)}:"]

        if isinstance(node, ast.Return):
            if node.value is None:
                return [pad + "return;"]
            return [pad + f"return {self._gen_expr(node.value)};"]

        if isinstance(node, ast.Break):
            return [pad + "break;"]
        if isinstance(node, ast.Continue):
            return [pad + "continue;"]
        if isinstance(node, ast.Goto):
            return [pad + f"goto {node.label};"]
        if isinstance(node, ast.Label):
            return [pad + f"{node.name}:"]
        if isinstance(node, ast.TypedefDecl):
            return [pad + f"typedef {node.type_name} {node.alias};"]
        if isinstance(node, ast.Include):
            return [node.text]
        if isinstance(node, ast.StructDef):
            return [pad + line for line in self._gen_struct(node).splitlines()]

        raise CodeGenError(f"cannot generate statement for node kind {node.kind!r}")

    def _gen_nested_body(self, node: ast.Node, depth: int) -> list[str]:
        """Emit the body of a control statement, flattening single compounds."""
        if isinstance(node, ast.Compound):
            return self._gen_block_body(node, depth)
        return self._gen_statement(node, depth)

    @staticmethod
    def _unwrap_paren(node: ast.Node) -> ast.Node:
        if isinstance(node, ast.Parenthesized):
            return node.inner
        return node

    # ---------------------------------------------------------- declarations

    def _gen_declaration(self, decl: ast.Declaration) -> str:
        parts = []
        if decl.storage:
            parts.append(decl.storage)
        parts.append(decl.type_name)
        decls = []
        for d in decl.declarators:
            decls.append(self._gen_declarator(d))
        return " ".join(parts) + " " + ", ".join(decls)

    def _gen_declarator(self, d: ast.Declarator) -> str:
        text = "*" * d.pointer + d.name
        for dim in d.array_dims:
            if dim is None:
                text += "[]"
            else:
                text += f"[{self._gen_expr(dim)}]"
        if d.init is not None:
            text += f" = {self._gen_expr(d.init)}"
        return text

    # ----------------------------------------------------------- expressions

    def _gen_expr(self, node: ast.Node) -> str:
        if isinstance(node, ast.Identifier):
            return node.name
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.BinaryOp):
            return f"{self._gen_expr(node.left)} {node.op} {self._gen_expr(node.right)}"
        if isinstance(node, ast.UnaryOp):
            if node.op == "sizeof":
                return f"sizeof({self._gen_expr(self._unwrap_paren(node.operand))})"
            return f"{node.op}{self._gen_expr(node.operand)}"
        if isinstance(node, ast.PostfixOp):
            return f"{self._gen_expr(node.operand)}{node.op}"
        if isinstance(node, ast.Assignment):
            return f"{self._gen_expr(node.target)} {node.op} {self._gen_expr(node.value)}"
        if isinstance(node, ast.Call):
            args = ", ".join(self._gen_expr(a) for a in node.args)
            return f"{self._gen_expr(node.func)}({args})"
        if isinstance(node, ast.ArraySubscript):
            return f"{self._gen_expr(node.array)}[{self._gen_expr(node.index)}]"
        if isinstance(node, ast.MemberAccess):
            sep = "->" if node.arrow else "."
            return f"{self._gen_expr(node.obj)}{sep}{node.member}"
        if isinstance(node, ast.Cast):
            type_text = node.type_name
            stars = len(type_text) - len(type_text.rstrip("*"))
            if stars:
                type_text = type_text.rstrip("*").strip() + " " + "*" * stars
            return f"({type_text}) {self._gen_expr(node.operand)}"
        if isinstance(node, ast.Conditional):
            return (f"{self._gen_expr(node.cond)} ? {self._gen_expr(node.then)}"
                    f" : {self._gen_expr(node.otherwise)}")
        if isinstance(node, ast.Parenthesized):
            return f"({self._gen_expr(node.inner)})"
        if isinstance(node, ast.InitList):
            return "{" + ", ".join(self._gen_expr(v) for v in node.values) + "}"
        if isinstance(node, ast.CommaExpression):
            return ", ".join(self._gen_expr(p) for p in node.parts)
        raise CodeGenError(f"cannot generate expression for node kind {node.kind!r}")


def generate_code(node: ast.Node) -> str:
    """Convenience wrapper: generate standardised source for ``node``."""
    return CodeGenerator().generate(node)


def standardize(source: str) -> str:
    """Round-trip ``source`` through the parser and code generator.

    This is the corpus standardisation pass described in the paper: wrong
    indentation is amended and unnecessary line breaks and spaces removed by
    regenerating the program from its AST.
    """
    from .parser import parse_source

    unit = parse_source(source, tolerant=True)
    return generate_code(unit)
