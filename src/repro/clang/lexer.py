"""A hand-written lexer for the C subset used by MPI numerical codes.

The lexer is deliberately forgiving: preprocessor directives and comments are
kept as tokens (the standardiser needs ``#include`` lines, and comments are
useful context for the sequence model), and unknown characters produce ERROR
tokens rather than aborting, mirroring TreeSitter's ability to tokenise
partially written code during live advising.
"""

from __future__ import annotations

from .errors import LexError
from .tokens import C_KEYWORDS, PUNCTUATORS, Token, TokenKind, TokenStream

_WHITESPACE = " \t\r"
_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


class Lexer:
    """Tokenise C source text.

    Parameters
    ----------
    source:
        The full text of a C translation unit (or fragment).
    keep_comments:
        When True (default) comments are emitted as COMMENT tokens; when False
        they are skipped entirely.
    strict:
        When True, unrecognised characters raise :class:`LexError`; when False
        (default) they are emitted as ERROR tokens and lexing continues.
    """

    def __init__(self, source: str, *, keep_comments: bool = True, strict: bool = False) -> None:
        self.source = source
        self.keep_comments = keep_comments
        self.strict = strict
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ api

    def tokenize(self) -> list[Token]:
        """Lex the entire source and return the token list (EOF-terminated)."""
        tokens: list[Token] = []
        while self.pos < len(self.source):
            tok = self._next_token()
            if tok is None:
                continue
            if tok.kind is TokenKind.COMMENT and not self.keep_comments:
                continue
            tokens.append(tok)
        tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
        return tokens

    def stream(self) -> TokenStream:
        """Lex and wrap the result in a :class:`TokenStream` for the parser.

        Comments, newlines, directives and error tokens are filtered out of the
        stream — the parser only sees syntactically relevant tokens.
        """
        relevant = [
            t
            for t in self.tokenize()
            if t.kind
            not in (TokenKind.COMMENT, TokenKind.NEWLINE, TokenKind.DIRECTIVE, TokenKind.ERROR)
        ]
        return TokenStream(relevant)

    # ------------------------------------------------------------ internals

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _make(self, kind: TokenKind, text: str, line: int, column: int) -> Token:
        return Token(kind, text, line, column)

    def _next_token(self) -> Token | None:
        ch = self._peek()
        line, column = self.line, self.column

        # Whitespace (newlines become NEWLINE tokens so directives stay line-scoped).
        if ch in _WHITESPACE:
            self._advance()
            return None
        if ch == "\n":
            self._advance()
            return self._make(TokenKind.NEWLINE, "\n", line, column)

        # Preprocessor directive: consume to end of line (handling \ continuation).
        if ch == "#":
            text = self._consume_directive()
            return self._make(TokenKind.DIRECTIVE, text, line, column)

        # Comments.
        if ch == "/" and self._peek(1) == "/":
            text = self._consume_until_newline()
            return self._make(TokenKind.COMMENT, text, line, column)
        if ch == "/" and self._peek(1) == "*":
            text = self._consume_block_comment(line, column)
            return self._make(TokenKind.COMMENT, text, line, column)

        # String and character literals.
        if ch == '"':
            text = self._consume_quoted('"', line, column)
            return self._make(TokenKind.STRING, text, line, column)
        if ch == "'":
            text = self._consume_quoted("'", line, column)
            return self._make(TokenKind.CHAR, text, line, column)

        # Numbers (integers, floats, hex, exponents, suffixes).
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            text = self._consume_number()
            return self._make(TokenKind.NUMBER, text, line, column)

        # Identifiers and keywords.
        if ch in _ID_START:
            text = self._consume_identifier()
            kind = TokenKind.KEYWORD if text in C_KEYWORDS else TokenKind.IDENTIFIER
            return self._make(kind, text, line, column)

        # Punctuators (maximal munch).
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return self._make(TokenKind.PUNCT, punct, line, column)

        # Unknown character.
        if self.strict:
            raise LexError(f"unexpected character {ch!r}", line, column)
        self._advance()
        return self._make(TokenKind.ERROR, ch, line, column)

    def _consume_directive(self) -> str:
        chars: list[str] = []
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n":
                if chars and chars[-1] == "\\":
                    chars.append(self._advance())
                    continue
                break
            chars.append(self._advance())
        return "".join(chars)

    def _consume_until_newline(self) -> str:
        chars: list[str] = []
        while self.pos < len(self.source) and self._peek() != "\n":
            chars.append(self._advance())
        return "".join(chars)

    def _consume_block_comment(self, line: int, column: int) -> str:
        chars: list[str] = [self._advance(2)]
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                chars.append(self._advance(2))
                return "".join(chars)
            chars.append(self._advance())
        if self.strict:
            raise LexError("unterminated block comment", line, column)
        return "".join(chars)

    def _consume_quoted(self, quote: str, line: int, column: int) -> str:
        chars: list[str] = [self._advance()]
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\\":
                chars.append(self._advance(2))
                continue
            if ch == quote:
                chars.append(self._advance())
                return "".join(chars)
            if ch == "\n":
                break
            chars.append(self._advance())
        if self.strict:
            raise LexError(f"unterminated {quote} literal", line, column)
        return "".join(chars)

    def _consume_number(self) -> str:
        chars: list[str] = []
        # Hexadecimal.
        if self._peek() == "0" and self._peek(1) in "xX":
            chars.append(self._advance(2))
            while self._peek() and (self._peek() in "0123456789abcdefABCDEF"):
                chars.append(self._advance())
        else:
            while self._peek() and (self._peek() in _DIGITS or self._peek() == "."):
                chars.append(self._advance())
            if self._peek() in "eE" and (self._peek(1) in _DIGITS or self._peek(1) in "+-"):
                chars.append(self._advance())
                if self._peek() in "+-":
                    chars.append(self._advance())
                while self._peek() in _DIGITS:
                    chars.append(self._advance())
        # Suffixes (u, l, f combinations).
        while self._peek() and self._peek() in "uUlLfF":
            chars.append(self._advance())
        return "".join(chars)

    def _consume_identifier(self) -> str:
        chars: list[str] = []
        while self._peek() and self._peek() in _ID_CONT:
            chars.append(self._advance())
        return "".join(chars)


def tokenize(source: str, *, keep_comments: bool = True, strict: bool = False) -> list[Token]:
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source, keep_comments=keep_comments, strict=strict).tokenize()


def code_token_texts(source: str) -> list[str]:
    """Return the syntactically relevant token texts of ``source``.

    This is what the paper's "320 tokens" exclusion criterion counts and what
    the sequence tokenizer consumes.
    """
    stream = Lexer(source, keep_comments=False).stream()
    return [t.text for t in stream.tokens if t.kind is not TokenKind.EOF]
