"""AST linearisation: SBT and X-SBT sequences for the Transformer encoder."""

from .sbt import sbt_length, sbt_string, sbt_tokens
from .xsbt import (
    compression_ratio,
    xsbt_for_source,
    xsbt_length,
    xsbt_string,
    xsbt_tokens,
)

__all__ = [
    "sbt_tokens",
    "sbt_string",
    "sbt_length",
    "xsbt_tokens",
    "xsbt_string",
    "xsbt_length",
    "xsbt_for_source",
    "compression_ratio",
]
