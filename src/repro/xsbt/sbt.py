"""Structure-Based Traversal (SBT) of the C AST.

SBT (Hu et al., 2018) is a parenthesised traversal of the AST that — unlike a
plain depth-first token dump — can be unambiguously mapped back to a tree.
SPT-Code's X-SBT (see :mod:`repro.xsbt.xsbt`) is a compressed, XML-like variant
of SBT restricted to nodes at expression level and above.

The SBT string for a node ``n`` with children ``c1..ck`` is::

    ( kind(n) ( sbt(c1) ... sbt(ck) ) kind(n)

and for a leaf simply ``( kind_value )`` where the value is appended for
identifier/literal leaves so the original token content is recoverable.
"""

from __future__ import annotations

from ..clang import ast_nodes as ast


def _leaf_label(node: ast.Node) -> str:
    """Return the label used for a leaf node, embedding its token value."""
    if isinstance(node, ast.Identifier):
        return f"identifier_{node.name}"
    if isinstance(node, ast.Literal):
        return f"{node.kind}_{node.value}"
    return node.kind


def sbt_tokens(node: ast.Node) -> list[str]:
    """Return the SBT token sequence for ``node``."""
    children = node.children()
    if not children:
        label = _leaf_label(node)
        return ["(", label, ")", label]
    out: list[str] = ["(", node.kind]
    for child in children:
        out.extend(sbt_tokens(child))
    out.extend([")", node.kind])
    return out


def sbt_string(node: ast.Node) -> str:
    """Return the SBT sequence as a single space-joined string."""
    return " ".join(sbt_tokens(node))


def sbt_length(node: ast.Node) -> int:
    """Number of tokens in the SBT sequence (used to compare against X-SBT)."""
    return len(sbt_tokens(node))
