"""X-SBT: the XML-like, expression-level-and-above AST linearisation.

X-SBT is SPT-Code's compression of SBT.  Two changes shrink the sequence to
roughly half the SBT length:

1. *Syntax-level truncation* — only nodes at expression level and above are
   kept (identifiers, literals, field accesses, subscripts and other
   token-level leaves are dropped).
2. *XML-like form* — an internal node emits ``kind`` once as an opening tag
   and once as ``__``-prefixed closing tag only when it has surviving
   children; childless (after truncation) nodes emit a single tag.

The resulting sequence, joined with spaces, is what gets concatenated after
the ``[SEP]`` symbol in the encoder input (Figure 1b of the paper).  The
examples in Figure 2 of the paper show exactly this shape, e.g.::

    parameter_declaration parameter_declaration compound_statement__ declaration
    declaration expression_statement__ call_expression__ pointer_expression
    pointer_expression__call_expression__expression_statement ...
"""

from __future__ import annotations

from ..clang import ast_nodes as ast
from ..clang.ast_nodes import EXPRESSION_KINDS

#: Node kinds that are dropped from the X-SBT (below expression level).
_DROPPED_KINDS = EXPRESSION_KINDS | {
    "init_declarator",
    "preproc_include",
}

#: Kinds whose subtree is kept but not descended into any further (their
#: children are all below expression level by construction).
_ATOMIC_KINDS = frozenset({
    "number_literal",
    "string_literal",
    "char_literal",
    "identifier",
})


def _kept(node: ast.Node) -> bool:
    """Return True if ``node`` survives the expression-level truncation."""
    return node.kind not in _DROPPED_KINDS


def xsbt_tokens(node: ast.Node) -> list[str]:
    """Return the X-SBT token sequence for ``node`` (excluding the node itself
    if it is below expression level)."""
    out: list[str] = []
    _emit(node, out)
    return out


def _emit(node: ast.Node, out: list[str]) -> None:
    if not _kept(node):
        # The node itself is dropped but structural children may survive
        # (e.g. an init_declarator containing a call_expression initialiser).
        for child in node.children():
            _emit(child, out)
        return

    surviving_children = [c for c in node.children() if _has_surviving(c)]
    if not surviving_children:
        out.append(node.kind)
        return
    out.append(node.kind + "__")
    for child in surviving_children:
        _emit(child, out)
    out.append("__" + node.kind)


def _has_surviving(node: ast.Node) -> bool:
    """True if ``node`` or any descendant survives truncation."""
    if _kept(node):
        return True
    return any(_has_surviving(c) for c in node.children())


def xsbt_string(node: ast.Node) -> str:
    """Return the X-SBT sequence as a single space-joined string."""
    return " ".join(xsbt_tokens(node))


def xsbt_length(node: ast.Node) -> int:
    """Number of tokens in the X-SBT sequence."""
    return len(xsbt_tokens(node))


def xsbt_for_source(source: str) -> str:
    """Parse ``source`` (tolerantly) and return its X-SBT string.

    This is the representation concatenated to the code after ``[SEP]`` in the
    encoder input.
    """
    from ..clang.parser import parse_source

    unit = parse_source(source, tolerant=True)
    return xsbt_string(unit)


def compression_ratio(node: ast.Node) -> float:
    """Return ``len(xsbt) / len(sbt)`` for ``node``.

    The paper reports X-SBT reduces sequence length by more than half compared
    to SBT; the property tests assert this ratio stays below 1 and the
    statistics module reports the corpus-level average.
    """
    from .sbt import sbt_length

    sbt_len = sbt_length(node)
    if sbt_len == 0:
        return 0.0
    return xsbt_length(node) / sbt_len
