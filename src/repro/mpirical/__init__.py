"""MPI-RICAL core: training pipeline, prediction, suggestions, assistant, baseline."""

from .assistant import Advice, AdviceSession, MPIAssistant, build_advice_session
from .baseline import BaselineConfig, RuleBasedBaseline
from .pipeline import MPIRical, PredictionResult
from .suggestions import (
    MPISuggestion,
    apply_suggestions,
    extract_suggestions,
    suggestions_by_function,
)

__all__ = [
    "Advice",
    "AdviceSession",
    "MPIAssistant",
    "build_advice_session",
    "BaselineConfig",
    "RuleBasedBaseline",
    "MPIRical",
    "PredictionResult",
    "MPISuggestion",
    "apply_suggestions",
    "extract_suggestions",
    "suggestions_by_function",
]
