"""The MPI-RICAL pipeline: dataset → vocabulary → Transformer → predictions.

This is the library's primary entry point.  :class:`MPIRical` wires the
dataset builder, the tokenizer, the seq2seq Transformer, greedy decoding and
the evaluation metrics into the workflow of Figure 1a:

>>> corpus = default_corpus(num_repositories=80)
>>> dataset = build_dataset(corpus)
>>> mpirical = MPIRical.fit(dataset.splits.train, dataset.splits.validation)
>>> evaluation = mpirical.evaluate(dataset.splits.test)   # Table II metrics
>>> generated = mpirical.predict_code(some_mpi_free_program)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..dataset.records import TranslationExample
from ..evaluation.report import CorpusEvaluation, ExamplePrediction, evaluate_corpus
from ..model.checkpoints import load_checkpoint, model_fingerprint, save_checkpoint
from ..model.config import ExperimentConfig, small_config
from ..model.decoding import (
    DecodingStrategy,
    merge_legacy_overrides,
    strategy_from_generation,
)
from ..model.generation import GenerationConfig
from ..model.trainer import Trainer, TrainingHistory
from ..model.transformer import Seq2SeqTransformer
from ..tokenization.code_tokenizer import ExampleEncoder, SequenceConfig, tokenize_code
from ..xsbt.xsbt import xsbt_for_source
from .suggestions import MPISuggestion, extract_suggestions


@dataclass
class PredictionResult:
    """Everything produced for one input program."""

    generated_code: str
    generated_tokens: list[str]
    suggestions: list[MPISuggestion] = field(default_factory=list)


def _load_experiment_config(path: str | Path) -> ExperimentConfig | None:
    """The checkpoint's saved :class:`ExperimentConfig`, or None if absent."""
    import json

    from ..model.config import ModelConfig, TrainingConfig

    experiment_path = Path(path) / "experiment.json"
    if not experiment_path.exists():
        return None
    data = json.loads(experiment_path.read_text())
    return ExperimentConfig(
        model=ModelConfig(**data.get("model", {})),
        training=TrainingConfig(**data.get("training", {})),
        **{key: value for key, value in data.items()
           if key not in ("model", "training")},
    )


class MPIRical:
    """The trained MPI-RICAL assistant."""

    def __init__(self, model: Seq2SeqTransformer, encoder: ExampleEncoder,
                 config: ExperimentConfig, history: TrainingHistory | None = None,
                 generation: GenerationConfig | None = None) -> None:
        self.model = model
        self.encoder = encoder
        self.config = config
        self.history = history or TrainingHistory()
        #: Default decoding settings for every ``predict_*`` call; pass an
        #: explicit ``generation=`` to an individual call to override them.
        self.generation = generation or GenerationConfig(
            max_length=config.max_target_tokens + 2)

    # --------------------------------------------------------------- training

    @classmethod
    def fit(cls, train_examples: list[TranslationExample],
            validation_examples: list[TranslationExample] | None = None,
            config: ExperimentConfig | None = None, *, verbose: bool = False) -> "MPIRical":
        """Fine-tune the Transformer on translation examples.

        This is the reproduction's equivalent of fine-tuning SPT-Code on
        MPICodeCorpus.  The vocabulary is built from the training split only.
        """
        config = config or small_config()
        sequence_config = SequenceConfig(
            max_source_tokens=config.max_source_tokens,
            max_xsbt_tokens=config.max_xsbt_tokens,
            max_target_tokens=config.max_target_tokens,
        )
        encoder = ExampleEncoder.fit(train_examples, sequence_config,
                                     use_xsbt=config.use_xsbt)
        config.model.vocab_size = len(encoder.vocab)
        model = Seq2SeqTransformer(config.model)

        trainer = Trainer(model, encoder.vocab.pad_id, config.training)
        encoded_train = encoder.encode_examples(train_examples)
        encoded_val = encoder.encode_examples(validation_examples or [])
        history = trainer.fit(encoded_train, encoded_val, verbose=verbose)
        return cls(model=model, encoder=encoder, config=config, history=history)

    # -------------------------------------------------------------- inference

    def _encode_for_inference(self, source_code: str, xsbt: str | None,
                              tokens: list[str] | None = None) -> list[int]:
        if xsbt is None and self.config.use_xsbt:
            xsbt = xsbt_for_source(source_code)
        return self.encoder.encode_source(source_code, xsbt, tokens=tokens)

    def encode_source_ids(self, source_code: str, xsbt: str | None = None,
                          tokens: list[str] | None = None) -> list[int]:
        """Public source encoding: the exact id sequence the decode paths
        feed the model (XSBT derivation, truncation, joint layout).  The
        continuous-batching scheduler encodes through this so a request
        joining an in-flight batch sees the same ids a sequential
        :meth:`predict_code` would."""
        return self._encode_for_inference(source_code, xsbt, tokens)

    def package_prediction(self, source_code: str,
                           generated_ids: list[int]) -> PredictionResult:
        """Public packaging: decode ids through the vocabulary and package
        exactly as :meth:`predict_code` does (standardise + suggestion
        extraction)."""
        return self._package_prediction(source_code,
                                        self.encoder.vocab.decode(generated_ids))

    def _resolve_decode(self, generation: GenerationConfig | None,
                        strategy: DecodingStrategy | None,
                        beam_size: int | None = None,
                        length_penalty: float | None = None,
                        ) -> tuple[DecodingStrategy, int]:
        """Resolve one ``(strategy, max_length)`` pair for a predict call.

        Precedence: an explicit ``strategy`` wins; the deprecated
        ``beam_size``/``length_penalty`` kwargs come next (and warn,
        validating and merging onto the base config exactly like the serving
        shim — :func:`repro.model.decoding.merge_legacy_overrides`); the
        legacy ``generation`` config maps greedy/beam as it always did; the
        pipeline default closes the chain.  ``max_length`` always comes from
        the (given or default) generation config — it bounds the decode loop
        and is not part of a strategy's identity.
        """
        if beam_size is not None or length_penalty is not None:
            if strategy is not None:
                raise ValueError(
                    "pass either strategy= or the deprecated beam_size=/"
                    "length_penalty= kwargs, not both")
            warnings.warn(
                "predict_*(beam_size=, length_penalty=) is deprecated; pass "
                "strategy=BeamStrategy(...) (repro.model.decoding) instead",
                DeprecationWarning, stacklevel=3)
            merged = merge_legacy_overrides(generation or self.generation,
                                            beam_size, length_penalty)
            return strategy_from_generation(merged), merged.max_length
        generation = generation or self.generation
        if strategy is None:
            strategy = strategy_from_generation(generation)
        return strategy, generation.max_length

    def predict_tokens(self, source_code: str, xsbt: str | None = None, *,
                       generation: GenerationConfig | None = None,
                       strategy: DecodingStrategy | None = None,
                       beam_size: int | None = None,
                       length_penalty: float | None = None,
                       source_tokens: list[str] | None = None,
                       on_token=None) -> list[str]:
        """Generate the output token sequence for ``source_code``.

        ``strategy`` (any :class:`repro.model.decoding.DecodingStrategy`)
        selects the decoding algorithm; ``generation`` overrides the
        pipeline-level :attr:`generation` defaults and, when no strategy is
        given, maps onto greedy/beam exactly as before.  ``on_token`` streams
        each generated token id as it is emitted; ``source_tokens`` carries a
        pre-lexed token stream (the serving layer lexes each buffer once).
        ``beam_size`` / ``length_penalty`` are the deprecated pre-strategy
        spelling.
        """
        strategy, max_length = self._resolve_decode(generation, strategy,
                                                    beam_size, length_penalty)
        source_ids = self._encode_for_inference(source_code, xsbt, source_tokens)
        vocab = self.encoder.vocab
        generated_ids = strategy.decode(
            self.model, source_ids, sos_id=vocab.sos_id, eos_id=vocab.eos_id,
            pad_id=vocab.pad_id, max_length=max_length, on_token=on_token)
        return vocab.decode(generated_ids)

    def predict_tokens_batch(self, sources: list[str],
                             xsbts: list[str | None] | None = None, *,
                             generation: GenerationConfig | None = None,
                             strategy: DecodingStrategy | None = None,
                             source_tokens: list[list[str] | None] | None = None,
                             ) -> list[list[str]]:
        """Batched :meth:`predict_tokens` for a list of programs.

        All sources are decoded together (one encoder pass and one decoder
        step per generated position for the whole batch) through the
        strategy's :meth:`DecodingStrategy.decode_batch` — the serving
        layer's hot path.  Output is exact-match identical to per-example
        :meth:`predict_tokens` for every registered strategy (sampling
        included: per-row seeded RNG streams are batch-invariant).
        ``source_tokens`` optionally carries pre-lexed token streams (the
        serving layer lexes each buffer once).
        """
        strategy, max_length = self._resolve_decode(generation, strategy)
        xsbts = xsbts if xsbts is not None else [None] * len(sources)
        if len(xsbts) != len(sources):
            raise ValueError(f"{len(sources)} sources but {len(xsbts)} xsbts")
        if source_tokens is None:
            source_tokens = [None] * len(sources)
        source_ids = [self._encode_for_inference(source, xsbt, tokens)
                      for source, xsbt, tokens in zip(sources, xsbts, source_tokens)]
        vocab = self.encoder.vocab
        generated = strategy.decode_batch(
            self.model, source_ids, sos_id=vocab.sos_id, eos_id=vocab.eos_id,
            pad_id=vocab.pad_id, max_length=max_length)
        return [vocab.decode(ids) for ids in generated]

    @staticmethod
    def _package_prediction(source_code: str, tokens: list[str]) -> PredictionResult:
        from ..clang.codegen import standardize
        from ..clang.parser import parses_cleanly
        from ..tokenization.code_tokenizer import detokenize

        generated_code = detokenize(tokens)
        if parses_cleanly(generated_code):
            generated_code = standardize(generated_code)
        suggestions = extract_suggestions(source_code, generated_code)
        return PredictionResult(generated_code=generated_code,
                                generated_tokens=tokens,
                                suggestions=suggestions)

    def predict_code(self, source_code: str, xsbt: str | None = None, *,
                     generation: GenerationConfig | None = None,
                     strategy: DecodingStrategy | None = None,
                     beam_size: int | None = None,
                     length_penalty: float | None = None,
                     source_tokens: list[str] | None = None,
                     on_token=None) -> PredictionResult:
        """Generate a full program and extract insertion suggestions.

        When the generated token stream parses cleanly it is re-standardised
        through the code generator, so well-formed predictions come back in
        exactly the corpus' canonical style (same line discipline as the
        reference labels); malformed generations fall back to the raw
        detokenised text.  ``strategy`` selects the decoding algorithm;
        ``on_token`` streams token ids as they are emitted (the serving
        layer's streaming path); ``beam_size``/``length_penalty`` are the
        deprecated spelling.
        """
        tokens = self.predict_tokens(source_code, xsbt, generation=generation,
                                     strategy=strategy, beam_size=beam_size,
                                     length_penalty=length_penalty,
                                     source_tokens=source_tokens,
                                     on_token=on_token)
        return self._package_prediction(source_code, tokens)

    def predict_code_candidates(self, source_code: str, xsbt: str | None = None, *,
                                generation: GenerationConfig | None = None,
                                strategy: DecodingStrategy | None = None,
                                source_tokens: list[str] | None = None,
                                max_candidates: int = 1) -> list[PredictionResult]:
        """Up to ``max_candidates`` packaged candidate predictions, best first.

        Candidate 0 is exactly the :meth:`predict_code` result for the same
        arguments (beam: the winning hypothesis; sampling: the request's own
        seed), so a caller that already holds the served prediction can treat
        it as candidate 0 without re-decoding.  Duplicate token sequences —
        beam runner-ups frequently converge — are dropped, so the list may be
        shorter than requested.  The source is encoded once for all
        candidates.
        """
        strategy, max_length = self._resolve_decode(generation, strategy)
        max_candidates = min(max(1, max_candidates), strategy.nbest_limit())
        source_ids = self._encode_for_inference(source_code, xsbt, source_tokens)
        vocab = self.encoder.vocab
        candidate_ids = strategy.decode_nbest(
            self.model, source_ids, sos_id=vocab.sos_id, eos_id=vocab.eos_id,
            pad_id=vocab.pad_id, max_length=max_length,
            max_candidates=max_candidates)
        results: list[PredictionResult] = []
        seen: set[tuple[int, ...]] = set()
        for ids in candidate_ids:
            key = tuple(ids)
            if key in seen:
                continue
            seen.add(key)
            results.append(self._package_prediction(source_code,
                                                    vocab.decode(ids)))
        # An empty source yields no hypotheses at all; keep the
        # predict_code contract of always returning at least one result.
        if not results:
            results.append(self._package_prediction(source_code, []))
        return results

    def predict_code_batch(self, sources: list[str],
                           xsbts: list[str | None] | None = None, *,
                           generation: GenerationConfig | None = None,
                           strategy: DecodingStrategy | None = None,
                           source_tokens: list[list[str] | None] | None = None,
                           ) -> list[PredictionResult]:
        """Batched :meth:`predict_code`; one result per input program."""
        token_batches = self.predict_tokens_batch(sources, xsbts, generation=generation,
                                                  strategy=strategy,
                                                  source_tokens=source_tokens)
        return [self._package_prediction(source, tokens)
                for source, tokens in zip(sources, token_batches)]

    def predict_example(self, example: TranslationExample) -> ExamplePrediction:
        """Generate and package a prediction for a dataset example."""
        result = self.predict_code(example.source_code, example.source_xsbt)
        return ExamplePrediction(
            example_id=example.example_id,
            predicted_code=result.generated_code,
            reference_code=example.target_code,
            predicted_tokens=result.generated_tokens,
            reference_tokens=tokenize_code(example.target_code),
        )

    # -------------------------------------------------------------- evaluation

    def evaluate(self, examples: list[TranslationExample], *,
                 line_tolerance: int = 1,
                 limit: int | None = None) -> CorpusEvaluation:
        """Run Table II's metric suite over ``examples``.

        ``limit`` caps the number of evaluated examples (decoding whole
        programs is the slow part); None evaluates everything.
        """
        selected = examples[:limit] if limit is not None else examples
        predictions = [self.predict_example(example) for example in selected]
        return evaluate_corpus(predictions, line_tolerance=line_tolerance)

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> Path:
        """Save weights + vocabulary + config under ``path`` (a directory).

        The checkpoint carries a ``manifest.json`` (shapes digest, vocab
        hash, content-hash revision) that is verified on load and gives the
        model registry its version identity, plus an ``experiment.json``
        with the full experiment config (sequence limits, training preset)
        so :meth:`load` rebuilds the pipeline exactly — without it a loaded
        model would silently fall back to default truncation limits and
        behave differently from the pipeline that saved it.
        """
        import json
        from dataclasses import asdict

        path = save_checkpoint(path, self.model, self.encoder.vocab)
        (path / "experiment.json").write_text(
            json.dumps(asdict(self.config), indent=2))
        return path

    def fingerprint(self) -> str:
        """The content-hash revision of this pipeline's weights + config +
        vocabulary — equal to the ``revision`` recorded by :meth:`save`, so a
        registry entry built from the live pipeline and one built from its
        checkpoint share one ``name@revision`` identity."""
        return model_fingerprint(self.model, self.encoder.vocab)

    @classmethod
    def load(cls, path: str | Path, config: ExperimentConfig | None = None) -> "MPIRical":
        """Load a model saved with :meth:`save`.

        An explicit ``config`` wins; otherwise the checkpoint's own
        ``experiment.json`` (written by :meth:`save`) restores the exact
        sequence limits the model was trained with, and only pre-experiment
        checkpoints fall back to :func:`small_config`.
        """
        if config is None:
            config = _load_experiment_config(path) or small_config()
        model, vocab = load_checkpoint(path)
        sequence_config = SequenceConfig(
            max_source_tokens=config.max_source_tokens,
            max_xsbt_tokens=config.max_xsbt_tokens,
            max_target_tokens=config.max_target_tokens,
        )
        encoder = ExampleEncoder(vocab, sequence_config, use_xsbt=config.use_xsbt)
        config.model = model.config
        return cls(model=model, encoder=encoder, config=config)
