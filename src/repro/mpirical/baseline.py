"""Rule-based baseline for MPI insertion.

The paper motivates MPI-RICAL by arguing that deterministic, rule-based
tooling cannot handle the open-ended placement decisions of domain
decomposition.  This baseline is the strongest *simple* deterministic policy
we could write without program analysis, and the ablation benchmark compares
it against the learned model:

* ``MPI_Init(&argc, &argv);`` right after the last declaration at the top of
  ``main``;
* ``MPI_Comm_rank`` / ``MPI_Comm_size`` immediately after ``MPI_Init`` (using
  rank/size variable names found among the declarations, else defaults);
* ``MPI_Finalize();`` immediately before ``main``'s final ``return`` (or at
  the end of ``main``);
* optionally, a single ``MPI_Reduce`` before the first root-guarded ``printf``
  if the code accumulates into a scalar inside a loop (the most common
  reduction idiom).

Everything else (Send/Recv placement, Scatter/Gather pairing, non-blocking
communication) is out of reach for the rules — which is exactly the gap the
learned model closes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .suggestions import MPISuggestion

_DECLARATION_RE = re.compile(
    r"^\s*(?:static\s+|const\s+)?(?:unsigned\s+|signed\s+)?"
    r"(?:int|long|float|double|char|size_t|MPI_\w+)\b[^=;()]*(=[^;]*)?;"
)
_RANK_NAME_RE = re.compile(r"\b(?:int)\b[^;]*\b(rank|my_rank|myid|me|world_rank|pid)\b")
_SIZE_NAME_RE = re.compile(r"\b(?:int)\b[^;]*\b(size|num_procs|nprocs|world_size|numprocs|np)\b")
_ACCUMULATION_RE = re.compile(r"\b(\w+)\s*(\+=|=\s*\1\s*[+*])")
_ROOT_PRINT_RE = re.compile(r"if\s*\(\s*\w+\s*==\s*0\s*\)")


@dataclass
class BaselineConfig:
    """Baseline behaviour switches (for the ablation grid)."""

    insert_reduce: bool = True


class RuleBasedBaseline:
    """Deterministic MPI-insertion policy."""

    def __init__(self, config: BaselineConfig | None = None) -> None:
        self.config = config or BaselineConfig()

    # ------------------------------------------------------------------ api

    def suggest(self, source_code: str) -> list[MPISuggestion]:
        """Produce insertion suggestions for ``source_code``."""
        lines = source_code.splitlines()
        main_start = self._find_main(lines)
        if main_start is None:
            return []

        rank_var, size_var = self._find_rank_size_names(lines)
        last_decl = self._last_declaration_line(lines, main_start)
        insert_anchor = last_decl if last_decl is not None else main_start + 1

        suggestions = [
            MPISuggestion("MPI_Init", insert_anchor, "MPI_Init(&argc, &argv);"),
            MPISuggestion("MPI_Comm_rank", insert_anchor,
                          f"MPI_Comm_rank(MPI_COMM_WORLD, &{rank_var});"),
            MPISuggestion("MPI_Comm_size", insert_anchor,
                          f"MPI_Comm_size(MPI_COMM_WORLD, &{size_var});"),
        ]

        finalize_anchor = self._finalize_anchor(lines, main_start)
        suggestions.append(MPISuggestion("MPI_Finalize", finalize_anchor, "MPI_Finalize();"))

        if self.config.insert_reduce:
            reduce_suggestion = self._maybe_reduce(lines, rank_var)
            if reduce_suggestion is not None:
                suggestions.append(reduce_suggestion)
        return suggestions

    def predict_code(self, source_code: str) -> str:
        """Return the program with the baseline's insertions applied."""
        from .suggestions import apply_suggestions

        return apply_suggestions(source_code, self.suggest(source_code))

    # ------------------------------------------------------------ internals

    @staticmethod
    def _find_main(lines: list[str]) -> int | None:
        for idx, line in enumerate(lines):
            if re.search(r"\bmain\s*\(", line):
                return idx + 1  # 1-based
        return None

    @staticmethod
    def _find_rank_size_names(lines: list[str]) -> tuple[str, str]:
        rank_var, size_var = "rank", "size"
        for line in lines:
            rank_match = _RANK_NAME_RE.search(line)
            if rank_match:
                rank_var = rank_match.group(1)
            size_match = _SIZE_NAME_RE.search(line)
            if size_match:
                size_var = size_match.group(1)
        return rank_var, size_var

    @staticmethod
    def _last_declaration_line(lines: list[str], main_start: int) -> int | None:
        last = None
        for idx in range(main_start, len(lines)):
            line = lines[idx]
            if _DECLARATION_RE.match(line):
                last = idx + 1  # 1-based
                continue
            if line.strip() and last is not None:
                break
        return last

    @staticmethod
    def _finalize_anchor(lines: list[str], main_start: int) -> int:
        # Before the last `return` in the file; else before the final brace.
        last_return = None
        for idx in range(main_start, len(lines)):
            if re.match(r"\s*return\b", lines[idx]):
                last_return = idx
        if last_return is not None:
            return last_return  # insert after the line preceding the return
        for idx in range(len(lines) - 1, -1, -1):
            if lines[idx].strip() == "}":
                return idx
        return len(lines)

    @staticmethod
    def _maybe_reduce(lines: list[str], rank_var: str) -> MPISuggestion | None:
        accumulator: str | None = None
        for line in lines:
            match = _ACCUMULATION_RE.search(line)
            if match:
                accumulator = match.group(1)
        if accumulator is None:
            return None
        for idx, line in enumerate(lines):
            if _ROOT_PRINT_RE.search(line):
                return MPISuggestion(
                    "MPI_Reduce",
                    idx,  # before the root-guarded print
                    f"MPI_Reduce(&{accumulator}, &{accumulator}_total, 1, MPI_DOUBLE, "
                    "MPI_SUM, 0, MPI_COMM_WORLD);",
                )
        return None
