"""IDE-style programming assistant wrapper around a trained MPI-RICAL model.

The paper positions MPI-RICAL as an in-editor advisor: the programmer writes
serial domain-decomposition code and the tool proposes MPI calls and their
locations on the fly.  :class:`MPIAssistant` exposes that interaction:

* :meth:`advise` — given a (possibly incomplete) source buffer, return a list
  of :class:`Advice` items, each a renderable suggestion with a confidence
  proxy and the affected line;
* :meth:`rewrite` — return the buffer with the accepted suggestions applied;
* incomplete code is handled through the tolerant parser, mirroring the
  TreeSitter-based live advising discussed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clang.parser import parse_source_with_diagnostics
from ..mpiknow.registry import MPI_COMMON_CORE
from ..xsbt.xsbt import xsbt_string
from .pipeline import MPIRical
from .suggestions import MPISuggestion, apply_suggestions


@dataclass
class Advice:
    """One piece of advice shown to the programmer."""

    suggestion: MPISuggestion
    #: Rough confidence proxy: common-core functions are suggested far more
    #: reliably than tail functions (Table II MCC vs M rows), so they are
    #: flagged "high"; everything else "medium".
    confidence: str = "medium"
    note: str = ""

    def render(self) -> str:
        text = self.suggestion.render()
        return f"[{self.confidence}] {text}" + (f" — {self.note}" if self.note else "")


@dataclass
class AdviceSession:
    """The result of one advise() call."""

    advice: list[Advice] = field(default_factory=list)
    parse_diagnostics: list[str] = field(default_factory=list)
    generated_code: str = ""

    def summary(self) -> str:
        lines = [a.render() for a in self.advice]
        if not lines:
            return "no MPI insertions suggested"
        return "\n".join(lines)


def build_advice_session(diagnostics, result) -> AdviceSession:
    """Package a :class:`PredictionResult` + parse diagnostics into a session.

    Shared by :class:`MPIAssistant` and the serving layer (which parses the
    buffer itself for cache keying and hands the pre-parsed pieces here).
    """
    session = AdviceSession(
        parse_diagnostics=[d.message for d in diagnostics],
        generated_code=result.generated_code,
    )
    for suggestion in result.suggestions:
        confidence = "high" if suggestion.function in MPI_COMMON_CORE else "medium"
        note = ""
        if suggestion.function in ("MPI_Init", "MPI_Finalize"):
            note = "required to bracket the parallel region"
        session.advice.append(Advice(suggestion=suggestion, confidence=confidence,
                                     note=note))
    return session


class MPIAssistant:
    """Interactive advisor facade over :class:`MPIRical`.

    ``identity`` is the optional ``name@revision`` string of the model this
    assistant fronts (set by :class:`repro.registry.ModelEntry`); a
    standalone assistant serves anonymously.
    """

    def __init__(self, mpirical: MPIRical, identity: str | None = None) -> None:
        self.mpirical = mpirical
        self.identity = identity

    # ------------------------------------------------------------------ api

    def advise(self, source_code: str, *, strategy=None) -> AdviceSession:
        """Suggest MPI insertions for ``source_code``.

        The buffer is parsed tolerantly; parse diagnostics are surfaced to the
        caller (an IDE would show them as soft warnings) but never block the
        suggestion flow — incomplete code is the expected case while typing.
        ``strategy`` (a :class:`repro.model.decoding.DecodingStrategy`)
        selects the decoding algorithm; None uses the pipeline default.
        """
        unit, diagnostics = parse_source_with_diagnostics(source_code)
        xsbt = xsbt_string(unit)
        result = self.mpirical.predict_code(source_code, xsbt, strategy=strategy)
        return build_advice_session(diagnostics, result)

    def advise_batch(self, sources: list[str], *, generation=None,
                     strategy=None) -> list[AdviceSession]:
        """Batched :meth:`advise` — one session per input buffer.

        All buffers go through :meth:`MPIRical.predict_code_batch`, so the
        model runs one batched decode instead of ``len(sources)`` sequential
        ones — for every registered strategy (greedy, beam, seeded sampling).
        Sessions are exact-match identical to per-buffer :meth:`advise`; this
        is the entry point the serving layer's micro-batcher flushes into.
        """
        parsed = [parse_source_with_diagnostics(source) for source in sources]
        xsbts = [xsbt_string(unit) for unit, _ in parsed]
        results = self.mpirical.predict_code_batch(sources, xsbts,
                                                   generation=generation,
                                                   strategy=strategy)
        return [build_advice_session(diagnostics, result)
                for (_, diagnostics), result in zip(parsed, results)]

    def advise_request(self, request) -> "object":
        """Serve one :class:`repro.api.AdviseRequest` without a serving stack.

        The direct, cache-free implementation of the v1 contract: validates
        the request, decodes under its strategy and returns an
        :class:`repro.api.AdviseResponse` (``cached=False``, no cache key).
        :class:`repro.serving.InferenceService` layers batching, caching and
        multi-model routing over the very same contract.

        A standalone assistant fronts exactly one model: a request pinning
        ``model`` is accepted only when it matches this assistant's own
        :attr:`identity` (name, or the full ``name@revision``); anything else
        is the same unknown-model 422 the registry-backed service answers.
        """
        import time

        from ..api import AdviseResponse, ApiError, advice_items

        request.validate()
        echo_model = None
        if request.model is not None:
            name = self.identity.split("@", 1)[0] if self.identity else None
            if self.identity is None or request.model not in (name, self.identity):
                raise ApiError.unknown_model(
                    f"unknown model {request.model!r} (this assistant serves "
                    f"{self.identity or 'one anonymous model'})")
            echo_model = self.identity
        # Normalise exactly like the serving stack (beam_size=1 is greedy),
        # so both implementations of the contract echo the same strategy
        # identity for equivalent requests.
        strategy = request.strategy.normalised()
        start = time.perf_counter()
        session = self.advise(request.code, strategy=strategy)
        return AdviseResponse(
            generated_code=session.generated_code,
            advice=advice_items(session),
            diagnostics=tuple(session.parse_diagnostics),
            strategy=strategy,
            cached=False,
            latency_ms=(time.perf_counter() - start) * 1000.0,
            model=echo_model,
        )

    def rewrite(self, source_code: str, advice: list[Advice] | None = None) -> str:
        """Apply advice to the buffer and return the new text.

        With ``advice=None`` every suggestion from a fresh :meth:`advise` pass
        is applied (the "accept all" action).
        """
        if advice is None:
            advice = self.advise(source_code).advice
        return apply_suggestions(source_code, [a.suggestion for a in advice])

    def advise_functions(self, source_code: str) -> list[str]:
        """Just the MPI function names the assistant would insert (RQ1 view)."""
        return [a.suggestion.function for a in self.advise(source_code).advice]
