"""Canonical C signatures for the MPI functions used by the corpus generator.

The corpus templates need syntactically valid MPI calls with plausible
arguments; the signature table records, per function, the canonical argument
skeleton with placeholders that templates substitute:

``{buf}`` / ``{recvbuf}`` — data buffers, ``{count}`` — element counts,
``{dtype}`` — MPI datatype constants, ``{op}`` — reduction ops, ``{root}`` /
``{dest}`` / ``{src}`` — ranks, ``{tag}`` — message tags, ``{comm}`` —
communicators, ``{status}`` / ``{request}`` — status/request objects.
"""

from __future__ import annotations

#: Argument skeletons for the functions the synthetic corpus emits.
CALL_SKELETONS: dict[str, str] = {
    "MPI_Init": "&argc, &argv",
    "MPI_Init_thread": "&argc, &argv, MPI_THREAD_MULTIPLE, &{var}",
    "MPI_Finalize": "",
    "MPI_Abort": "{comm}, 1",
    "MPI_Comm_rank": "{comm}, &{rank}",
    "MPI_Comm_size": "{comm}, &{size}",
    "MPI_Comm_split": "{comm}, {color}, {rank}, &{newcomm}",
    "MPI_Comm_dup": "{comm}, &{newcomm}",
    "MPI_Comm_free": "&{newcomm}",
    "MPI_Get_processor_name": "{name}, &{len}",
    "MPI_Wtime": "",
    "MPI_Barrier": "{comm}",
    "MPI_Send": "{buf}, {count}, {dtype}, {dest}, {tag}, {comm}",
    "MPI_Recv": "{buf}, {count}, {dtype}, {src}, {tag}, {comm}, {status}",
    "MPI_Isend": "{buf}, {count}, {dtype}, {dest}, {tag}, {comm}, &{request}",
    "MPI_Irecv": "{buf}, {count}, {dtype}, {src}, {tag}, {comm}, &{request}",
    "MPI_Ssend": "{buf}, {count}, {dtype}, {dest}, {tag}, {comm}",
    "MPI_Sendrecv": ("{buf}, {count}, {dtype}, {dest}, {tag}, "
                     "{recvbuf}, {count}, {dtype}, {src}, {tag}, {comm}, {status}"),
    "MPI_Wait": "&{request}, {status}",
    "MPI_Waitall": "{count}, {requests}, MPI_STATUSES_IGNORE",
    "MPI_Probe": "{src}, {tag}, {comm}, {status}",
    "MPI_Get_count": "{status}, {dtype}, &{count}",
    "MPI_Bcast": "{buf}, {count}, {dtype}, {root}, {comm}",
    "MPI_Reduce": "{buf}, {recvbuf}, {count}, {dtype}, {op}, {root}, {comm}",
    "MPI_Allreduce": "{buf}, {recvbuf}, {count}, {dtype}, {op}, {comm}",
    "MPI_Scatter": ("{buf}, {count}, {dtype}, {recvbuf}, {count}, {dtype}, "
                    "{root}, {comm}"),
    "MPI_Gather": ("{buf}, {count}, {dtype}, {recvbuf}, {count}, {dtype}, "
                   "{root}, {comm}"),
    "MPI_Allgather": "{buf}, {count}, {dtype}, {recvbuf}, {count}, {dtype}, {comm}",
    "MPI_Alltoall": "{buf}, {count}, {dtype}, {recvbuf}, {count}, {dtype}, {comm}",
    "MPI_Scatterv": ("{buf}, {counts}, {displs}, {dtype}, {recvbuf}, {count}, "
                     "{dtype}, {root}, {comm}"),
    "MPI_Gatherv": ("{buf}, {count}, {dtype}, {recvbuf}, {counts}, {displs}, "
                    "{dtype}, {root}, {comm}"),
    "MPI_Scan": "{buf}, {recvbuf}, {count}, {dtype}, {op}, {comm}",
    "MPI_Reduce_scatter": "{buf}, {recvbuf}, {counts}, {dtype}, {op}, {comm}",
    "MPI_Type_contiguous": "{count}, {dtype}, &{newtype}",
    "MPI_Type_vector": "{count}, 1, {size}, {dtype}, &{newtype}",
    "MPI_Type_commit": "&{newtype}",
    "MPI_Type_free": "&{newtype}",
    "MPI_Cart_create": "{comm}, 2, {dims}, {periods}, 1, &{newcomm}",
    "MPI_Cart_coords": "{newcomm}, {rank}, 2, {coords}",
    "MPI_Cart_shift": "{newcomm}, 0, 1, &{src}, &{dest}",
    "MPI_Dims_create": "{size}, 2, {dims}",
    "MPI_Win_create": ("{buf}, {count} * sizeof(double), sizeof(double), "
                       "MPI_INFO_NULL, {comm}, &{win}"),
    "MPI_Win_fence": "0, {win}",
    "MPI_Win_free": "&{win}",
    "MPI_Put": "{buf}, {count}, {dtype}, {dest}, 0, {count}, {dtype}, {win}",
    "MPI_Get": "{buf}, {count}, {dtype}, {src}, 0, {count}, {dtype}, {win}",
    "MPI_File_open": ("{comm}, \"out.dat\", MPI_MODE_WRONLY | MPI_MODE_CREATE, "
                      "MPI_INFO_NULL, &{file}"),
    "MPI_File_close": "&{file}",
    "MPI_File_write_at": "{file}, {rank} * {count}, {buf}, {count}, {dtype}, {status}",
    "MPI_File_read_at": "{file}, {rank} * {count}, {buf}, {count}, {dtype}, {status}",
}

#: Reasonable default substitutions for skeleton placeholders.
DEFAULT_PLACEHOLDERS: dict[str, str] = {
    "buf": "data",
    "recvbuf": "result",
    "count": "n",
    "counts": "counts",
    "displs": "displs",
    "dtype": "MPI_DOUBLE",
    "op": "MPI_SUM",
    "root": "0",
    "dest": "dest",
    "src": "source",
    "tag": "0",
    "comm": "MPI_COMM_WORLD",
    "status": "MPI_STATUS_IGNORE",
    "request": "request",
    "requests": "requests",
    "rank": "rank",
    "size": "size",
    "newcomm": "newcomm",
    "newtype": "newtype",
    "color": "rank % 2",
    "name": "name",
    "len": "namelen",
    "var": "provided",
    "dims": "dims",
    "periods": "periods",
    "coords": "coords",
    "win": "win",
    "file": "fh",
}


def render_call(name: str, **overrides: str) -> str:
    """Render a full MPI call statement for ``name``.

    Unknown functions get an empty argument list.  ``overrides`` replace the
    default placeholder substitutions.
    """
    skeleton = CALL_SKELETONS.get(name, "")
    values = dict(DEFAULT_PLACEHOLDERS)
    values.update(overrides)

    class _SafeDict(dict):
        def __missing__(self, key: str) -> str:  # pragma: no cover - defensive
            return key

    args = skeleton.format_map(_SafeDict(values))
    return f"{name}({args});"
