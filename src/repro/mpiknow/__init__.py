"""MPI knowledge base: function registry, categories, call signatures."""

from .registry import (
    ALL_MPI_FUNCTION_NAMES,
    MPI_COMMON_CORE,
    MPI_CONSTANTS,
    MPI_FUNCTIONS,
    MPIFunctionInfo,
    categories,
    functions_in_category,
    is_common_core,
    is_mpi_call_name,
    is_mpi_function,
    is_mpi_identifier,
)
from .signatures import CALL_SKELETONS, DEFAULT_PLACEHOLDERS, render_call

__all__ = [
    "ALL_MPI_FUNCTION_NAMES",
    "MPI_COMMON_CORE",
    "MPI_CONSTANTS",
    "MPI_FUNCTIONS",
    "MPIFunctionInfo",
    "categories",
    "functions_in_category",
    "is_common_core",
    "is_mpi_call_name",
    "is_mpi_function",
    "is_mpi_identifier",
    "CALL_SKELETONS",
    "DEFAULT_PLACEHOLDERS",
    "render_call",
]
