"""Registry of MPI functions known to the system.

The paper frames RQ1 as a multi-class classification over the 456 MPI
functions observed in MPICodeCorpus, with a distinguished "MPI Common Core"
of the eight most frequent functions (Table Ib).  This module provides:

* :data:`MPI_COMMON_CORE` — the common-core list in the paper's frequency order;
* :data:`MPI_FUNCTIONS` — a broad registry of MPI-1/2/3 function names grouped
  by category, used by the corpus generator, the dataset removal pass, the
  classifier head of the evaluation, and the MPI runtime simulator;
* helpers to test whether an identifier is an MPI call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MPIFunctionInfo:
    """Metadata about a single MPI function."""

    name: str
    category: str
    #: Number of arguments in the canonical C binding (informational only).
    arity: int
    #: True if the function is in the paper's "MPI Common Core" (Table Ib).
    common_core: bool = False


#: The paper's MPI Common Core, ordered by corpus frequency (Table Ib).
MPI_COMMON_CORE: tuple[str, ...] = (
    "MPI_Finalize",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Init",
    "MPI_Recv",
    "MPI_Send",
    "MPI_Reduce",
    "MPI_Bcast",
)

#: (name, category, arity, common_core)
_RAW_FUNCTIONS: list[tuple[str, str, int]] = [
    # --- environment management
    ("MPI_Init", "environment", 2),
    ("MPI_Init_thread", "environment", 4),
    ("MPI_Finalize", "environment", 0),
    ("MPI_Initialized", "environment", 1),
    ("MPI_Finalized", "environment", 1),
    ("MPI_Abort", "environment", 2),
    ("MPI_Get_processor_name", "environment", 2),
    ("MPI_Get_version", "environment", 2),
    ("MPI_Wtime", "environment", 0),
    ("MPI_Wtick", "environment", 0),
    ("MPI_Error_string", "environment", 3),
    ("MPI_Error_class", "environment", 2),
    ("MPI_Errhandler_set", "environment", 2),
    ("MPI_Comm_set_errhandler", "environment", 2),
    # --- communicator / group management
    ("MPI_Comm_rank", "communicator", 2),
    ("MPI_Comm_size", "communicator", 2),
    ("MPI_Comm_split", "communicator", 4),
    ("MPI_Comm_dup", "communicator", 2),
    ("MPI_Comm_free", "communicator", 1),
    ("MPI_Comm_create", "communicator", 3),
    ("MPI_Comm_group", "communicator", 2),
    ("MPI_Comm_compare", "communicator", 3),
    ("MPI_Group_incl", "communicator", 4),
    ("MPI_Group_excl", "communicator", 4),
    ("MPI_Group_rank", "communicator", 2),
    ("MPI_Group_size", "communicator", 2),
    ("MPI_Group_free", "communicator", 1),
    ("MPI_Group_union", "communicator", 3),
    ("MPI_Group_intersection", "communicator", 3),
    ("MPI_Comm_create_group", "communicator", 4),
    # --- point to point
    ("MPI_Send", "point_to_point", 6),
    ("MPI_Recv", "point_to_point", 7),
    ("MPI_Isend", "point_to_point", 7),
    ("MPI_Irecv", "point_to_point", 7),
    ("MPI_Ssend", "point_to_point", 6),
    ("MPI_Rsend", "point_to_point", 6),
    ("MPI_Bsend", "point_to_point", 6),
    ("MPI_Issend", "point_to_point", 7),
    ("MPI_Irsend", "point_to_point", 7),
    ("MPI_Ibsend", "point_to_point", 7),
    ("MPI_Sendrecv", "point_to_point", 12),
    ("MPI_Sendrecv_replace", "point_to_point", 9),
    ("MPI_Probe", "point_to_point", 4),
    ("MPI_Iprobe", "point_to_point", 5),
    ("MPI_Get_count", "point_to_point", 3),
    ("MPI_Wait", "point_to_point", 2),
    ("MPI_Waitall", "point_to_point", 3),
    ("MPI_Waitany", "point_to_point", 4),
    ("MPI_Waitsome", "point_to_point", 5),
    ("MPI_Test", "point_to_point", 3),
    ("MPI_Testall", "point_to_point", 4),
    ("MPI_Testany", "point_to_point", 5),
    ("MPI_Cancel", "point_to_point", 1),
    ("MPI_Request_free", "point_to_point", 1),
    # --- collectives
    ("MPI_Bcast", "collective", 5),
    ("MPI_Reduce", "collective", 7),
    ("MPI_Allreduce", "collective", 6),
    ("MPI_Scatter", "collective", 8),
    ("MPI_Scatterv", "collective", 9),
    ("MPI_Gather", "collective", 8),
    ("MPI_Gatherv", "collective", 9),
    ("MPI_Allgather", "collective", 7),
    ("MPI_Allgatherv", "collective", 8),
    ("MPI_Alltoall", "collective", 7),
    ("MPI_Alltoallv", "collective", 9),
    ("MPI_Barrier", "collective", 1),
    ("MPI_Scan", "collective", 6),
    ("MPI_Exscan", "collective", 6),
    ("MPI_Reduce_scatter", "collective", 6),
    ("MPI_Ibcast", "collective", 6),
    ("MPI_Ireduce", "collective", 8),
    ("MPI_Iallreduce", "collective", 7),
    ("MPI_Igather", "collective", 9),
    ("MPI_Iscatter", "collective", 9),
    ("MPI_Ibarrier", "collective", 2),
    # --- derived datatypes
    ("MPI_Type_contiguous", "datatype", 3),
    ("MPI_Type_vector", "datatype", 5),
    ("MPI_Type_create_struct", "datatype", 5),
    ("MPI_Type_commit", "datatype", 1),
    ("MPI_Type_free", "datatype", 1),
    ("MPI_Type_size", "datatype", 2),
    ("MPI_Type_get_extent", "datatype", 3),
    ("MPI_Type_create_subarray", "datatype", 7),
    ("MPI_Type_indexed", "datatype", 5),
    ("MPI_Pack", "datatype", 7),
    ("MPI_Unpack", "datatype", 7),
    ("MPI_Pack_size", "datatype", 4),
    ("MPI_Op_create", "datatype", 3),
    ("MPI_Op_free", "datatype", 1),
    # --- topology
    ("MPI_Cart_create", "topology", 6),
    ("MPI_Cart_coords", "topology", 4),
    ("MPI_Cart_rank", "topology", 3),
    ("MPI_Cart_shift", "topology", 5),
    ("MPI_Cart_sub", "topology", 3),
    ("MPI_Dims_create", "topology", 3),
    ("MPI_Graph_create", "topology", 6),
    ("MPI_Cartdim_get", "topology", 2),
    ("MPI_Cart_get", "topology", 5),
    # --- one sided
    ("MPI_Win_create", "one_sided", 6),
    ("MPI_Win_allocate", "one_sided", 6),
    ("MPI_Win_free", "one_sided", 1),
    ("MPI_Win_fence", "one_sided", 2),
    ("MPI_Win_lock", "one_sided", 4),
    ("MPI_Win_unlock", "one_sided", 2),
    ("MPI_Put", "one_sided", 8),
    ("MPI_Get", "one_sided", 8),
    ("MPI_Accumulate", "one_sided", 9),
    # --- I/O
    ("MPI_File_open", "io", 5),
    ("MPI_File_close", "io", 1),
    ("MPI_File_read", "io", 5),
    ("MPI_File_write", "io", 5),
    ("MPI_File_read_at", "io", 6),
    ("MPI_File_write_at", "io", 6),
    ("MPI_File_read_all", "io", 5),
    ("MPI_File_write_all", "io", 5),
    ("MPI_File_set_view", "io", 6),
    ("MPI_File_seek", "io", 3),
    ("MPI_File_get_size", "io", 2),
    ("MPI_File_set_size", "io", 2),
    ("MPI_File_delete", "io", 2),
    # --- attribute / info / misc
    ("MPI_Attr_get", "misc", 4),
    ("MPI_Info_create", "misc", 1),
    ("MPI_Info_set", "misc", 3),
    ("MPI_Info_free", "misc", 1),
    ("MPI_Status_set_elements", "misc", 3),
    ("MPI_Address", "misc", 2),
    ("MPI_Get_address", "misc", 2),
    ("MPI_Buffer_attach", "misc", 2),
    ("MPI_Buffer_detach", "misc", 2),
]


def _build_registry() -> dict[str, MPIFunctionInfo]:
    registry: dict[str, MPIFunctionInfo] = {}
    core = set(MPI_COMMON_CORE)
    for name, category, arity in _RAW_FUNCTIONS:
        registry[name] = MPIFunctionInfo(
            name=name, category=category, arity=arity, common_core=name in core
        )
    return registry


#: Mapping of MPI function name -> :class:`MPIFunctionInfo`.
MPI_FUNCTIONS: dict[str, MPIFunctionInfo] = _build_registry()

#: Sorted tuple of every registered MPI function name (the classifier label set).
ALL_MPI_FUNCTION_NAMES: tuple[str, ...] = tuple(sorted(MPI_FUNCTIONS))

#: MPI constants that appear as call arguments; the interpreter and corpus
#: generator both need them.
MPI_CONSTANTS: tuple[str, ...] = (
    "MPI_COMM_WORLD", "MPI_COMM_SELF", "MPI_COMM_NULL",
    "MPI_INT", "MPI_DOUBLE", "MPI_FLOAT", "MPI_CHAR", "MPI_LONG",
    "MPI_UNSIGNED", "MPI_LONG_LONG", "MPI_BYTE",
    "MPI_SUM", "MPI_MAX", "MPI_MIN", "MPI_PROD", "MPI_LAND", "MPI_LOR",
    "MPI_MAXLOC", "MPI_MINLOC",
    "MPI_ANY_SOURCE", "MPI_ANY_TAG", "MPI_STATUS_IGNORE", "MPI_STATUSES_IGNORE",
    "MPI_IN_PLACE", "MPI_SUCCESS", "MPI_PROC_NULL", "MPI_REQUEST_NULL",
    "MPI_MAX_PROCESSOR_NAME", "MPI_THREAD_MULTIPLE", "MPI_INFO_NULL",
)


def is_mpi_function(name: str) -> bool:
    """True if ``name`` is a registered MPI function."""
    return name in MPI_FUNCTIONS


def is_mpi_identifier(name: str) -> bool:
    """True if ``name`` looks like any MPI API symbol (function or constant).

    The dataset removal pass uses :func:`is_mpi_call_name` (functions only);
    this broader check is useful for analyses of MPI surface area in code.
    """
    return name in MPI_FUNCTIONS or name in MPI_CONSTANTS or name.startswith("MPI_")


def is_mpi_call_name(name: str) -> bool:
    """True if ``name`` should be treated as an MPI *call* for removal.

    Any identifier starting with ``MPI_`` that is used in call position counts,
    even if it is not in the registry — mined code contains wrappers and less
    common MPI routines, and the paper removes all of them.
    """
    return name.startswith("MPI_") and name not in MPI_CONSTANTS


def is_common_core(name: str) -> bool:
    """True if ``name`` is one of the paper's MPI Common Core functions."""
    return name in MPI_COMMON_CORE


def functions_in_category(category: str) -> list[str]:
    """Return all registered function names in ``category`` (sorted)."""
    return sorted(n for n, info in MPI_FUNCTIONS.items() if info.category == category)


def categories() -> list[str]:
    """Return the sorted list of function categories."""
    return sorted({info.category for info in MPI_FUNCTIONS.values()})
