"""Lightweight wall-clock timing helpers used by the trainer and benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps."""

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager that adds the elapsed time to lap ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.laps[name] = self.laps.get(name, 0.0) + elapsed

    def total(self) -> float:
        """Total time across all laps."""
        return sum(self.laps.values())

    def report(self) -> str:
        """Human-readable summary, longest lap first."""
        lines = [
            f"{name}: {seconds:.3f}s"
            for name, seconds in sorted(self.laps.items(), key=lambda kv: -kv[1])
        ]
        return "\n".join(lines)
