"""Shared utilities: deterministic RNG, timing, text/table IO."""

from .rng import choice, make_rng, spawn
from .textio import count_lines, format_table, read_json, write_json
from .timing import Stopwatch

__all__ = [
    "choice",
    "make_rng",
    "spawn",
    "count_lines",
    "format_table",
    "read_json",
    "write_json",
    "Stopwatch",
]
