"""Deterministic random-number helpers.

Every stochastic component in the library (corpus synthesis, dataset splits,
weight initialisation, dropout) takes an explicit seed and derives independent
sub-streams through :func:`spawn`, so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a NumPy Generator from ``seed`` (None = nondeterministic)."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def choice(rng: np.random.Generator, items: list, weights: list[float] | None = None):
    """Pick one element of ``items``, optionally with unnormalised ``weights``."""
    if not items:
        raise ValueError("cannot choose from an empty list")
    if weights is None:
        idx = int(rng.integers(0, len(items)))
        return items[idx]
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    idx = int(rng.choice(len(items), p=probs))
    return items[idx]
