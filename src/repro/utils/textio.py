"""Small text/IO helpers shared across the library."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def count_lines(text: str) -> int:
    """Count non-empty source lines (the unit used by the corpus statistics)."""
    return sum(1 for line in text.splitlines() if line.strip())


def write_json(path: str | Path, payload: Any) -> Path:
    """Serialise ``payload`` as pretty-printed JSON at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=_default))
    return path


def read_json(path: str | Path) -> Any:
    """Read a JSON file written with :func:`write_json`."""
    return json.loads(Path(path).read_text())


def _default(obj: Any) -> Any:
    """JSON encoder fallback for NumPy scalars and dataclass-like objects."""
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "__dict__"):
        return vars(obj)
    raise TypeError(f"cannot serialise {type(obj)!r}")


def format_table(headers: list[str], rows: list[list[Any]]) -> str:
    """Render an aligned plain-text table (used by benchmark harnesses to
    print the same rows the paper's tables report)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
