"""repro.serving — throughput-oriented serving layer over the MPI-RICAL model.

The seed pipeline answers one ``predict_code()`` call at a time; this package
turns it into a concurrent service:

``repro.serving.batching``  dynamic micro-batching scheduler + worker pool
``repro.serving.sched``     continuous batching (the default decode path):
                            an iteration-level scheduler where requests
                            join/retire the in-flight batch between decode
                            steps, with per-row strategy state and
                            bitwise-identical outputs
                            (:class:`ContinuousScheduler`,
                            :class:`InflightBatch`, :class:`SchedulerPolicy`)
``repro.serving.cache``     thread-safe LRU keyed on the canonical xSBT form
                            + decoding strategy + ``model@revision``
``repro.serving.metrics``   hit rate, batch-size histogram, p50/p95 latency,
                            per-model request counters
``repro.serving.service``   the :class:`InferenceService` facade (v1 contract:
                            ``advise_request``, ``advise_stream``; fronts a
                            :class:`repro.registry.ModelRegistry`)
``repro.serving.jobs``      durable async batch jobs (:class:`JobStore` +
                            :class:`JobPolicy`) behind ``POST
                            /v1/advise/batch`` / ``GET /v1/jobs/{id}``:
                            WAL-backed crash recovery, idempotent resume,
                            bounded queue + per-client quotas (429), TTL
                            eviction (410), dead-letter items
``repro.serving.joblog``    the append-only JSONL WAL (:class:`JobLog`)
                            under ``<registry root>/jobs/``
``repro.serving.server``    stdlib HTTP endpoint (/v1/advise,
                            /v1/advise/stream, /v1/advise/batch, /v1/jobs,
                            /v1/models [list/load/swap], legacy /advise,
                            /healthz, /metrics, /admin/drain)
                            (import explicitly: ``repro.serving.server``)
``repro.serving.pool``      :class:`WorkerPool`: N supervised ``server.py``
                            subprocess replicas with restart backoff and
                            fault-injection hooks
                            (import explicitly: ``repro.serving.pool``)
``repro.serving.router``    self-healing front router over the pool —
                            consistent-hash dispatch on the canonical cache
                            key, health probes, retry/backoff + circuit
                            breaking, graceful drain, rolling alias swaps
                            (import explicitly: ``repro.serving.router``)

Quick start
-----------
>>> from repro.api import AdviseRequest
>>> from repro.serving import InferenceService
>>> service = InferenceService(mpirical, max_batch_size=8, max_wait_ms=5)
>>> served = service.advise(source_code)      # blocking; batched under load
>>> response = service.advise_request(AdviseRequest(code=source_code))
>>> service.metrics()["cache_hit_rate"]
"""

from .batching import MicroBatcher
from .cache import CacheStats, LRUCache, canonical_cache_key
from .joblog import JobLog
from .jobs import Job, JobPolicy, JobStore, validate_client_id
from .metrics import RouterMetrics, ServingMetrics, percentile
from .sched import (
    ContinuousScheduler,
    InflightBatch,
    QueueFullError,
    SchedulerPolicy,
    SchedWork,
)
from .service import InferenceService, ServedAdvice, generation_label

# NOTE: the HTTP layers (repro.serving.server, repro.serving.router) are
# intentionally not imported here so that `python -m repro.serving.server` /
# `... .router` does not double-import the module; use
# `from repro.serving.server import make_server`,
# `from repro.serving.pool import WorkerPool`,
# `from repro.serving.router import Router, make_router`.

__all__ = [
    "MicroBatcher",
    "ContinuousScheduler",
    "InflightBatch",
    "QueueFullError",
    "SchedulerPolicy",
    "SchedWork",
    "CacheStats",
    "LRUCache",
    "canonical_cache_key",
    "RouterMetrics",
    "ServingMetrics",
    "percentile",
    "InferenceService",
    "Job",
    "JobLog",
    "JobPolicy",
    "JobStore",
    "ServedAdvice",
    "generation_label",
    "validate_client_id",
]
