"""Durable async batch jobs: crash-safe queue with resume and backpressure.

``POST /v1/advise/batch`` is the offline/bulk counterpart of the interactive
``/v1/advise`` route: a client submits up to
:data:`repro.api.MAX_BATCH_ITEMS` requests at once, gets a job id back
immediately, and polls ``GET /v1/jobs/{id}`` until the job reports
``"done"``.  The :class:`JobStore` behind it is small but production-shaped:

* **durability** — when given a log directory (the registry root's
  ``jobs/``), every submit, per-item result and status transition is an
  append-only record in a JSONL WAL (:mod:`repro.serving.joblog`).  A
  restarted store replays the log: finished jobs come back poll-able with
  their results, unfinished jobs are **re-enqueued idempotently** — items
  whose envelopes were already recorded are never run again, and re-run
  items whose decode completed before the crash are answered from the
  service's advice cache via their canonical cache keys, so resume costs no
  duplicate decodes.  Job ids never recycle across restarts (the WAL
  carries a ``next_id`` watermark);
* **backpressure** — the unfinished backlog is bounded (429 ``queue_full``
  on overflow), each client key (the ``X-Client-Id`` header over HTTP) has
  an in-flight quota (429 ``quota_exceeded``), and a closed store answers
  503 ``unavailable`` instead of pretending shutdown is a server bug;
* **hygiene** — finished jobs are evicted by TTL and by capacity (oldest
  finished first; queued/running jobs are never evicted), and polling an
  evicted-but-real id answers 410 ``expired`` — distinguishable from the
  404 a never-issued id gets, because ids are sequential and the watermark
  survives restarts;
* **self-healing worker** — the single worker thread is supervised: an
  exception escaping a job run fails that job's remaining items with
  ``internal`` envelopes and keeps consuming the queue instead of wedging
  every later job at ``"queued"``.  Each item decode waits with a bounded
  timeout (a hung decode becomes a ``timeout`` error envelope, not a stuck
  worker), and items that repeatedly crash the process (poison inputs —
  their WAL ``attempt`` count crosses the limit without ever recording a
  result) are parked in a terminal ``dead_letter`` envelope on replay;
* **per-item envelopes** — every item independently resolves to
  ``{"status": "ok", "response": ...}``, ``{"status": "error", "error":
  ...}`` or ``{"status": "dead_letter", "error": ...}`` reusing the
  :class:`repro.api.ApiError` wire envelope — one item naming an unloaded
  model does not poison its siblings.

Job ids are sequential (``job-1``, ``job-2``, ...) — deterministic for the
golden contract tests, trivially greppable in logs, and the reason an
evicted id is provably "real" (its number is below the watermark).
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..api import AdviseRequest, ApiError
from .joblog import JobLog

if TYPE_CHECKING:  # pragma: no cover — typing only
    from .metrics import ServingMetrics
    from .service import InferenceService

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE = "queued", "running", "done"

#: Item envelope statuses (``ok``/``error`` plus the poison terminal state).
DEAD_LETTER = "dead_letter"

#: The client-quota bucket for submissions that carry no client key.
ANONYMOUS_CLIENT = "anonymous"

#: Longest accepted client key (the ``X-Client-Id`` header).  The key is
#: used verbatim as a quota-map key, so without a bound a hostile client
#: minting a fresh multi-megabyte id per submit would grow server memory
#: (and the per-submit quota scan) without limit.
MAX_CLIENT_ID_LENGTH = 128

#: Accepted client-key charset: printable, log-safe, header-safe.
_CLIENT_ID = re.compile(r"^[A-Za-z0-9._:@-]+$")

_JOB_ID = re.compile(r"^job-([1-9]\d*)$")


def validate_client_id(client: str | None) -> str | None:
    """Validate a caller-supplied quota key before it becomes a map key.

    Returns the key unchanged (or None for anonymous callers).  Raises the
    400 :class:`repro.api.ApiError` envelope on an oversized or
    out-of-charset id — quota keys are adversarial input, and an unbounded
    id would inflate per-client quota-map cardinality (and WAL record size,
    since the key is persisted with every submit).
    """
    if client is None:
        return None
    if not isinstance(client, str):
        raise ApiError.invalid_request(
            "X-Client-Id must be a string", field="X-Client-Id")
    if len(client) > MAX_CLIENT_ID_LENGTH:
        raise ApiError.invalid_request(
            f"X-Client-Id is {len(client)} characters; the limit is "
            f"{MAX_CLIENT_ID_LENGTH}", field="X-Client-Id")
    if not _CLIENT_ID.match(client):
        raise ApiError.invalid_request(
            "X-Client-Id may only contain letters, digits and '._:@-'",
            field="X-Client-Id")
    return client


@dataclass(frozen=True)
class JobPolicy:
    """Backpressure and hygiene knobs for one :class:`JobStore`.

    The defaults are sized for the in-process/demo scale this repo serves;
    every field exists because "millions of users" traffic needs the bound,
    not because the happy path does.
    """

    #: Retained jobs (finished ones are evicted oldest-first beyond this).
    max_jobs: int = 64
    #: Unfinished (queued + running) backlog bound — submits beyond it get
    #: the typed 429 ``queue_full`` envelope instead of queueing unboundedly.
    max_queue: int = 16
    #: Unfinished jobs one client key may hold — 429 ``quota_exceeded``.
    max_inflight_per_client: int = 8
    #: Seconds a *finished* job stays poll-able; ``None`` disables TTL
    #: eviction (capacity eviction still applies).
    ttl_seconds: float | None = 900.0
    #: Seconds the worker waits for one item's decode before resolving it to
    #: a ``timeout`` error envelope and moving on (also what bounds
    #: :meth:`JobStore.close`'s drain).
    item_timeout: float = 120.0
    #: WAL ``attempt`` records an item may accrue without a result before
    #: replay parks it as ``dead_letter`` (a poison input that keeps killing
    #: the process must not be retried forever).
    max_attempts: int = 3

    def validate(self) -> "JobPolicy":
        if self.max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_inflight_per_client < 1:
            raise ValueError("max_inflight_per_client must be >= 1, got "
                             f"{self.max_inflight_per_client}")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {self.ttl_seconds}")
        if self.item_timeout <= 0:
            raise ValueError(f"item_timeout must be > 0, got {self.item_timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        return self


class Job:
    """One submitted batch: its requests, per-item envelopes and status."""

    def __init__(self, job_id: str, requests: list[AdviseRequest], *,
                 client: str | None = None,
                 submitted_at: float | None = None) -> None:
        self.job_id = job_id
        self.requests = requests
        self.client = client or ANONYMOUS_CLIENT
        self._lock = threading.Lock()
        self._status = QUEUED
        self._results: list[dict[str, Any] | None] = [None] * len(requests)
        self._completed = 0
        #: Times each item has been handed to the service without recording
        #: a result — restored from WAL ``attempt`` records on resume; the
        #: poison-input (dead-letter) counter.
        self.attempts: list[int] = [0] * len(requests)
        self.submitted_at = submitted_at if submitted_at is not None else time.time()
        self.finished_at: float | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------- lifecycle

    def _mark_running(self) -> None:
        with self._lock:
            if self._status == QUEUED:
                self._status = RUNNING

    def _set_result(self, index: int, envelope: dict[str, Any]) -> bool:
        """Record ``envelope`` for item ``index``; first write wins.

        Returns True when this call newly resolved the item — replayed WAL
        records, a late decode completing after its timeout envelope, and
        the crash-supervisor's blanket fill can race, and exactly one of
        them may count (and be logged).
        """
        with self._lock:
            if self._results[index] is not None:
                return False
            self._results[index] = envelope
            self._completed += 1
            if self._completed == len(self._results):
                self._status = DONE
                self.finished_at = time.time()
                self._done.set()
            return True

    def _has_result(self, index: int) -> bool:
        with self._lock:
            return self._results[index] is not None

    # ------------------------------------------------------------- reporting

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is done (True) or ``timeout`` expires."""
        return self._done.wait(timeout)

    def to_dict(self) -> dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body.

        ``results`` holds one envelope per *completed* item, each tagged with
        its submission ``index`` — a poll mid-run sees the finished prefix of
        the workload, a poll after ``"done"`` sees everything, and the key
        set is identical in both cases.
        """
        with self._lock:
            results = [dict(envelope, index=index)
                       for index, envelope in enumerate(self._results)
                       if envelope is not None]
            return {
                "api_version": "v1",
                "job_id": self.job_id,
                "status": self._status,
                "total": len(self._results),
                "completed": self._completed,
                "results": results,
            }


def _error_envelope(error: ApiError) -> dict[str, Any]:
    return {"status": "error", **error.to_dict()}


def _internal_envelope(exc: Exception) -> dict[str, Any]:
    return _error_envelope(ApiError.internal(f"{type(exc).__name__}: {exc}"))


class JobStore:
    """Bounded, durable job queue + supervised worker over an
    :class:`InferenceService`.

    ``log_dir`` enables the WAL (usually ``<registry root>/jobs/``); ``None``
    keeps the pre-durability in-memory behaviour — jobs die with the
    process, but every bound and envelope still applies.  ``max_jobs`` is
    kept as a shorthand for ``policy=JobPolicy(max_jobs=...)``.
    """

    def __init__(self, service: "InferenceService", *,
                 max_jobs: int | None = None,
                 policy: JobPolicy | None = None,
                 log_dir: str | Path | None = None,
                 metrics: "ServingMetrics | None" = None) -> None:
        policy = policy or JobPolicy()
        if max_jobs is not None:
            policy = replace(policy, max_jobs=max_jobs)
        self.policy = policy.validate()
        self.service = service
        self.metrics = metrics
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._queue: list[Job] = []
        self._next_id = 1
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._evicted_total = 0
        self._dead_letter_items = 0
        self._resumed_jobs = 0
        self._restored_items = 0
        self._rejected: dict[str, int] = {}
        self._log = JobLog(log_dir) if log_dir is not None else None
        if self._log is not None:
            self._recover()
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="batch-jobs", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------- api

    @property
    def max_jobs(self) -> int:
        return self.policy.max_jobs

    def submit(self, requests: list[AdviseRequest], *,
               client: str | None = None) -> Job:
        """Queue one batch of already-validated requests; returns its job.

        ``client`` is the caller's quota key (the ``X-Client-Id`` header over
        HTTP; ``None`` shares the anonymous bucket).  Raises the typed
        :class:`repro.api.ApiError` envelopes on backpressure: 429
        ``queue_full`` when the unfinished backlog is at capacity, 429
        ``quota_exceeded`` when this client already holds its in-flight
        quota, 503 ``unavailable`` once the store is shutting down.  A job is
        fsynced to the WAL *before* its id is acknowledged — an acknowledged
        submit survives a crash.
        """
        if not requests:
            raise ApiError.invalid_request(
                '"items" must be a non-empty list of advise requests',
                field="items")
        client_key = validate_client_id(client) or ANONYMOUS_CLIENT
        with self._cond:
            if self._closed:
                raise ApiError.unavailable(
                    "the job store is shutting down; retry against a "
                    "healthy replica")
            self._evict_expired_locked()
            backlog = [job for job in self._jobs.values() if not job.finished]
            if len(backlog) >= self.policy.max_queue:
                self._reject_locked("queue_full")
                raise ApiError.queue_full(
                    f"the job queue is full ({len(backlog)} unfinished jobs, "
                    f"limit {self.policy.max_queue}); retry after polling "
                    f"existing jobs to completion")
            inflight = sum(1 for job in backlog if job.client == client_key)
            if inflight >= self.policy.max_inflight_per_client:
                self._reject_locked("quota_exceeded")
                raise ApiError.quota_exceeded(
                    f"client {client_key!r} already has {inflight} jobs in "
                    f"flight (limit {self.policy.max_inflight_per_client})")
            job = Job(f"job-{self._next_id}", list(requests), client=client)
            self._next_id += 1
            self._jobs[job.job_id] = job
            self._evict_finished_locked()
            self._log_append({
                "type": "submit", "id": job.job_id, "client": job.client,
                "ts": job.submitted_at,
                "requests": [request.to_dict() for request in job.requests],
            }, sync=True)
            self._queue.append(job)
            if self.metrics is not None:
                self.metrics.record_job_submitted()
            self._cond.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        """Look up a job: the job, 410 ``expired`` for an evicted-but-real
        id, 404 ``not_found`` for an id that was never issued."""
        with self._cond:
            self._evict_expired_locked()
            job = self._jobs.get(job_id)
            next_id = self._next_id
        if job is not None:
            return job
        match = _JOB_ID.match(job_id)
        if match is not None and int(match.group(1)) < next_id:
            raise ApiError.expired(
                f"job {job_id!r} expired: it ran, but its results were "
                f"evicted (TTL/capacity); submit the work again if needed")
        raise ApiError.not_found(f"unknown job {job_id!r}")

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def close(self, *, wait: bool = True, timeout: float | None = None) -> bool:
        """Stop accepting jobs; the worker drains the queue, then exits.

        ``wait=True`` joins the worker — **bounded** by ``timeout`` seconds
        when given, so one hung decode cannot hang server shutdown (the
        per-item timeout already bounds each wait; the join timeout is the
        belt to that suspender).  Returns True when the worker actually
        exited.  The WAL is closed either way: with durability on, whatever
        the abandoned worker would still have written is recovered from
        re-enqueue on the next open instead.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        drained = True
        if wait:
            self._worker.join(timeout)
            drained = not self._worker.is_alive()
        if self._log is not None:
            self._log.close()
        return drained

    # ------------------------------------------------------------- reporting

    def snapshot(self) -> dict[str, Any]:
        """Operational counters for ``/metrics`` and ``/healthz``."""
        with self._lock:
            jobs = list(self._jobs.values())
            rejected = dict(sorted(self._rejected.items()))
            snapshot = {
                "enabled": True,
                "durable": self._log is not None,
                "jobs_submitted_total": self._next_id - 1,
                "retained": len(jobs),
                "evicted_total": self._evicted_total,
                "dead_letter_items_total": self._dead_letter_items,
                "resumed_jobs": self._resumed_jobs,
                "restored_items": self._restored_items,
                "rejected_total": sum(rejected.values()),
                "rejected_by_reason": rejected,
                "queue_capacity": self.policy.max_queue,
                "max_inflight_per_client": self.policy.max_inflight_per_client,
                "closed": self._closed,
            }
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0}
        for job in jobs:
            counts[job.status] += 1
        snapshot["queued"] = counts[QUEUED]
        snapshot["running"] = counts[RUNNING]
        snapshot["done"] = counts[DONE]
        snapshot["backlog"] = counts[QUEUED] + counts[RUNNING]
        if self._log is not None:
            snapshot["wal_dropped_appends"] = self._log.dropped_appends
            snapshot["wal_torn_records"] = self._log.torn_records
            snapshot["wal_orphaned_tmp_removed"] = self._log.orphaned_tmp_removed
        return snapshot

    # -------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Replay the WAL: restore finished jobs, re-enqueue unfinished ones.

        Idempotent by construction — items with a recorded envelope are
        restored, never re-run; items past the attempt limit are parked as
        ``dead_letter``; everything else goes back through the service,
        where the advice cache answers any decode that already completed.
        Ends with a compaction so the WAL holds current state only.
        """
        states: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        watermark = 1
        for record in self._log.replay():
            kind = record.get("type")
            job_id = record.get("id")
            if kind == "meta":
                watermark = max(watermark, int(record.get("next_id", 1)))
                continue
            if not isinstance(job_id, str):
                continue
            match = _JOB_ID.match(job_id)
            if match is None:
                continue
            watermark = max(watermark, int(match.group(1)) + 1)
            if kind == "submit":
                states[job_id] = {
                    "client": record.get("client"),
                    "ts": record.get("ts"),
                    "requests": record.get("requests", []),
                    "results": {}, "attempts": {}, "finished_at": None,
                }
                continue
            state = states.get(job_id)
            if state is None:
                continue  # records for a job whose submit was compacted away
            if kind == "item":
                state["results"][int(record["index"])] = record["envelope"]
            elif kind == "attempt":
                index = int(record["index"])
                state["attempts"][index] = state["attempts"].get(index, 0) + 1
            elif kind == "attempts":  # compaction summary form
                for index, count in record.get("counts", {}).items():
                    state["attempts"][int(index)] = int(count)
            elif kind == "status" and record.get("status") == DONE:
                state["finished_at"] = record.get("ts", time.time())
            elif kind == "evict":
                states.pop(job_id, None)
                self._evicted_total += 1
        self._next_id = watermark

        now = time.time()
        for job_id, state in states.items():
            job = self._restore_job(job_id, state)
            if job.finished:
                ttl = self.policy.ttl_seconds
                finished_at = job.finished_at or now
                if ttl is not None and now - finished_at > ttl:
                    self._evicted_total += 1
                    continue
                self._jobs[job_id] = job
            else:
                self._jobs[job_id] = job
                self._queue.append(job)
                self._resumed_jobs += 1
        self._evict_finished_locked()
        self._log.rewrite(self._compacted_records())

    def _restore_job(self, job_id: str, state: dict[str, Any]) -> Job:
        """One WAL job state back into a live :class:`Job`."""
        requests: list[AdviseRequest] = []
        broken: dict[int, dict[str, Any]] = {}
        for index, raw in enumerate(state["requests"]):
            try:
                requests.append(AdviseRequest.from_dict(raw))
            except Exception as exc:  # noqa: BLE001 — one item, one envelope
                requests.append(AdviseRequest(code="/* unreplayable */"))
                broken[index] = _error_envelope(ApiError.internal(
                    f"item could not be replayed from the job log: "
                    f"{type(exc).__name__}: {exc}"))
        job = Job(job_id, requests, client=state.get("client"),
                  submitted_at=state.get("ts"))
        for index in range(len(requests)):
            envelope = state["results"].get(index, broken.get(index))
            if envelope is not None:
                job._set_result(index, envelope)
                self._restored_items += 1
            job.attempts[index] = state["attempts"].get(index, 0)
        if job.finished and state.get("finished_at") is not None:
            job.finished_at = state["finished_at"]
        return job

    def _compacted_records(self) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = [{
            "type": "meta", "v": 1, "next_id": self._next_id,
        }]
        for job in self._jobs.values():
            body = job.to_dict()
            records.append({
                "type": "submit", "id": job.job_id, "client": job.client,
                "ts": job.submitted_at,
                "requests": [request.to_dict() for request in job.requests],
            })
            attempts = {str(i): n for i, n in enumerate(job.attempts) if n}
            if attempts:
                records.append({"type": "attempts", "id": job.job_id,
                                "counts": attempts})
            for item in body["results"]:
                envelope = {k: v for k, v in item.items() if k != "index"}
                records.append({"type": "item", "id": job.job_id,
                                "index": item["index"], "envelope": envelope})
            if body["status"] == DONE:
                records.append({"type": "status", "id": job.job_id,
                                "status": DONE,
                                "ts": job.finished_at or time.time()})
        return records

    # ------------------------------------------------------------- internals

    def _log_append(self, record: dict[str, Any], *, sync: bool = False) -> None:
        if self._log is not None:
            self._log.append(record, sync=sync)

    def _log_sync(self) -> None:
        if self._log is not None:
            self._log.sync()

    def _reject_locked(self, reason: str) -> None:
        self._rejected[reason] = self._rejected.get(reason, 0) + 1
        if self.metrics is not None:
            self.metrics.record_job_rejected(reason)

    def _evict_locked(self, job_id: str) -> None:
        del self._jobs[job_id]
        self._evicted_total += 1
        self._log_append({"type": "evict", "id": job_id})

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs once over capacity (never live ones)."""
        while len(self._jobs) > self.policy.max_jobs:
            victim = next((job_id for job_id, job in self._jobs.items()
                           if job.finished), None)
            if victim is None:
                return  # everything retained is queued/running; keep it all
            self._evict_locked(victim)

    def _evict_expired_locked(self) -> None:
        """TTL sweep: drop finished jobs whose retention window lapsed."""
        ttl = self.policy.ttl_seconds
        if ttl is None:
            return
        now = time.time()
        victims = [job_id for job_id, job in self._jobs.items()
                   if job.finished
                   and now - (job.finished_at or job.submitted_at) > ttl]
        for job_id in victims:
            self._evict_locked(job_id)

    def _worker_loop(self) -> None:
        """The supervised consumer: one crashed job must not wedge the tier.

        Any exception escaping :meth:`_run_job` — historically that silently
        killed the lone worker thread and froze every later job at
        ``"queued"`` — now fails the in-flight job's remaining items with
        ``internal`` envelopes and the loop keeps consuming.
        """
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                job = self._queue.pop(0)
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 — supervise, don't die
                self._fail_remaining(job, exc)

    def _fail_remaining(self, job: Job, exc: Exception) -> None:
        """Crash fallback: resolve every unset item so the job terminates."""
        envelope = _internal_envelope(exc)
        for index in range(len(job.requests)):
            try:
                self._finish_item(job, index, dict(envelope))
            except Exception:  # noqa: BLE001 — the supervisor must survive
                pass
        self._log_sync()

    def _run_job(self, job: Job) -> None:
        """Fan the job's items into the service and wait for all of them.

        Items are submitted asynchronously up front so the micro-batcher can
        coalesce them into model batches; each finishes into its own
        envelope.  A request that fails validation or model resolution *at
        run time* (e.g. its pinned revision was swapped away after submit)
        becomes an error envelope, not a job failure.  Already-resolved
        items (a resumed job's restored results) are skipped; items whose
        attempt count crossed the poison limit are parked as
        ``dead_letter``; every other item waits at most
        ``policy.item_timeout`` seconds before resolving to a ``timeout``
        envelope so one hung decode cannot wedge the queue behind it.
        """
        job._mark_running()
        self._log_append({"type": "status", "id": job.job_id,
                          "status": RUNNING, "ts": time.time()})
        pending = []
        for index, request in enumerate(job.requests):
            if job._has_result(index):
                continue  # restored from the WAL — never re-run
            job.attempts[index] += 1
            if job.attempts[index] > self.policy.max_attempts:
                self._finish_item(job, index, {
                    "status": DEAD_LETTER,
                    **ApiError.internal(
                        f"item {index} crashed the worker "
                        f"{job.attempts[index] - 1} times and is dead-lettered"
                    ).to_dict(),
                })
                continue
            self._log_append({"type": "attempt", "id": job.job_id,
                              "index": index})
            try:
                future = self.service.advise_request_async(request)
            except ApiError as exc:
                self._finish_item(job, index, _error_envelope(exc))
                continue
            except Exception as exc:  # noqa: BLE001 — one item, one envelope
                self._finish_item(job, index, _internal_envelope(exc))
                continue
            pending.append((index, future))
        self._log_sync()
        for index, future in pending:
            try:
                response = future.result(timeout=self.policy.item_timeout)
                if job.requests[index].verify is not None:
                    # Batch audits verify off the request path: the decode
                    # already resolved, so the simulation sweep here costs
                    # only this job's wall-clock, never a live request's.
                    response = self.service.apply_verification(
                        job.requests[index], response)
                envelope = {"status": "ok", "response": response.to_dict()}
            except FutureTimeoutError:
                envelope = _error_envelope(ApiError.timeout(
                    f"item {index} did not decode within "
                    f"{self.policy.item_timeout:g}s"))
            except ApiError as exc:
                envelope = _error_envelope(exc)
            except Exception as exc:  # noqa: BLE001 — one item, one envelope
                envelope = _internal_envelope(exc)
            self._finish_item(job, index, envelope)
        self._log_sync()

    def _finish_item(self, job: Job, index: int,
                     envelope: dict[str, Any]) -> None:
        """Record one item envelope (first write wins) and log it."""
        if not job._set_result(index, envelope):
            return  # a late decode lost the race against its timeout envelope
        if envelope.get("status") == DEAD_LETTER:
            with self._lock:
                self._dead_letter_items += 1
            if self.metrics is not None:
                self.metrics.record_job_dead_letter()
        self._log_append({"type": "item", "id": job.job_id, "index": index,
                          "envelope": envelope})
        if job.finished:
            self._log_append({"type": "status", "id": job.job_id,
                              "status": DONE, "ts": job.finished_at},
                             sync=True)
