"""Async batch jobs: submit a list of advise requests, poll for results.

``POST /v1/advise/batch`` is the offline/bulk counterpart of the interactive
``/v1/advise`` route: a client submits up to
:data:`repro.api.MAX_BATCH_ITEMS` requests at once, gets a job id back
immediately, and polls ``GET /v1/jobs/{id}`` until the job reports
``"done"``.  The :class:`JobStore` behind it is deliberately small:

* **one bounded worker thread** runs jobs in submission order.  Each job's
  items are fanned out through
  :meth:`repro.serving.InferenceService.advise_request_async`, so bulk items
  ride the *same* micro-batcher, cache and model registry as interactive
  traffic — a bulk job against ``model="canary"`` exercises exactly the code
  path a canary client would, and its items coalesce into model batches
  instead of decoding one by one;
* **per-item envelopes**: every item independently resolves to
  ``{"status": "ok", "response": ...}`` or ``{"status": "error", "error":
  ...}`` reusing the :class:`repro.api.ApiError` wire envelope — one item
  naming an unloaded model does not poison its siblings;
* **bounded retention**: finished jobs are kept for polling but the store
  holds at most ``max_jobs``; the oldest *finished* jobs are evicted first,
  and queued/running jobs are never evicted.

Job ids are sequential (``job-1``, ``job-2``, ...) — deterministic for the
golden contract tests and trivially greppable in logs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..api import AdviseRequest, ApiError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from .service import InferenceService

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE = "queued", "running", "done"


class Job:
    """One submitted batch: its requests, per-item envelopes and status."""

    def __init__(self, job_id: str, requests: list[AdviseRequest]) -> None:
        self.job_id = job_id
        self.requests = requests
        self._lock = threading.Lock()
        self._status = QUEUED
        self._results: list[dict[str, Any] | None] = [None] * len(requests)
        self._completed = 0
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self._done = threading.Event()

    # ------------------------------------------------------------- lifecycle

    def _mark_running(self) -> None:
        with self._lock:
            self._status = RUNNING

    def _set_result(self, index: int, envelope: dict[str, Any]) -> None:
        with self._lock:
            if self._results[index] is None:
                self._completed += 1
            self._results[index] = envelope
            if self._completed == len(self._results):
                self._status = DONE
                self.finished_at = time.time()
                self._done.set()

    # ------------------------------------------------------------- reporting

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is done (True) or ``timeout`` expires."""
        return self._done.wait(timeout)

    def to_dict(self) -> dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body.

        ``results`` holds one envelope per *completed* item, each tagged with
        its submission ``index`` — a poll mid-run sees the finished prefix of
        the workload, a poll after ``"done"`` sees everything, and the key
        set is identical in both cases.
        """
        with self._lock:
            results = [dict(envelope, index=index)
                       for index, envelope in enumerate(self._results)
                       if envelope is not None]
            return {
                "api_version": "v1",
                "job_id": self.job_id,
                "status": self._status,
                "total": len(self._results),
                "completed": self._completed,
                "results": results,
            }


class JobStore:
    """Bounded job queue + single worker over an :class:`InferenceService`.

    ``max_jobs`` bounds retained jobs (finished ones are evicted oldest
    first); the worker exits when :meth:`close` is called, finishing the job
    it is on.
    """

    def __init__(self, service: "InferenceService", *,
                 max_jobs: int = 64) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        self.service = service
        self.max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._queue: list[Job] = []
        self._next_id = 1
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="batch-jobs", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------- api

    def submit(self, requests: list[AdviseRequest]) -> Job:
        """Queue one batch of already-validated requests; returns its job."""
        if not requests:
            raise ApiError.invalid_request(
                '"items" must be a non-empty list of advise requests',
                field="items")
        with self._cond:
            if self._closed:
                raise ApiError.internal("the job store is shutting down")
            job = Job(f"job-{self._next_id}", list(requests))
            self._next_id += 1
            self._jobs[job.job_id] = job
            self._evict_finished_locked()
            self._queue.append(job)
            self._cond.notify_all()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError.not_found(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs; the worker drains the queue, then exits."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            self._worker.join()

    # ------------------------------------------------------------- internals

    def _evict_finished_locked(self) -> None:
        """Drop the oldest finished jobs once over capacity (never live ones)."""
        while len(self._jobs) > self.max_jobs:
            victim = next((job_id for job_id, job in self._jobs.items()
                           if job.finished), None)
            if victim is None:
                return  # everything retained is queued/running; keep it all
            del self._jobs[victim]

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                job = self._queue.pop(0)
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        """Fan the job's items into the service and wait for all of them.

        Items are submitted asynchronously up front so the micro-batcher can
        coalesce them into model batches; each finishes into its own
        envelope.  A request that fails validation or model resolution *at
        run time* (e.g. its pinned revision was swapped away after submit)
        becomes an error envelope, not a job failure.
        """
        job._mark_running()
        pending = []
        for index, request in enumerate(job.requests):
            try:
                future = self.service.advise_request_async(request)
            except ApiError as exc:
                job._set_result(index, {"status": "error",
                                        **exc.to_dict()})
                continue
            except Exception as exc:  # noqa: BLE001 — one item, one envelope
                job._set_result(index, {
                    "status": "error",
                    **ApiError.internal(f"{type(exc).__name__}: {exc}").to_dict(),
                })
                continue
            pending.append((index, future))
        for index, future in pending:
            try:
                response = future.result()
                job._set_result(index, {"status": "ok",
                                        "response": response.to_dict()})
            except ApiError as exc:
                job._set_result(index, {"status": "error", **exc.to_dict()})
            except Exception as exc:  # noqa: BLE001 — one item, one envelope
                job._set_result(index, {
                    "status": "error",
                    **ApiError.internal(f"{type(exc).__name__}: {exc}").to_dict(),
                })
