"""Request-level serving metrics: counters, batch-size histogram, latency quantiles.

Every number here answers a capacity question the ROADMAP's
"heavy traffic" north star raises: *is the micro-batcher actually batching*
(batch-size histogram), *is the cache earning its memory* (hit counters feed
:meth:`ServingMetrics.snapshot` alongside the cache's own stats), and *what
latency are callers seeing* (p50/p95 over a bounded window).

Latencies are kept in a fixed-size ring buffer, so the memory footprint is
constant no matter how long the server runs; quantiles are therefore over the
most recent ``window`` requests, which is what an operator dashboards anyway.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Any


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServingMetrics:
    """Thread-safe accumulator shared by the service facade and its workers."""

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._latencies_ms: deque[float] = deque(maxlen=window)
        #: Model-side decode latency per request (the wall time of the batched
        #: decode the request rode in) — isolates decoder speed from queueing,
        #: cache lookups and anchoring, so fast-path wins are observable at
        #: ``/metrics`` even when end-to-end latency is queue-dominated.
        self._decode_ms: deque[float] = deque(maxlen=window)
        self._batch_sizes: Counter[int] = Counter()
        #: Per generation-config batch-size histograms, keyed by the config
        #: label the batcher grouped on (e.g. ``"greedy"``, ``"beam4:lp0.6"``).
        self._batch_sizes_by_config: dict[str, Counter[int]] = {}
        #: Per-model request counters keyed on ``name@revision`` — the
        #: registry-era view of where traffic lands, bounded by the same
        #: label-cardinality cap as the per-config histograms.
        self._requests_by_model: Counter[str] = Counter()
        #: Per-reason batch-job rejections (``queue_full`` /
        #: ``quota_exceeded``) — the backpressure signal an operator alarms
        #: on before clients start seeing sustained 429s.
        self._jobs_rejected: Counter[str] = Counter()
        #: Verification latency per verified request (simulate-and-rerank
        #: wall time, on top of the decode) — its own window because verify
        #: cost is simulation-bound, not model-bound.
        self._verify_ms: deque[float] = deque(maxlen=window)
        #: Per-verdict verification counters (``verified`` / ``failed`` /
        #: ``skipped``), capped like the per-config histograms so a buggy
        #: caller cannot grow label cardinality.
        self._verify_by_verdict: Counter[str] = Counter()
        #: Continuous-batching scheduler gauges: per-iteration batch
        #: occupancy (rows live during the step) and per-request admission
        #: wait (submit → join).  Occupancy says whether iteration-level
        #: scheduling is actually filling the batch; queue wait is the
        #: continuous analogue of the micro-batcher's ``max_wait_ms`` bound.
        self._sched_occupancy: deque[int] = deque(maxlen=window)
        self._sched_wait_ms: deque[float] = deque(maxlen=window)
        self.requests_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches_total = 0
        self.errors_total = 0
        self.streams_total = 0
        self.jobs_submitted_total = 0
        self.jobs_dead_letter_total = 0
        self.verify_total = 0
        self.sched_steps_total = 0
        self.sched_joins_total = 0
        self.sched_retires_total = 0
        self.sched_starvation_total = 0

    # ------------------------------------------------------------- recording

    def record_request(self, latency_ms: float, *, cached: bool,
                       model: str | None = None) -> None:
        """Record one completed request and its end-to-end latency.

        ``model`` is the resolved ``name@revision`` identity that served the
        request; label cardinality is capped like the per-config histograms
        (model *names* are operator-controlled, but a spec could in theory
        churn revisions — the cap keeps /metrics bounded regardless).
        """
        with self._lock:
            self.requests_total += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies_ms.append(latency_ms)
            if model is not None:
                label = model
                if (label not in self._requests_by_model
                        and len(self._requests_by_model) >= self.MAX_CONFIG_LABELS):
                    label = "other"
                self._requests_by_model[label] += 1


    #: Cardinality bound for the per-config histograms: the label embeds the
    #: client-controlled length penalty, so without a cap a client sweeping
    #: penalties would grow server memory (and /metrics payloads) forever.
    MAX_CONFIG_LABELS = 32

    def record_batch(self, size: int, group: object = None) -> None:
        """Record one model-side batch flush of ``size`` requests.

        ``group`` is the batcher's generation-config label for the flush;
        ``None`` keeps only the aggregate histogram (pre-beam behaviour).
        Once :attr:`MAX_CONFIG_LABELS` distinct labels exist, further labels
        are lumped under ``"other"``.
        """
        with self._lock:
            self.batches_total += 1
            self._batch_sizes[size] += 1
            if group is not None:
                label = str(group)
                if (label not in self._batch_sizes_by_config
                        and len(self._batch_sizes_by_config) >= self.MAX_CONFIG_LABELS):
                    label = "other"
                self._batch_sizes_by_config.setdefault(label, Counter())[size] += 1

    def record_decode(self, latency_ms: float, *, requests: int = 1) -> None:
        """Record the model-side decode latency of one batch flush.

        ``requests`` is the number of requests the flush served; each gets
        one sample (every rider waited for the whole batched decode), so the
        quantiles are per-request like the end-to-end ones.
        """
        with self._lock:
            for _ in range(max(1, requests)):
                self._decode_ms.append(latency_ms)

    def record_stream(self) -> None:
        """Record one completed streaming request (also counted as a request
        via :meth:`record_request` — this tracks the streaming share)."""
        with self._lock:
            self.streams_total += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def record_job_submitted(self) -> None:
        """Record one accepted batch-job submission."""
        with self._lock:
            self.jobs_submitted_total += 1

    def record_job_rejected(self, reason: str) -> None:
        """Record one backpressure rejection (``queue_full`` etc.)."""
        with self._lock:
            self._jobs_rejected[reason] += 1

    def record_job_dead_letter(self) -> None:
        """Record one item parked in the ``dead_letter`` terminal state."""
        with self._lock:
            self.jobs_dead_letter_total += 1

    def record_sched_step(self, occupancy: int, *, joins: int = 0,
                          retires: int = 0) -> None:
        """Record one continuous-batching iteration.

        ``occupancy`` is the number of rows live during the decode step;
        ``joins``/``retires`` count the requests that entered / left the
        in-flight batch in the scheduling pass right before it.
        """
        with self._lock:
            self.sched_steps_total += 1
            self.sched_joins_total += joins
            self.sched_retires_total += retires
            self._sched_occupancy.append(occupancy)

    def record_sched_wait(self, wait_ms: float) -> None:
        """Record one request's admission wait (submit → batch join)."""
        with self._lock:
            self._sched_wait_ms.append(wait_ms)

    def record_sched_starvation(self) -> None:
        """Record one anti-starvation engagement: the queue head could not
        fit and has waited long enough that smaller requests stop jumping
        ahead of it."""
        with self._lock:
            self.sched_starvation_total += 1

    def record_verify(self, latency_ms: float, verdict: str) -> None:
        """Record one verification pass and its response-level verdict.

        ``verdict`` is the report status (``verified``/``failed``/
        ``skipped``); labels beyond :attr:`MAX_CONFIG_LABELS` lump under
        ``"other"`` like every other client-influenced label family.
        """
        with self._lock:
            self.verify_total += 1
            self._verify_ms.append(latency_ms)
            label = verdict
            if (label not in self._verify_by_verdict
                    and len(self._verify_by_verdict) >= self.MAX_CONFIG_LABELS):
                label = "other"
            self._verify_by_verdict[label] += 1

    # ------------------------------------------------------------- reporting

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time dict of every metric (JSON-serialisable)."""
        with self._lock:
            latencies = list(self._latencies_ms)
            decode_latencies = list(self._decode_ms)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            by_config = {label: dict(sorted(counts.items()))
                         for label, counts in sorted(self._batch_sizes_by_config.items())}
            by_model = dict(sorted(self._requests_by_model.items()))
            requests = self.requests_total
            hits = self.cache_hits
            misses = self.cache_misses
            batches = self.batches_total
            errors = self.errors_total
            streams = self.streams_total
            jobs_submitted = self.jobs_submitted_total
            jobs_dead_letter = self.jobs_dead_letter_total
            jobs_rejected = dict(sorted(self._jobs_rejected.items()))
            verify_total = self.verify_total
            verify_latencies = list(self._verify_ms)
            verify_by_verdict = dict(sorted(self._verify_by_verdict.items()))
            sched_steps = self.sched_steps_total
            sched_joins = self.sched_joins_total
            sched_retires = self.sched_retires_total
            sched_starvation = self.sched_starvation_total
            sched_occupancy = list(self._sched_occupancy)
            sched_waits = list(self._sched_wait_ms)
        batched_requests = sum(size * count for size, count in batch_sizes.items())
        batches_by_config = {
            label: {
                "batches": sum(counts.values()),
                "requests": sum(size * count for size, count in counts.items()),
                "batch_size_histogram": counts,
            }
            for label, counts in by_config.items()
        }
        return {
            "requests_total": requests,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / requests if requests else 0.0,
            "errors_total": errors,
            "streams_total": streams,
            "jobs_submitted_total": jobs_submitted,
            "jobs_rejected_total": sum(jobs_rejected.values()),
            "jobs_rejected_by_reason": jobs_rejected,
            "jobs_dead_letter_total": jobs_dead_letter,
            "batches_total": batches,
            "batch_size_histogram": batch_sizes,
            "batches_by_config": batches_by_config,
            "requests_by_model": by_model,
            "mean_batch_size": batched_requests / batches if batches else 0.0,
            "latency_ms_p50": percentile(latencies, 0.50),
            "latency_ms_p95": percentile(latencies, 0.95),
            "latency_ms_max": max(latencies) if latencies else 0.0,
            "latency_window": len(latencies),
            "decode_latency_ms_p50": percentile(decode_latencies, 0.50),
            "decode_latency_ms_p95": percentile(decode_latencies, 0.95),
            "decode_latency_window": len(decode_latencies),
            "verify_total": verify_total,
            "verify_by_verdict": verify_by_verdict,
            "verify_latency_ms_p50": percentile(verify_latencies, 0.50),
            "verify_latency_ms_p95": percentile(verify_latencies, 0.95),
            "verify_latency_window": len(verify_latencies),
            "sched_steps_total": sched_steps,
            "sched_joins_total": sched_joins,
            "sched_retires_total": sched_retires,
            "sched_starvation_total": sched_starvation,
            "sched_occupancy_mean": (sum(sched_occupancy) / len(sched_occupancy)
                                     if sched_occupancy else 0.0),
            "sched_occupancy_max": max(sched_occupancy, default=0),
            "sched_queue_wait_ms_p50": percentile(sched_waits, 0.50),
            "sched_queue_wait_ms_p95": percentile(sched_waits, 0.95),
            "sched_queue_wait_window": len(sched_waits),
        }


class RouterMetrics:
    """Thread-safe counters for the pool router (:mod:`repro.serving.router`).

    Where :class:`ServingMetrics` answers "is the model layer keeping up",
    these answer the fleet-health questions the router's self-healing story
    hangs on: *are retries absorbing worker failures* (``retries_total`` vs
    ``exhausted_total`` — the first should move under chaos, the second
    should stay at zero), *which workers are taking traffic*
    (``forwards_by_worker``), and *how often is the breaker saving us from a
    dead endpoint* (``breaker_trips_total``, ``breaker_skips_total``).
    """

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._latencies_ms: deque[float] = deque(maxlen=window)
        self._forwards_by_worker: Counter[str] = Counter()
        self._failures_by_worker: Counter[str] = Counter()
        self.requests_total = 0
        #: Requests answered by a worker other than their first-choice ring
        #: replica — the failover count the chaos differential watches.
        self.failovers_total = 0
        self.retries_total = 0
        #: Requests that ran out of candidates/attempts and answered 502/503
        #: from the router itself.  Non-zero under single-worker loss means
        #: the retry budget is misconfigured.
        self.exhausted_total = 0
        self.breaker_trips_total = 0
        #: Dispatch decisions that skipped a worker because its breaker was
        #: open — each one is a connect timeout the router did not pay.
        self.breaker_skips_total = 0
        self.probe_failures_total = 0

    # ------------------------------------------------------------- recording

    def record_forward(self, worker: str, latency_ms: float, *,
                       attempt: int) -> None:
        """One request successfully answered by ``worker`` on ``attempt``
        (0-based; a non-zero attempt is a failover)."""
        with self._lock:
            self.requests_total += 1
            self._forwards_by_worker[worker] += 1
            self._latencies_ms.append(latency_ms)
            if attempt > 0:
                self.failovers_total += 1

    def record_retry(self, worker: str) -> None:
        """One failed attempt against ``worker`` that the router will retry
        (or has no candidates left for — see :meth:`record_exhausted`)."""
        with self._lock:
            self.retries_total += 1
            self._failures_by_worker[worker] += 1

    def record_exhausted(self) -> None:
        with self._lock:
            self.requests_total += 1
            self.exhausted_total += 1

    def record_breaker_trip(self) -> None:
        with self._lock:
            self.breaker_trips_total += 1

    def record_breaker_skip(self) -> None:
        with self._lock:
            self.breaker_skips_total += 1

    def record_probe_failure(self) -> None:
        with self._lock:
            self.probe_failures_total += 1

    # ------------------------------------------------------------- reporting

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time dict of every router metric (JSON-serialisable)."""
        with self._lock:
            latencies = list(self._latencies_ms)
            return {
                "requests_total": self.requests_total,
                "failovers_total": self.failovers_total,
                "retries_total": self.retries_total,
                "exhausted_total": self.exhausted_total,
                "breaker_trips_total": self.breaker_trips_total,
                "breaker_skips_total": self.breaker_skips_total,
                "probe_failures_total": self.probe_failures_total,
                "forwards_by_worker": dict(sorted(
                    self._forwards_by_worker.items())),
                "failures_by_worker": dict(sorted(
                    self._failures_by_worker.items())),
                "latency_ms_p50": percentile(latencies, 0.50),
                "latency_ms_p95": percentile(latencies, 0.95),
                "latency_window": len(latencies),
            }
