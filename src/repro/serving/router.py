"""Self-healing HTTP router in front of a :class:`~repro.serving.pool.WorkerPool`.

The router speaks the exact ``server.py`` wire contract — clients point at
one address and cannot tell whether a single server or a fleet answers — and
adds the fleet semantics a single process cannot offer:

* **consistent-hash dispatch on the canonical cache key** — every advise
  request is keyed with the same :func:`repro.serving.cache.canonical_cache_key`
  the workers cache under (structure + identifiers + strategy + model), so
  byte-different but canonically-equal resubmissions land on the same
  worker and its per-process LRU behaves like one sharded fleet-wide cache;
* **health checking** — an active ``/healthz`` probe loop per worker plus
  passive failure accounting on the request path; unhealthy workers drop
  out of dispatch and return when a probe succeeds;
* **retry with jittered backoff** — idempotent requests (advise, legacy
  advise, streams before the first forwarded byte, GETs) that hit a dead or
  draining worker fail over to the next replica on the ring, up to a
  bounded attempt budget with jittered exponential backoff between tries;
* **circuit breaking** — K consecutive failures open a worker's breaker;
  dispatch then skips it without paying connect timeouts until a cooldown
  elapses and a half-open probe succeeds;
* **graceful drain** (``POST /admin/workers/{id}/drain``) — the router
  stops routing to the worker, tells it to drain, polls its pending work
  down to zero, then bounces it through the supervisor;
* **rolling alias swaps** (``POST /v1/models/{name}/swap``) — the swap is
  applied worker-by-worker; each worker's own swap loads the target before
  flipping and drains in-flight leases, so the fleet converges with zero
  dropped requests.

Batch jobs need one extra affordance: job state lives in exactly one
worker's WAL, so the router namespaces job ids (``job-3`` on worker ``w1``
is surfaced as ``w1-job-3``) and pins polls to the owning worker.  Submits
are routed to the least-loaded worker and retried only on *connect-phase*
failures — after the request is on the wire the worker may already have
fsynced the job, and a blind resubmit would double-enqueue it.

``--smoke-chaos`` is the CI fault-injection drill: boot a 3-worker pool
over a demo checkpoint, drive concurrent mixed traffic, SIGKILL one worker
mid-load, and assert **zero failed requests** and a pool back at full
strength, then perform a rolling swap under the same load with zero drops.

Run it::

    PYTHONPATH=src python -m repro.serving.router --replicas 3 \
        --checkpoint ckpt/ --pool-root /var/lib/mpirical-pool --port 8080
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import re
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Sequence

from ..api import ApiError
from .metrics import RouterMetrics
from .pool import WorkerPool, server_worker_command
from .server import MAX_BODY_BYTES

__all__ = ["HashRing", "CircuitBreaker", "WorkerClient", "RouterPolicy",
           "Router", "RouterRequestHandler", "make_router", "main"]

#: Router-prefixed job ids: ``w<worker index>-<worker-local job id>``.
_POOL_JOB_ID = re.compile(r"^(w\d+)-(job-.+)$")


class ConnectFailure(OSError):
    """Connect-phase failure: the request never reached the worker.

    The distinction matters for non-idempotent routes — a connect failure is
    always safe to retry elsewhere, a failure after the bytes were sent is
    not (the worker may have durably accepted the work before dying).
    """


# --------------------------------------------------------------------------
# consistent hashing


class HashRing:
    """Consistent-hash ring with virtual nodes over stable worker ids.

    ``order(key)`` returns *every* worker, nearest first — the dispatch
    plan.  The first entry is the key's home shard; the rest are the
    failover order, which stays stable across calls so retries always walk
    the same sequence.  Virtual nodes (``replicas`` points per worker)
    smooth the shard sizes; with one point per worker a two-worker ring can
    degenerate to a 90/10 split.
    """

    def __init__(self, worker_ids: Sequence[str], *, replicas: int = 64) -> None:
        if not worker_ids:
            raise ValueError("hash ring needs at least one worker")
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError(f"duplicate worker ids: {list(worker_ids)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.worker_ids = list(worker_ids)
        self._points = sorted(
            (self._hash(f"{worker_id}#{index}"), worker_id)
            for worker_id in worker_ids for index in range(replicas))
        self._hashes = [point for point, _ in self._points]

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")

    def order(self, key: str) -> list[str]:
        """All workers, ring-clockwise from ``key``'s position (distinct)."""
        start = bisect_right(self._hashes, self._hash(key))
        total = len(self._points)
        seen: set[str] = set()
        plan: list[str] = []
        for step in range(total):
            worker_id = self._points[(start + step) % total][1]
            if worker_id not in seen:
                seen.add(worker_id)
                plan.append(worker_id)
                if len(plan) == len(self.worker_ids):
                    break
        return plan


# --------------------------------------------------------------------------
# circuit breaker


class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures → half-open.

    While open, :meth:`allow` answers False (dispatch skips the worker
    without paying a connect timeout).  After ``cooldown`` seconds exactly
    one caller is admitted as the half-open probe; its success closes the
    breaker, its failure re-opens it for another cooldown.
    """

    def __init__(self, *, threshold: int = 3, cooldown: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._open_until: float | None = None
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._open_until is None:
                return "closed"
            return "half_open" if self._clock() >= self._open_until else "open"

    def allow(self) -> bool:
        with self._lock:
            if self._open_until is None:
                return True
            if self._clock() < self._open_until:
                return False
            # Half-open: exactly one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._open_until = None
            self._probe_inflight = False

    def record_failure(self) -> bool:
        """Count one failure; True when this failure *newly* tripped it."""
        with self._lock:
            self._failures += 1
            self._probe_inflight = False
            newly = self._open_until is None and self._failures >= self.threshold
            if newly or (self._open_until is not None
                         and self._clock() >= self._open_until):
                self._open_until = self._clock() + self.cooldown
            return newly

    def force_open(self, seconds: float) -> None:
        """Open without counting — honours a worker's ``Retry-After`` hint."""
        with self._lock:
            self._open_until = max(self._open_until or 0.0,
                                   self._clock() + seconds)
            self._probe_inflight = False


# --------------------------------------------------------------------------
# policy and per-worker client state


@dataclass(frozen=True)
class RouterPolicy:
    """Every routing/retry/health knob in one place."""

    #: Total forward attempts per request (first try included).
    max_attempts: int = 3
    connect_timeout: float = 1.0
    read_timeout: float = 120.0
    #: Jittered exponential backoff between attempts, seconds.
    backoff_base: float = 0.05
    backoff_max: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown: float = 2.0
    #: Longest a worker ``Retry-After`` hint may force the breaker open.
    retry_after_cap: float = 5.0
    #: Active /healthz probe cadence; <= 0 disables the probe loop.
    health_interval: float = 0.25
    health_timeout: float = 2.0
    ring_replicas: int = 64
    #: Drain coordinator: how long to wait for a worker's pending work.
    drain_timeout: float = 30.0
    #: Rolling swap: how long to wait for an unreachable worker per step.
    swap_worker_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.connect_timeout <= 0 or self.read_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ValueError("backoff must satisfy 0 < base <= max")


class WorkerClient:
    """The router's view of one worker: address, health, breaker, load."""

    def __init__(self, worker_id: str, host: str, port: int, *,
                 policy: RouterPolicy) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.breaker = CircuitBreaker(threshold=policy.breaker_threshold,
                                      cooldown=policy.breaker_cooldown)
        #: Starts False — a worker is routable-preferred only once a probe
        #: (or a passively observed success) proves it up.  Dispatch still
        #: falls back to unproven workers when no healthy candidate exists,
        #: so a cold pool serves as soon as any worker boots.
        self.healthy = False
        #: Set by the drain coordinator; a draining worker takes no new work.
        self.draining = False
        self.last_error: str | None = None
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def routable(self) -> bool:
        return self.healthy and not self.draining

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def begin(self) -> None:
        with self._lock:
            self._inflight += 1

    def end(self) -> None:
        with self._lock:
            self._inflight -= 1

    def info(self) -> dict[str, Any]:
        return {
            "id": self.worker_id,
            "endpoint": self.endpoint,
            "healthy": self.healthy,
            "draining": self.draining,
            "breaker": self.breaker.state,
            "inflight": self.inflight,
            "last_error": self.last_error,
        }


class _Outcome:
    """One forward attempt's result, as dispatch classifies it."""

    def __init__(self, kind: str, *, status: int = 0,
                 headers: dict[str, str] | None = None,
                 body: bytes = b"", retry_after: float | None = None) -> None:
        self.kind = kind  # "response" | "retryable" | "streamed" | "stream_broken"
        self.status = status
        self.headers = headers or {}
        self.body = body
        self.retry_after = retry_after


class _StreamRelay:
    """Adapter the handler passes into dispatch for ``/v1/advise/stream``.

    Tracks whether the 200 status line has been forwarded: before that,
    an upstream failure is retryable; after, the response is committed and
    the relay can only end the (truncated) stream.
    """

    def __init__(self, handler: "RouterRequestHandler") -> None:
        self._handler = handler
        self.started = False

    def start(self, content_type: str) -> None:
        self._handler.send_response(200)
        self._handler.send_header("Content-Type", content_type)
        self._handler.send_header("Cache-Control", "no-cache")
        self._handler.end_headers()
        self.started = True

    def write(self, chunk: bytes) -> None:
        self._handler.wfile.write(chunk)
        self._handler.wfile.flush()


# --------------------------------------------------------------------------
# the router


class Router:
    """Dispatch, health, retries, drain and rolling swaps over the fleet.

    Built either over a live :class:`WorkerPool` (the supervisor integration
    enables drain-then-bounce and pool state in ``/healthz``) or over bare
    ``(worker_id, host, port)`` endpoints (the unit tests' stub workers).
    """

    def __init__(self, *, pool: WorkerPool | None = None,
                 endpoints: Sequence[tuple[str, str, int]] | None = None,
                 policy: RouterPolicy | None = None,
                 metrics: RouterMetrics | None = None,
                 seed: int | None = None) -> None:
        if (pool is None) == (endpoints is None):
            raise ValueError("pass exactly one of pool= or endpoints=")
        self.pool = pool
        self.policy = policy or RouterPolicy()
        self.metrics = metrics or RouterMetrics()
        if pool is not None:
            endpoints = [(spec.worker_id, spec.host, spec.port)
                         for spec in pool.specs()]
        self._clients = [WorkerClient(worker_id, host, port, policy=self.policy)
                         for worker_id, host, port in endpoints]
        self._by_id = {client.worker_id: client for client in self._clients}
        self._ring = HashRing([client.worker_id for client in self._clients],
                              replicas=self.policy.ring_replicas)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._rr = 0
        self._rr_lock = threading.Lock()
        #: Affinity keys are derived by parsing the request body (the same
        #: canonicalisation the workers' cache does); memoise per raw body
        #: so an IDE hammering one buffer pays the parse once.
        self._key_cache: OrderedDict[str, str] = OrderedDict()
        self._key_lock = threading.Lock()
        self._stop = threading.Event()
        self._prober: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Router":
        if self.policy.health_interval > 0 and self._prober is None:
            self._prober = threading.Thread(target=self._health_loop,
                                            name="router-health", daemon=True)
            self._prober.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(5.0)
            self._prober = None

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ inspection

    def client(self, worker_id: str) -> WorkerClient:
        client = self._by_id.get(worker_id)
        if client is None:
            raise ApiError.not_found(f"unknown worker {worker_id!r}")
        return client

    def clients(self) -> list[WorkerClient]:
        return list(self._clients)

    def health(self) -> tuple[int, dict[str, Any]]:
        """The router's own ``/healthz``: per-worker detail + pool state.

        ``status`` is ``"ok"`` only at full strength (every worker routable
        and, when supervised, every process alive) — the signal the chaos
        drill polls for recovery.  HTTP status stays 200 while *any* worker
        can take traffic; 503 means the router itself cannot serve.
        """
        workers = [client.info() for client in self._clients]
        pool_state = self.pool.snapshot() if self.pool is not None else None
        full_strength = all(worker["healthy"] and not worker["draining"]
                            for worker in workers)
        if pool_state is not None:
            full_strength = (full_strength
                             and pool_state["alive"] == pool_state["size"])
        any_routable = any(client.routable for client in self._clients)
        body = {
            "status": "ok" if full_strength else "degraded",
            "workers": workers,
            "pool": pool_state,
        }
        return (200 if any_routable else 503), body

    def metrics_body(self) -> dict[str, Any]:
        verify, sched = self._aggregate_worker_metrics()
        return {
            "router": self.metrics.snapshot(),
            "workers": [client.info() for client in self._clients],
            "pool": self.pool.snapshot() if self.pool is not None else None,
            "verify": verify,
            "sched": sched,
        }

    def _aggregate_worker_metrics(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """Pool-wide verification and continuous-batching counters, summed
        across live workers (one ``/metrics`` fetch per worker feeds both).

        Best-effort by design: a worker that cannot answer ``/metrics``
        inside the health timeout is counted in ``workers_unreachable``
        rather than failing the router's own metrics route.
        """
        verify_total = 0
        by_verdict: dict[str, int] = {}
        sched_totals = {"sched_steps_total": 0, "sched_joins_total": 0,
                        "sched_retires_total": 0, "sched_starvation_total": 0}
        occupancy_weight = 0.0
        occupancy_steps = 0
        reached = unreachable = 0
        for client in self._clients:
            try:
                outcome = self._request(
                    client, "GET", "/metrics", None,
                    connect_timeout=self.policy.health_timeout,
                    read_timeout=self.policy.health_timeout)
                if outcome.status != 200:
                    raise OSError(f"HTTP {outcome.status}")
                snapshot = json.loads(outcome.body)
            except Exception:  # noqa: BLE001 — degraded workers stay countable
                unreachable += 1
                continue
            reached += 1
            verify_total += int(snapshot.get("verify_total", 0))
            for verdict, count in (snapshot.get("verify_by_verdict")
                                   or {}).items():
                by_verdict[verdict] = by_verdict.get(verdict, 0) + int(count)
            for key in sched_totals:
                sched_totals[key] += int(snapshot.get(key, 0))
            # Pool occupancy is the step-weighted mean of each worker's
            # windowed mean — workers that stepped more count for more.
            steps = int(snapshot.get("sched_steps_total", 0))
            occupancy_weight += (float(snapshot.get("sched_occupancy_mean",
                                                    0.0)) * steps)
            occupancy_steps += steps
        verify = {
            "verify_total": verify_total,
            "verify_by_verdict": by_verdict,
            "workers_reporting": reached,
            "workers_unreachable": unreachable,
        }
        sched = dict(sched_totals)
        sched["sched_occupancy_mean"] = (occupancy_weight / occupancy_steps
                                         if occupancy_steps else 0.0)
        sched["workers_reporting"] = reached
        sched["workers_unreachable"] = unreachable
        return verify, sched

    # ---------------------------------------------------------- dispatch core

    def affinity_key(self, raw_body: bytes) -> str:
        """The consistent-hash key for one advise body.

        Mirrors the workers' cache key (canonical xSBT + tokens + strategy +
        model), so requests that would share a worker-side cache entry land
        on the same worker.  Any parse/validation failure falls back to a
        digest of the raw bytes — the worker will reject the request with a
        proper envelope; the router only needs *a* stable shard for it.
        """
        digest = hashlib.sha256(raw_body).hexdigest()
        with self._key_lock:
            cached = self._key_cache.get(digest)
            if cached is not None:
                self._key_cache.move_to_end(digest)
                return cached
        try:
            key = self._derive_affinity_key(raw_body)
        except Exception:  # noqa: BLE001 — invalid bodies still need a shard
            key = digest
        with self._key_lock:
            self._key_cache[digest] = key
            while len(self._key_cache) > 256:
                self._key_cache.popitem(last=False)
        return key

    @staticmethod
    def _derive_affinity_key(raw_body: bytes) -> str:
        from ..model.decoding import strategy_from_dict
        from .cache import canonical_cache_key

        payload = json.loads(raw_body)
        code = payload["code"]
        if not isinstance(code, str):
            raise TypeError("code must be a string")
        model = payload.get("model")
        if not isinstance(model, str):
            model = None
        if "strategy" in payload:  # v1 spelling
            strategy = strategy_from_dict(payload["strategy"]).normalised()
            return canonical_cache_key(code, strategy=strategy, model=model)
        # Legacy spelling (also the v1 default: greedy).
        return canonical_cache_key(code,
                                   beam_size=int(payload.get("beam_size", 1)),
                                   length_penalty=float(
                                       payload.get("length_penalty", 0.0)),
                                   model=model)

    def plan(self, key: str) -> list[WorkerClient]:
        """Dispatch order for ``key``: ring order, draining workers removed,
        proven-healthy workers ahead of unproven ones."""
        ordered = [self._by_id[worker_id] for worker_id in self._ring.order(key)]
        routable = [client for client in ordered if not client.draining]
        return ([client for client in routable if client.healthy]
                + [client for client in routable if not client.healthy])

    def _request(self, client: WorkerClient, method: str, path: str,
                 body: bytes | None, headers: dict[str, str] | None = None, *,
                 connect_timeout: float | None = None,
                 read_timeout: float | None = None,
                 stream: "_StreamRelay | None" = None) -> _Outcome:
        """One raw HTTP attempt against one worker.

        Raises :class:`ConnectFailure` when the connection itself failed
        (nothing reached the worker) and OSError/HTTPException for failures
        after that.  A 503 comes back as a ``retryable`` outcome; everything
        else (including 4xx — the client's problem, identical on every
        replica) is terminal.
        """
        conn = HTTPConnection(client.host, client.port,
                              timeout=connect_timeout
                              or self.policy.connect_timeout)
        try:
            try:
                conn.connect()
            except OSError as exc:
                raise ConnectFailure(str(exc)) from exc
            conn.sock.settimeout(read_timeout or self.policy.read_timeout)
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            if stream is not None and response.status == 200:
                stream.start(response.getheader("Content-Type",
                                                "application/x-ndjson"))
                try:
                    while True:
                        chunk = response.readline()
                        if not chunk:
                            return _Outcome("streamed", status=200)
                        stream.write(chunk)
                except (OSError, HTTPException):
                    # Bytes are already on the wire: the response is
                    # committed, the client sees a truncated stream.
                    return _Outcome("stream_broken", status=200)
            payload = response.read()
            response_headers = {name: value
                                for name, value in response.getheaders()}
            if response.status == 503:
                retry_after = _parse_retry_after(
                    response_headers.get("Retry-After"))
                return _Outcome("retryable", status=503,
                                headers=response_headers, body=payload,
                                retry_after=retry_after)
            return _Outcome("response", status=response.status,
                            headers=response_headers, body=payload)
        finally:
            conn.close()

    def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.policy.backoff_base * (2 ** (attempt - 1)),
                    self.policy.backoff_max)
        with self._rng_lock:
            jitter = 0.5 + self._rng.random() * 0.5
        time.sleep(delay * jitter)

    def _attempt_failed(self, client: WorkerClient, exc: Exception) -> None:
        client.healthy = False
        client.last_error = f"{type(exc).__name__}: {exc}"
        if client.breaker.record_failure():
            self.metrics.record_breaker_trip()
        self.metrics.record_retry(client.worker_id)

    def dispatch(self, method: str, path: str, raw_body: bytes | None,
                 headers: dict[str, str] | None = None, *,
                 key: str | None = None,
                 stream: "_StreamRelay | None" = None) -> _Outcome:
        """Route one **idempotent** request: affinity + failover + breaker.

        Walks the ring plan for the key, skipping open breakers, retrying
        connection failures / timeouts / 503s on the next replica with
        jittered backoff, up to ``max_attempts`` actual attempts.  Streaming
        requests stop failing over once the first byte is on the wire.
        """
        if key is None:
            key = self.affinity_key(raw_body or b"")
        plan = self.plan(key)
        started = time.monotonic()
        attempts = 0
        last_retryable: _Outcome | None = None
        for client in plan:
            if attempts >= self.policy.max_attempts:
                break
            if not client.breaker.allow():
                self.metrics.record_breaker_skip()
                continue
            if attempts:
                self._sleep_backoff(attempts)
            attempts += 1
            client.begin()
            try:
                outcome = self._request(client, method, path, raw_body,
                                        headers, stream=stream)
            except (OSError, HTTPException) as exc:
                self._attempt_failed(client, exc)
                continue
            finally:
                client.end()
            if outcome.kind == "retryable":
                # A deliberate 503 (draining / shedding) is not a crash:
                # honour the worker's Retry-After instead of counting it
                # toward the breaker threshold.
                if outcome.retry_after is not None:
                    client.breaker.force_open(min(outcome.retry_after,
                                                  self.policy.retry_after_cap))
                self.metrics.record_retry(client.worker_id)
                last_retryable = outcome
                continue
            if outcome.kind == "stream_broken":
                # Committed but truncated: terminal for this request, and a
                # real failure for the worker's health accounting.
                self._attempt_failed(client, OSError("stream broken mid-relay"))
                return outcome
            client.breaker.record_success()
            client.healthy = True
            self.metrics.record_forward(
                client.worker_id, (time.monotonic() - started) * 1000.0,
                attempt=attempts - 1)
            return outcome
        self.metrics.record_exhausted()
        if last_retryable is not None:
            return last_retryable
        return _error_outcome(ApiError.unavailable(
            "no healthy worker could serve the request; the pool is healing",
            retry_after=1.0))

    def dispatch_pinned(self, client: WorkerClient, method: str, path: str,
                        raw_body: bytes | None,
                        headers: dict[str, str] | None = None) -> _Outcome:
        """Route a request that only one worker can answer (job polls).

        No failover — the job's WAL lives in this worker — so retries stay
        on the pinned worker, riding out a supervisor respawn.
        """
        for attempt in range(self.policy.max_attempts):
            if attempt:
                self._sleep_backoff(attempt)
            client.begin()
            try:
                outcome = self._request(client, method, path, raw_body, headers)
            except (OSError, HTTPException) as exc:
                self._attempt_failed(client, exc)
                continue
            finally:
                client.end()
            if outcome.kind == "retryable":
                continue
            client.breaker.record_success()
            client.healthy = True
            self.metrics.record_forward(client.worker_id, 0.0, attempt=0)
            return outcome
        self.metrics.record_exhausted()
        return _error_outcome(ApiError.unavailable(
            f"worker {client.worker_id} is restarting; its jobs resume from "
            f"the WAL — retry shortly", retry_after=2.0))

    def dispatch_submit(self, raw_body: bytes,
                        headers: dict[str, str] | None = None) -> _Outcome:
        """Route one batch-job submit (NOT idempotent: 202 = durably queued).

        Least-loaded routable worker first (round-robin tiebreak); fails
        over **only on connect-phase errors** — once the submit bytes are on
        the wire the worker may already have fsynced the job, and retrying
        elsewhere would enqueue it twice.  Post-connect failures answer 502
        so the caller decides whether to resubmit.
        """
        candidates = [client for client in self._clients if client.routable]
        if not candidates:
            candidates = [client for client in self._clients
                          if not client.draining]
        if not candidates:
            return _error_outcome(ApiError.unavailable(
                "every worker is draining; retry against the pool later",
                retry_after=2.0))
        with self._rr_lock:
            offset = self._rr
            self._rr += 1
        # Least in-flight wins; the round-robin rotation breaks the all-idle
        # tie so submits spread instead of piling onto worker zero.
        rotation = candidates[offset % len(candidates):] \
            + candidates[:offset % len(candidates)]
        rotation.sort(key=lambda client: client.inflight)
        attempts = 0
        for client in rotation:
            if attempts >= self.policy.max_attempts:
                break
            if not client.breaker.allow():
                self.metrics.record_breaker_skip()
                continue
            attempts += 1
            client.begin()
            try:
                outcome = self._request(client, "POST", "/v1/advise/batch",
                                        raw_body, headers)
            except ConnectFailure as exc:
                self._attempt_failed(client, exc)
                continue
            except (OSError, HTTPException) as exc:
                self._attempt_failed(client, exc)
                return _error_outcome(ApiError(
                    "bad_gateway",
                    f"worker {client.worker_id} failed after the submit was "
                    f"sent; the job may or may not be queued — poll before "
                    f"resubmitting", status=502, retry_after=1.0))
            finally:
                client.end()
            if outcome.kind == "retryable":
                if outcome.retry_after is not None:
                    client.breaker.force_open(min(outcome.retry_after,
                                                  self.policy.retry_after_cap))
                self.metrics.record_retry(client.worker_id)
                continue
            client.breaker.record_success()
            client.healthy = True
            self.metrics.record_forward(client.worker_id, 0.0,
                                        attempt=attempts - 1)
            if outcome.status == 202:
                outcome.body = _prefix_job_id(outcome.body, client.worker_id)
            return outcome
        self.metrics.record_exhausted()
        return _error_outcome(ApiError.unavailable(
            "no worker accepted the job submit; retry", retry_after=1.0))

    # -------------------------------------------------------------- admin ops

    def drain_worker(self, worker_id: str, *, restart: bool = True,
                     timeout: float | None = None) -> dict[str, Any]:
        """Graceful drain: stop routing, let leases finish, then bounce.

        1. mark the worker draining (dispatch stops immediately);
        2. flip the worker itself into drain mode (new direct work gets 503);
        3. poll the worker's pending count and the router's own in-flight
           counter down to zero (bounded by ``drain_timeout``);
        4. bounce it through the supervisor (fresh process, no backoff) —
           the health loop readmits it once its probe succeeds.
        """
        client = self.client(worker_id)
        client.draining = True
        acknowledged = False
        try:
            outcome = self._request(client, "POST", "/admin/drain", b"{}",
                                    {"Content-Type": "application/json"})
            acknowledged = outcome.status == 200
        except (OSError, HTTPException):
            pass  # already dead — nothing in it to drain
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.policy.drain_timeout)
        pending: int | None = None
        drained = not acknowledged
        while not drained and time.monotonic() < deadline:
            try:
                outcome = self._request(
                    client, "GET", "/healthz", None,
                    read_timeout=self.policy.health_timeout)
                body = json.loads(outcome.body) if outcome.body else {}
                pending = body.get("pending")
            except (OSError, HTTPException, json.JSONDecodeError):
                drained = True  # died mid-drain; the bounce recovers it
                break
            if not pending and client.inflight == 0:
                drained = True
                break
            time.sleep(0.1)
        restarted = False
        if restart and self.pool is not None:
            self.pool.restart(worker_id)
            restarted = True
            # Fresh process: reset the router-side verdicts and let the
            # health loop readmit it on its first successful probe.
            client.breaker.record_success()
            client.healthy = False
            client.draining = False
        return {"worker": worker_id, "acknowledged": acknowledged,
                "drained": drained, "pending": pending,
                "restarted": restarted,
                "draining": client.draining}

    def rolling_swap(self, name: str, alias: str = "default") -> dict[str, Any]:
        """Apply an alias swap worker-by-worker across the fleet.

        Sequential on purpose: at any instant at most one worker is inside
        its (lease-draining, load-before-flip) local swap, so the fleet
        always has replicas serving and no request is dropped.  A worker
        that is mid-restart is waited for (``swap_worker_timeout``) — a
        rolling swap must not silently skip a replica and leave the fleet
        serving two revisions.
        """
        payload = json.dumps({"alias": alias}).encode()
        results: list[dict[str, Any]] = []
        for client in self._clients:
            outcome = self._swap_one(client, name, payload)
            body = json.loads(outcome.body) if outcome.body else {}
            if outcome.status != 200:
                return {"status": outcome.status, "alias": alias, "name": name,
                        "failed_worker": client.worker_id,
                        "error": body.get("error",
                                          {"code": "unavailable",
                                           "message": "worker unreachable"}),
                        "workers": results, "converged": False}
            results.append({"worker": client.worker_id,
                            "previous": body.get("previous"),
                            "current": body.get("current")})
        currents = {worker["current"] for worker in results}
        return {"status": 200, "api_version": "v1", "alias": alias,
                "name": name, "workers": results,
                "converged": len(currents) == 1,
                "current": currents.pop() if len(currents) == 1 else None}

    def _swap_one(self, client: WorkerClient, name: str,
                  payload: bytes) -> _Outcome:
        deadline = time.monotonic() + self.policy.swap_worker_timeout
        while True:
            client.begin()
            try:
                return self._request(client, "POST",
                                     f"/v1/models/{name}/swap", payload,
                                     {"Content-Type": "application/json"})
            except (OSError, HTTPException) as exc:
                if time.monotonic() >= deadline:
                    return _error_outcome(ApiError.unavailable(
                        f"worker {client.worker_id} unreachable during "
                        f"rolling swap ({type(exc).__name__}); fleet swap "
                        f"incomplete", retry_after=2.0))
                time.sleep(0.2)
            finally:
                client.end()

    def fan_out(self, method: str, path: str, raw_body: bytes | None,
                headers: dict[str, str] | None = None) -> dict[str, Any]:
        """Apply one request to every worker (model load/registration).

        Stops at the first failure — a half-loaded fleet is reported, not
        papered over.
        """
        results: list[dict[str, Any]] = []
        for client in self._clients:
            try:
                outcome = self._request(client, method, path, raw_body, headers)
            except (OSError, HTTPException) as exc:
                return {"status": 503, "workers": results,
                        "failed_worker": client.worker_id,
                        "error": {"code": "unavailable",
                                  "message": f"{type(exc).__name__}: {exc}"}}
            body = json.loads(outcome.body) if outcome.body else {}
            if outcome.status != 200:
                return {"status": outcome.status, "workers": results,
                        "failed_worker": client.worker_id,
                        "error": body.get("error", body)}
            results.append({"worker": client.worker_id, **body})
        return {"status": 200, "api_version": "v1", "workers": results}

    # ------------------------------------------------------------ health loop

    def _health_loop(self) -> None:
        while not self._stop.wait(self.policy.health_interval):
            for client in self._clients:
                if self._stop.is_set():
                    return
                self.probe(client)

    def probe(self, client: WorkerClient) -> bool:
        """One active ``/healthz`` round-trip; updates the routable verdict."""
        try:
            outcome = self._request(client, "GET", "/healthz", None,
                                    connect_timeout=self.policy.health_timeout,
                                    read_timeout=self.policy.health_timeout)
        except (OSError, HTTPException) as exc:
            if client.healthy:
                client.last_error = f"probe: {type(exc).__name__}: {exc}"
            client.healthy = False
            self.metrics.record_probe_failure()
            return False
        if outcome.status == 200:
            client.healthy = True
            client.last_error = None
            client.breaker.record_success()
            return True
        # 503 draining (or any non-200): the worker is up but must not take
        # fresh traffic; keep it out of dispatch without breaker penalties.
        client.healthy = False
        try:
            body = json.loads(outcome.body) if outcome.body else {}
        except json.JSONDecodeError:
            body = {}
        client.last_error = f"probe: status {outcome.status} " \
                            f"({body.get('status', 'unknown')})"
        return False

    def wait_full_strength(self, timeout: float) -> bool:
        """Block until every worker is routable (and alive, when pooled)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, body = self.health()
            if body["status"] == "ok":
                return True
            time.sleep(0.1)
        return False


def _parse_retry_after(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


def _error_outcome(error: ApiError) -> _Outcome:
    return _Outcome("response", status=error.status,
                    headers={"Content-Type": "application/json"},
                    body=json.dumps(error.to_dict()).encode(),
                    retry_after=error.retry_after)


def _prefix_job_id(body: bytes, worker_id: str) -> bytes:
    """Namespace a worker-local job id with its worker for pinned polls."""
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return body
    if isinstance(payload, dict) and isinstance(payload.get("job_id"), str):
        payload["job_id"] = f"{worker_id}-{payload['job_id']}"
        return json.dumps(payload).encode()
    return body


# --------------------------------------------------------------------------
# the HTTP front


class RouterRequestHandler(BaseHTTPRequestHandler):
    """The ``server.py`` wire contract, served by the fleet."""

    #: Set by :func:`make_router`.
    router: Router

    timeout = 60
    quiet = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        try:
            if self.path == "/healthz":
                status, body = self.router.health()
                self._send_json(status, body)
            elif self.path == "/metrics":
                self._send_json(200, self.router.metrics_body())
            elif self.path.startswith("/v1/jobs/"):
                self._get_job(self.path[len("/v1/jobs/"):])
            else:
                # Any other GET (/v1/models, future listings) is idempotent:
                # forward with the path itself as the affinity key.
                outcome = self.router.dispatch("GET", self.path, None,
                                               key=self.path)
                self._relay(outcome)
        except Exception as exc:  # noqa: BLE001 — requests must not kill the router
            self._send_error(_as_api_error(exc))

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        try:
            raw = self._read_body()
            if raw is None:
                return
            headers = self._forward_headers()
            if self.path in ("/v1/advise", "/advise"):
                self._relay(self.router.dispatch("POST", self.path, raw,
                                                 headers))
            elif self.path == "/v1/advise/stream":
                relay = _StreamRelay(self)
                outcome = self.router.dispatch("POST", self.path, raw,
                                               headers, stream=relay)
                if outcome.kind in ("streamed", "stream_broken"):
                    return  # bytes already relayed
                self._relay(outcome)
            elif self.path == "/v1/advise/batch":
                self._relay(self.router.dispatch_submit(raw, headers))
            elif (match := re.fullmatch(r"/v1/models/([^/]+)/swap", self.path)):
                self._post_swap(match.group(1), raw)
            elif re.fullmatch(r"/v1/models/[^/]+/load", self.path):
                result = self.router.fan_out("POST", self.path, raw, headers)
                status = result.pop("status")
                self._send_json(status, result)
            elif (match := re.fullmatch(r"/admin/workers/([^/]+)/drain",
                                        self.path)):
                self._send_json(200, {"api_version": "v1",
                                      **self.router.drain_worker(
                                          match.group(1))})
            else:
                self._send_error(
                    ApiError.not_found(f"unknown path {self.path!r}"))
        except Exception as exc:  # noqa: BLE001 — requests must not kill the router
            self._send_error(_as_api_error(exc))

    def _get_job(self, job_id: str) -> None:
        match = _POOL_JOB_ID.match(job_id)
        if match is None:
            raise ApiError.not_found(
                f"unknown job {job_id!r} (pool job ids look like w0-job-1)")
        worker_id, local_id = match.groups()
        client = self.router.client(worker_id)
        outcome = self.router.dispatch_pinned(client, "GET",
                                              f"/v1/jobs/{local_id}", None)
        if outcome.status == 200:
            outcome.body = _prefix_job_id(outcome.body, worker_id)
        self._relay(outcome)

    def _post_swap(self, name: str, raw: bytes) -> None:
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ApiError.invalid_request(f"invalid JSON body: {exc}") from exc
        alias = payload.get("alias", "default") if isinstance(payload, dict) \
            else "default"
        if not isinstance(alias, str) or not alias.strip():
            raise ApiError.invalid_request(
                '"alias" must be a non-empty alias name', field="alias")
        result = self.router.rolling_swap(name, alias)
        status = result.pop("status")
        self._send_json(status, result)

    # ------------------------------------------------------------- plumbing

    def _forward_headers(self) -> dict[str, str]:
        headers = {"Content-Type": self.headers.get("Content-Type",
                                                    "application/json")}
        client_id = self.headers.get("X-Client-Id")
        if client_id is not None:
            headers["X-Client-Id"] = client_id
        return headers

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(ApiError.invalid_request(
                "missing or oversized Content-Length"))
            return None
        return self.rfile.read(length)

    def _relay(self, outcome: _Outcome) -> None:
        """Write a completed upstream response back to the client."""
        body = outcome.body
        self.send_response(outcome.status)
        self.send_header("Content-Type",
                         outcome.headers.get("Content-Type",
                                             "application/json"))
        self.send_header("Content-Length", str(len(body)))
        retry_after = outcome.headers.get("Retry-After")
        if retry_after is None and outcome.retry_after is not None:
            retry_after = str(max(1, int(-(-outcome.retry_after // 1))))
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, error: ApiError) -> None:
        self._send_json(error.status, error.to_dict(),
                        retry_after=error.retry_after)

    def _send_json(self, status: int, payload: dict, *,
                   retry_after: float | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        self.end_headers()
        self.wfile.write(body)


def _as_api_error(exc: Exception) -> ApiError:
    if isinstance(exc, ApiError):
        return exc
    return ApiError.internal(f"{type(exc).__name__}: {exc}")


def make_router(router: Router, host: str = "127.0.0.1", port: int = 0, *,
                quiet: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) the router's HTTP front on ``host:port``."""
    handler = type("BoundRouterRequestHandler", (RouterRequestHandler,),
                   {"router": router, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


# --------------------------------------------------------------------------
# CLI + chaos smoke


# The CLI + chaos-smoke block below runs as its own untraced process (the
# CI "Chaos smoke test" step drives it end to end), so it is excluded from
# in-process coverage measurement.
def _boot_fleet(checkpoint: str, pool_root: str | Path, replicas: int, *,  # pragma: no cover
                host: str = "127.0.0.1",
                policy: RouterPolicy | None = None,
                restart_backoff_base: float = 0.25) -> tuple[WorkerPool, Router]:
    """Spawn the pool over ``checkpoint`` and a started router above it."""
    import os

    src_dir = str(Path(__file__).resolve().parents[2])
    env = {"PYTHONPATH": src_dir + os.pathsep + os.environ.get("PYTHONPATH", "")}
    pool = WorkerPool(replicas, server_worker_command(checkpoint),
                      root=pool_root, host=host,
                      restart_backoff_base=restart_backoff_base, env=env)
    pool.start()
    router = Router(pool=pool, policy=policy).start()
    return pool, router


def _run_smoke_chaos(args) -> int:  # pragma: no cover
    """The fault-injection drill CI runs (also: ``tests/test_worker_pool.py``).

    3 real workers over one demo checkpoint; concurrent mixed traffic
    (v1 + legacy advise over a handful of distinct buffers); SIGKILL one
    worker mid-load; assert **zero** non-2xx among all issued requests and
    the pool back at full strength; then a rolling swap to a second
    registered name under the same load, again with zero failures.
    """
    import shutil
    import tempfile
    import urllib.error
    import urllib.request

    workdir = tempfile.mkdtemp(prefix="mpirical-smoke-chaos-")
    failures: list[str] = []
    pool = router = front = None
    try:
        checkpoint = args.checkpoint
        if not checkpoint:
            from .server import _demo_model
            checkpoint = str(Path(workdir) / "checkpoint")
            _demo_model(None).save(checkpoint)

        pool, router = _boot_fleet(checkpoint, Path(workdir) / "pool",
                                   replicas=3)
        front = make_router(router, port=0, quiet=True)
        host, port = front.server_address[:2]
        threading.Thread(target=front.serve_forever, daemon=True).start()
        base = f"http://{host}:{port}"

        if not router.wait_full_strength(120.0):
            failures.append(f"pool never reached full strength: "
                            f"{router.health()[1]}")
            return _chaos_report(failures, router)

        codes = [f"int main() {{ return {n}; }}\n" for n in range(8)]
        statuses: list[tuple[int, str]] = []
        statuses_lock = threading.Lock()
        done_count = [0]

        def fire(path: str, payload: dict) -> None:
            request = urllib.request.Request(
                f"{base}{path}", data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=120) as response:
                    status, note = response.status, ""
                    response.read()
            except urllib.error.HTTPError as exc:
                status, note = exc.code, exc.read().decode(errors="replace")
            except Exception as exc:  # noqa: BLE001 — a failure to record
                status, note = 599, f"{type(exc).__name__}: {exc}"
            with statuses_lock:
                statuses.append((status, note))
                done_count[0] += 1

        def traffic(thread_index: int, requests: int) -> None:
            for n in range(requests):
                code = codes[(thread_index + n) % len(codes)]
                if n % 3 == 2:
                    fire("/advise", {"code": code})
                else:
                    fire("/v1/advise", {"code": code,
                                        "strategy": {"name": "greedy"}})

        def run_traffic(threads: int = 6, requests: int = 20) -> int:
            workers = [threading.Thread(target=traffic, args=(index, requests))
                       for index in range(threads)]
            for thread in workers:
                thread.start()
            return_after = threads * requests
            for thread in workers:
                thread.join()
            return return_after

        # ---- stage 1: SIGKILL one worker under load --------------------
        kill_after = 20
        killer_done = threading.Event()

        def killer() -> None:
            while done_count[0] < kill_after:
                time.sleep(0.01)
            pool.kill("w1")
            killer_done.set()

        threading.Thread(target=killer, daemon=True).start()
        total = run_traffic()
        killer_done.wait(10.0)
        bad = [entry for entry in statuses if not 200 <= entry[0] < 300]
        if bad:
            failures.append(f"stage 1: {len(bad)}/{total} requests failed "
                            f"after SIGKILL, e.g. {bad[:3]}")
        if not killer_done.is_set():
            failures.append("stage 1: traffic finished before the kill fired")
        if not router.wait_full_strength(60.0):
            failures.append(f"stage 1: pool never recovered after SIGKILL: "
                            f"{router.health()[1]}")

        # ---- stage 2: rolling swap under load --------------------------
        statuses.clear()
        done_count[0] = 0
        result = router.fan_out(
            "POST", "/v1/models/demo-next/load",
            json.dumps({"checkpoint": checkpoint}).encode(),
            {"Content-Type": "application/json"})
        if result["status"] != 200:
            failures.append(f"stage 2: fleet-wide model load failed: {result}")
            return _chaos_report(failures, router)
        swap_result: dict[str, Any] = {}

        def swapper() -> None:
            while done_count[0] < 15:
                time.sleep(0.01)
            swap_result.update(router.rolling_swap("demo-next"))

        swap_thread = threading.Thread(target=swapper, daemon=True)
        swap_thread.start()
        total = run_traffic()
        swap_thread.join(120.0)
        bad = [entry for entry in statuses if not 200 <= entry[0] < 300]
        if bad:
            failures.append(f"stage 2: {len(bad)}/{total} requests failed "
                            f"during rolling swap, e.g. {bad[:3]}")
        if swap_result.get("status") != 200 or not swap_result.get("converged"):
            failures.append(f"stage 2: rolling swap did not converge: "
                            f"{swap_result}")

        snapshot = router.metrics.snapshot()
        if snapshot["exhausted_total"]:
            failures.append(f"router exhausted its retry budget "
                            f"{snapshot['exhausted_total']} time(s)")
        if not failures:
            print(f"chaos smoke ok: SIGKILL of w1 under load lost 0 requests "
                  f"({snapshot['failovers_total']} failover(s), "
                  f"{snapshot['retries_total']} retrie(s)); pool healed to "
                  f"full strength; rolling swap to demo-next converged with "
                  f"0 drops")
    finally:
        if front is not None:
            front.shutdown()
            front.server_close()
        if router is not None:
            router.close()
        if pool is not None:
            pool.stop()
        shutil.rmtree(workdir, ignore_errors=True)
    return _chaos_report(failures, router)


def _chaos_report(failures: list[str], router: Router | None) -> int:  # pragma: no cover
    import sys as _sys

    if not failures:
        return 0
    for failure in failures:
        print(f"chaos smoke FAILED: {failure}", file=_sys.stderr)
    if router is not None:
        print(f"router metrics: {json.dumps(router.metrics.snapshot())}",
              file=_sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    parser = argparse.ArgumentParser(
        description="Route MPI-RICAL advice across a self-healing worker "
                    "pool (stdlib only).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--replicas", type=int, default=3,
                        help="worker subprocess count")
    parser.add_argument("--checkpoint", default=None,
                        help="model directory saved via MPIRical.save(); "
                             "omitted = train a small demo model once and "
                             "share it across the fleet")
    parser.add_argument("--pool-root", default=None,
                        help="pool state directory (per-worker registry "
                             "roots and job WALs live under "
                             "<root>/workers/<id>)")
    parser.add_argument("--smoke-chaos", action="store_true",
                        help="fault-injection drill: 3 workers, concurrent "
                             "traffic, SIGKILL one, assert zero failures + "
                             "recovery + a clean rolling swap, exit")
    args = parser.parse_args(argv)

    if args.smoke_chaos:
        return _run_smoke_chaos(args)

    import shutil
    import tempfile

    workdir = None
    checkpoint = args.checkpoint
    pool_root = args.pool_root
    if not checkpoint or not pool_root:
        workdir = tempfile.mkdtemp(prefix="mpirical-pool-")
        if not checkpoint:
            from .server import _demo_model
            checkpoint = str(Path(workdir) / "checkpoint")
            _demo_model(None).save(checkpoint)
        if not pool_root:
            pool_root = str(Path(workdir) / "pool")

    pool, router = _boot_fleet(checkpoint, pool_root, args.replicas,
                               host=args.host)
    front = make_router(router, args.host, args.port)
    host, port = front.server_address[:2]
    print(f"routing MPI-RICAL advice on http://{host}:{port} across "
          f"{args.replicas} worker(s) (same API as server.py; plus "
          f"POST /admin/workers/<id>/drain, rolling /v1/models/<name>/swap)")
    try:
        front.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        front.shutdown()
        front.server_close()
        router.close()
        pool.stop()
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
