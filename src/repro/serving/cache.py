"""Thread-safe LRU result cache keyed on the program's canonical form.

The serving layer sees the same buffer over and over: an IDE re-advises on
every keystroke pause, and many requests are byte-identical re-submissions.
Caching on the *raw text* would miss trivially-edited resubmissions
(whitespace, comments, re-flowed lines), so the key is built from the
program's canonical form instead:

* the **canonical xSBT string** — the parse tree linearised exactly as the
  encoder consumes it, which is invariant under whitespace/comment/formatting
  edits (the "xSBT-keyed" part of the design); and
* the **canonical code token stream** — because the xSBT deliberately drops
  identifiers and literals, two structurally-identical programs with
  different variable names would otherwise alias to one entry and be served
  each other's predictions; and
* the **model identity** (``name@revision``) — two models, or two revisions
  of one model across a hot-swap, must never be served each other's cached
  results even for byte-identical buffers.

Both components are exactly what :class:`repro.mpirical.MPIRical` feeds the
model, so two requests with equal keys are guaranteed to produce the same
*model output*.  Anything layout-dependent (line-anchored suggestions, parse
diagnostics) must NOT be stored under this key — equal keys tolerate
whitespace/comment edits that move line numbers.  The service therefore
caches only the generated program and re-anchors advice per request.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from ..clang.parser import parse_source_with_diagnostics
from ..tokenization.code_tokenizer import tokenize_code
from ..xsbt.xsbt import xsbt_string


def canonical_cache_key(source_code: str, xsbt: str | None = None, *,
                        tokens: list[str] | None = None,
                        strategy=None, beam_size: int = 1,
                        length_penalty: float = 0.0,
                        model: str | None = None) -> str:
    """Hash ``source_code`` into its canonical serving-cache key.

    ``xsbt`` and ``tokens`` skip re-deriving the xSBT / re-lexing the buffer
    when the caller already parsed it (the service computes both once per
    request, so the key costs no extra lexer pass on the hot path).

    The decoding settings that change the *model output* are part of the
    key via the strategy's **canonical serialized form**
    (:meth:`repro.model.decoding.DecodingStrategy.canonical`, after
    :meth:`normalised`): a beam request must never be served a cached greedy
    result, and two sampling requests share an entry only when temperature,
    top-k, top-p *and seed* all match.  ``beam_size``/``length_penalty`` are
    the legacy spelling and map onto greedy/beam exactly as the old key did
    (``beam_size <= 1`` normalises to greedy regardless of penalty).

    ``model`` is the resolved ``name@revision`` identity of the model that
    will serve the request (:class:`repro.registry.ModelEntry.identity`).
    The *revision* part is what makes hot-swaps cache-safe: after an alias
    flip to a retrained checkpoint, every key differs from the old
    revision's keys, so a post-swap request can never be answered from the
    pre-swap cache.  The registry-backed service always passes it; ``None``
    (direct/legacy callers) keys on content + strategy alone.
    """
    from ..model.decoding import BeamStrategy, GreedyStrategy

    if xsbt is None:
        unit, _ = parse_source_with_diagnostics(source_code)
        xsbt = xsbt_string(unit)
    if tokens is None:
        tokens = tokenize_code(source_code)
    if strategy is None:
        strategy = (BeamStrategy(beam_size=beam_size,
                                 length_penalty=float(length_penalty))
                    if beam_size > 1 else GreedyStrategy())
    digest = hashlib.sha256()
    digest.update(xsbt.encode())
    digest.update(b"\x00")
    digest.update("\x00".join(tokens).encode())
    digest.update(b"\x00")
    digest.update(strategy.normalised().canonical().encode())
    if model is not None:
        digest.update(b"\x00")
        digest.update(model.encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    All operations take the internal lock, so the cache can be shared freely
    between the request threads and the micro-batch workers.  Values are
    returned as-is (no copying): cached serving results are treated as
    immutable by convention.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    _MISSING = object()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most-recently-used on a hit."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching the hit/miss counters.

        For double-checked lookups (the service re-checks under its
        single-flight lock) where counting a second miss for the same request
        would skew the reported hit rate.  Recency is still refreshed.
        """
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                return default
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[Hashable]:
        """Keys from least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions, size=len(self._entries),
                              capacity=self.capacity)
