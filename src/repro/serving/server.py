"""Stdlib-only JSON HTTP endpoint over :class:`InferenceService`.

Endpoints
---------
``POST /advise``
    Body ``{"code": "<C source>"}`` with optional ``"beam_size"`` (int >= 1,
    capped at ``MAX_BEAM_SIZE``) and ``"length_penalty"`` (number >= 0)
    fields selecting the decode strategy per request; responds with the
    generated program, the advice list, parse diagnostics, and serving
    metadata (``cached``, ``latency_ms``, ``cache_key``, ``beam_size``,
    ``length_penalty``).
``GET /healthz``
    Liveness probe; 200 with ``{"status": "ok"}`` once the model is loaded.
``GET /metrics``
    The :meth:`InferenceService.metrics` snapshot as JSON.

The server is a :class:`http.server.ThreadingHTTPServer`: each connection
gets a thread, the threads converge on the service's micro-batcher, and the
batcher turns their concurrency into model batches.  No third-party web
framework is required — the point is that the serving layer runs anywhere the
reproduction itself runs.

Run it::

    PYTHONPATH=src python -m repro.serving.server --port 8080

which trains a small demo model first (or loads ``--checkpoint DIR`` saved
via :meth:`MPIRical.save`).  ``--smoke`` starts the server on an ephemeral
port, POSTs one request against it, asserts HTTP 200, and exits — the CI
smoke test.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import InferenceService, ServedAdvice

#: Largest accepted request body; a source buffer bigger than this is a
#: client error, not a workload.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted per-request beam size; beam cost scales linearly with the
#: hypothesis count, so an unbounded client value is a denial-of-service knob.
MAX_BEAM_SIZE = 16


def advice_payload(served: ServedAdvice) -> dict:
    """The JSON-serialisable response body for one /advise call."""
    session = served.session
    payload = {
        "generated_code": session.generated_code,
        "advice": [
            {
                **asdict(item.suggestion),
                "confidence": item.confidence,
                "note": item.note,
                "rendered": item.render(),
            }
            for item in session.advice
        ],
        "diagnostics": session.parse_diagnostics,
        "cached": served.cached,
        "latency_ms": served.latency_ms,
        "cache_key": served.cache_key,
    }
    if served.generation is not None:
        payload["beam_size"] = served.generation.beam_size
        payload["length_penalty"] = served.generation.length_penalty
    return payload


def parse_generation_fields(payload: dict) -> tuple[int | None, float | None]:
    """Validate the optional decode-strategy fields of an /advise body.

    Returns ``(beam_size, length_penalty)`` with ``None`` for absent fields;
    raises :class:`ValueError` with a client-facing message otherwise.
    """
    beam_size = payload.get("beam_size")
    if beam_size is not None:
        if isinstance(beam_size, bool) or not isinstance(beam_size, int):
            raise ValueError('"beam_size" must be an integer')
        if not 1 <= beam_size <= MAX_BEAM_SIZE:
            raise ValueError(f'"beam_size" must be in [1, {MAX_BEAM_SIZE}]')
    length_penalty = payload.get("length_penalty")
    if length_penalty is not None:
        if isinstance(length_penalty, bool) or \
                not isinstance(length_penalty, (int, float)):
            raise ValueError('"length_penalty" must be a number')
        # json.loads accepts the non-standard NaN/Infinity tokens; a
        # non-finite penalty would poison the beam ranking (NaN breaks the
        # candidate total order) and the cache key.
        if not math.isfinite(length_penalty) or length_penalty < 0:
            raise ValueError('"length_penalty" must be a finite number >= 0')
        length_penalty = float(length_penalty)
    return beam_size, length_penalty


class AdviseRequestHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints onto the shared :class:`InferenceService`."""

    #: Set by :func:`make_server`.
    service: InferenceService

    #: Socket timeout: a client that advertises a Content-Length but never
    #: sends the body must not strand its handler thread forever.
    timeout = 60

    # Tests and the smoke path don't want per-request access logging.
    quiet = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if self.path != "/advise":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        code = payload.get("code") if isinstance(payload, dict) else None
        if not isinstance(code, str) or not code.strip():
            self._send_json(400, {"error": 'body must be {"code": "<C source>"}'})
            return
        try:
            beam_size, length_penalty = parse_generation_fields(payload)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            served = self.service.advise(code, beam_size=beam_size,
                                         length_penalty=length_penalty)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(200, advice_payload(served))

    # ------------------------------------------------------------- plumbing

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized Content-Length"})
            return None
        return self.rfile.read(length)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(service: InferenceService, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the smoke mode
    use.
    """
    handler = type("BoundAdviseRequestHandler", (AdviseRequestHandler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def _demo_service(checkpoint: str | None, *, max_batch_size: int, max_wait_ms: float,
                  num_workers: int, cache_capacity: int) -> InferenceService:
    """A service over a checkpoint, or over a freshly trained small model."""
    from ..mpirical.pipeline import MPIRical

    if checkpoint:
        mpirical = MPIRical.load(checkpoint)
    else:
        from ..corpus import MiningConfig, build_corpus
        from ..dataset import build_dataset
        from ..model.config import tiny_config

        print("no --checkpoint given; training a small demo model ...",
              file=sys.stderr)
        corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
        dataset = build_dataset(corpus)
        config = tiny_config()
        config.training.max_steps_per_epoch = 8
        mpirical = MPIRical.fit(dataset.splits.train[:40],
                                dataset.splits.validation[:8], config)
    return InferenceService(mpirical, max_batch_size=max_batch_size,
                           max_wait_ms=max_wait_ms, num_workers=num_workers,
                           cache_capacity=cache_capacity)


def _run_smoke(service: InferenceService) -> int:
    """Start the server, POST one /advise request at it, assert HTTP 200."""
    import urllib.request

    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        request = urllib.request.Request(
            f"http://{host}:{port}/advise",
            data=json.dumps({"code": "int main() { return 0; }\n"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            status = response.status
            body = json.loads(response.read())
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    if status != 200 or "generated_code" not in body:
        print(f"smoke test FAILED: status={status} body={body}", file=sys.stderr)
        return 1
    print(f"smoke test ok: status={status}, "
          f"{len(body['advice'])} advice item(s), cached={body['cached']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve MPI-RICAL advice over HTTP (stdlib only).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--checkpoint", default=None,
                        help="model directory saved via MPIRical.save(); "
                             "omitted = train a small demo model")
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-capacity", type=int, default=256)
    parser.add_argument("--smoke", action="store_true",
                        help="start, self-POST one /advise request, exit")
    args = parser.parse_args(argv)

    service = _demo_service(args.checkpoint, max_batch_size=args.max_batch_size,
                            max_wait_ms=args.max_wait_ms, num_workers=args.workers,
                            cache_capacity=args.cache_capacity)
    if args.smoke:
        return _run_smoke(service)

    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving MPI-RICAL advice on http://{host}:{port} "
          f"(POST /advise, GET /healthz, GET /metrics)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
