"""Stdlib-only JSON HTTP endpoint over :class:`InferenceService`.

Endpoints
---------
``POST /v1/advise``
    Body is a v1 :class:`repro.api.AdviseRequest`:
    ``{"code": "<C source>", "strategy": {"name": "beam", "beam_size": 4}}``
    (``strategy`` optional — greedy by default; may also be a bare name
    string).  Responds with the full :class:`repro.api.AdviseResponse` JSON.
``POST /v1/advise/stream``
    Same body; responds with **NDJSON**: one
    ``{"type": "token", "index": n, "token": "<code token>"}`` line per
    generated token as the model emits it, then a single
    ``{"type": "final", "response": {...}}`` line with the full response.
``POST /v1/advise/batch``
    Async bulk advising: ``{"items": [<advise request>, ...]}`` (optional
    top-level ``model``/``strategy`` defaults) answers **202** with
    ``{"job_id": ..., "status": "queued", ...}`` immediately; the items run
    through the same micro-batcher as interactive traffic.  The job tier is
    **durable** when the server has a ``--registry-root``: every submit is
    WAL-fsynced before the 202, and a restarted server resumes unfinished
    jobs.  Backpressure is typed: **429** ``queue_full`` when the unfinished
    backlog is at capacity, **429** ``quota_exceeded`` when the caller's
    ``X-Client-Id`` already holds its in-flight quota, **503**
    ``unavailable`` while shutting down.
``GET /v1/jobs/{id}``
    Poll a batch job: status, progress counters and one per-item envelope
    (``{"status": "ok", "response": ...}`` / ``{"status": "error", "error":
    ...}`` / ``{"status": "dead_letter", "error": ...}``) per completed
    item.  A finished job that was TTL/capacity-evicted answers **410**
    ``expired``; an id that was never issued answers **404**.
``GET /v1/models``
    The model registry: default alias, aliases, and every registered
    model's ``name``/``revision``/``loaded``/lease/request counters.
``POST /v1/models/{name}/load``
    Load (and warm up) a registered model, or register-and-load a new one
    from ``{"checkpoint": "<directory>"}``.
``POST /v1/models/{name}/swap``
    Atomically flip an alias (``{"alias": "default"}`` if omitted) to
    ``{name}``.  The target is loaded before the flip; requests in flight on
    the previous model drain on it — none are dropped — and the cache can
    never serve the old revision's entries afterwards because every cache
    key embeds ``model@revision``.
``POST /advise`` (legacy, deprecated)
    The pre-v1 body (``{"code": ..., "beam_size"?: ..., "length_penalty"?:
    ...}``); delegates to the v1 path through a compatibility shim and
    answers in the legacy shape, bit-identical to previous releases.
``GET /healthz``
    Liveness probe; 200 with ``{"status": "ok", ...}`` plus the registry
    state (default alias identity, per-model loaded/revision flags).
``GET /metrics``
    The :meth:`InferenceService.metrics` snapshot as JSON (includes
    ``requests_by_model`` and the registry snapshot).

Invalid requests get the structured envelope
``{"error": {"code", "message", "field"}}`` from every route: **400** for
malformed bodies (bad JSON, wrong types, unknown fields), **422** for
well-formed requests with out-of-range parameter values (NaN/inf/negative
knobs, oversized beams).  Validation itself lives in
:meth:`repro.api.AdviseRequest.validate` — the server only translates the
raised :class:`repro.api.ApiError`.

The server is a :class:`http.server.ThreadingHTTPServer`: each connection
gets a thread, the threads converge on the service's micro-batcher, and the
batcher turns their concurrency into model batches.  No third-party web
framework is required — the point is that the serving layer runs anywhere the
reproduction itself runs.

Run it::

    PYTHONPATH=src python -m repro.serving.server --port 8080

which trains a small demo model first (or loads ``--checkpoint DIR`` saved
via :meth:`MPIRical.save`).  ``--registry-root DIR`` makes the job tier
durable (the WAL lives at ``DIR/jobs/jobs.wal``; startup replays it and
resumes unfinished jobs).  ``--smoke`` starts the server on an ephemeral
port, exercises ``/advise``, ``/v1/advise`` and ``/v1/advise/stream``
against it, asserts the responses, and exits — the CI smoke test.
``--smoke-resume`` is the durability smoke: it starts a *subprocess* server
over a registry root, submits a batch, SIGKILLs the process mid-run,
restarts it over the same root, and asserts the job reaches ``"done"`` with
every item resolved and that job ids do not recycle.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import AdviseRequest, ApiError, parse_batch_advise, parse_legacy_advise
from ..model.checkpoints import CheckpointError
from ..model.decoding import MAX_BEAM_SIZE  # re-export for back-compat
from ..registry import RegistryError
from .jobs import JobStore, validate_client_id
from .service import InferenceService, ServedAdvice

#: Largest accepted request body; a source buffer bigger than this is a
#: client error, not a workload.
MAX_BODY_BYTES = 1 << 20

__all__ = ["AdviseRequestHandler", "make_server", "advice_payload",
           "MAX_BODY_BYTES", "MAX_BEAM_SIZE", "main"]


def advice_payload(served: ServedAdvice) -> dict:
    """The legacy JSON response body for one /advise call (pre-v1 shape).

    The ``beam_size``/``length_penalty`` echo comes from the request's
    *merged* legacy config (:attr:`ServedAdvice.generation`) when present —
    the pre-v1 server echoed the resolved config, penalty and all, even for
    greedy requests — falling back to the strategy-derived pair.
    """
    from ..api import AdviseResponse, advice_items

    payload = AdviseResponse(
        generated_code=served.session.generated_code,
        advice=advice_items(served.session),
        diagnostics=tuple(served.session.parse_diagnostics),
        strategy=served.strategy,
        cached=served.cached,
        latency_ms=served.latency_ms,
        cache_key=served.cache_key,
    ).to_legacy_dict()
    if served.generation is not None:
        payload["beam_size"] = served.generation.beam_size
        payload["length_penalty"] = served.generation.length_penalty
    return payload


def _to_api_error(exc: Exception) -> ApiError:
    """Map any handler exception onto the structured error envelope.

    Registry resolution failures are client errors (422 unknown model /
    409 lifecycle conflict); checkpoint-integrity failures surface the
    :class:`CheckpointError` message (422 — the named artefact is unusable);
    everything else is a 500.
    """
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, RegistryError):
        if exc.kind == "conflict":
            return ApiError("conflict", str(exc), status=409)
        return ApiError.unknown_model(str(exc))
    if isinstance(exc, CheckpointError):
        return ApiError.invalid_parameter(str(exc), field="checkpoint")
    return ApiError.internal(f"{type(exc).__name__}: {exc}")


class AdviseRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoints onto the shared :class:`InferenceService`."""

    #: Set by :func:`make_server`.
    service: InferenceService

    #: Socket timeout: a client that advertises a Content-Length but never
    #: sends the body must not strand its handler thread forever.
    timeout = 60

    # Tests and the smoke path don't want per-request access logging.
    quiet = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        try:
            if self.path == "/healthz":
                self._get_healthz()
            elif self.path == "/metrics":
                self._send_json(200, self.service.metrics())
            elif self.path == "/v1/models":
                self._send_json(200, {"api_version": "v1",
                                      **self.service.registry.snapshot()})
            elif self.path.startswith("/v1/jobs/"):
                job_id = self.path[len("/v1/jobs/"):]
                self._send_json(200, self.service.jobs.get(job_id).to_dict())
            else:
                self._send_error(
                    ApiError.not_found(f"unknown path {self.path!r}"))
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._send_error(_to_api_error(exc))

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        routes = {
            "/advise": self._post_advise_legacy,
            "/v1/advise": self._post_advise_v1,
            "/v1/advise/stream": self._post_advise_stream,
            "/v1/advise/batch": self._post_advise_batch,
            "/admin/drain": self._post_drain,
        }
        handler = routes.get(self.path)
        allow_empty = self.path == "/admin/drain"  # the drain body is optional
        if handler is None:
            handler = self._model_route(self.path)
            allow_empty = True  # lifecycle bodies are optional
        if handler is None:
            self._send_error(ApiError.not_found(f"unknown path {self.path!r}"))
            return
        payload = self._read_json_body(allow_empty=allow_empty)
        if payload is None:
            return
        try:
            handler(payload)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._send_error(_to_api_error(exc))

    def _model_route(self, path: str):
        """Resolve ``/v1/models/{name}/load`` and ``.../swap`` to handlers."""
        parts = path.split("/")
        if len(parts) != 5 or parts[:3] != ["", "v1", "models"] or not parts[3]:
            return None
        name, action = parts[3], parts[4]
        if action == "load":
            return lambda payload: self._post_model_load(name, payload)
        if action == "swap":
            return lambda payload: self._post_model_swap(name, payload)
        return None

    def _get_healthz(self) -> None:
        registry = self.service.registry.snapshot()
        jobs = self.service.job_store()
        draining = self.service.draining
        # A draining worker answers 503 so load balancers (and the pool
        # router) stop routing to it; the body still carries the pending
        # count the drain coordinator polls down to zero.
        self._send_json(503 if draining else 200, {
            "status": "draining" if draining else "ok",
            "draining": draining,
            "pending": self.service.pending_work() if draining else None,
            "default": registry["default"],
            "models": {model["name"]: {"revision": model["revision"],
                                       "loaded": model["loaded"],
                                       "requests_served": model["requests_served"]}
                       for model in registry["models"]},
            # The probe must not *create* the store (opening the WAL is a
            # side effect); an untouched job tier reports enabled: False.
            "jobs": jobs.snapshot() if jobs is not None else {"enabled": False},
        })

    def _post_advise_legacy(self, payload: dict) -> None:
        """The pre-v1 route: legacy body in, legacy body out, v1 underneath."""
        warnings.warn(
            "POST /advise is deprecated; use POST /v1/advise",
            DeprecationWarning, stacklevel=2)
        code, beam_size, length_penalty = parse_legacy_advise(payload)
        # Partial overrides merge onto the service's default config and the
        # merged pair is echoed back — the pre-v1 semantics.  Values were
        # validated by the parser, so this cannot raise for a client-caused
        # reason; the route-level DeprecationWarning above is the single one.
        served = self.service.advise_legacy_async(
            code, beam_size, length_penalty).result()
        self._send_json(200, advice_payload(served))

    def _post_advise_v1(self, payload: dict) -> None:
        request = AdviseRequest.from_dict(payload)
        response = self.service.advise_request(request)
        self._send_json(200, response.to_dict())

    def _post_advise_batch(self, payload: dict) -> None:
        """Async bulk advising: validate atomically, queue, answer 202.

        The ``X-Client-Id`` header is the quota key — callers that send one
        get their own in-flight budget; callers that don't share the
        anonymous bucket.  The 202 is only sent after the submit record is
        fsynced to the WAL (when durability is on), so an acknowledged job
        survives a crash.
        """
        requests = parse_batch_advise(payload)
        # The quota key is adversarial input: bound its length and charset
        # *before* it becomes a quota-map key or a WAL record field.
        client = validate_client_id(self.headers.get("X-Client-Id"))
        job = self.service.submit_job(requests, client=client)
        self._send_json(202, job.to_dict())

    def _post_model_load(self, name: str, payload: dict) -> None:
        """Load a registered model, or register-and-load from a checkpoint.

        ``{"checkpoint": "<dir>"}`` (re-)registers ``name`` from that
        directory first — the hot-deploy path for a freshly trained
        revision; an empty body loads (and warms up) what is already
        registered.  The response reports the loaded entry, revision
        included.
        """
        registry = self.service.registry
        checkpoint = payload.get("checkpoint")
        if checkpoint is not None:
            if not isinstance(checkpoint, str) or not checkpoint.strip():
                raise ApiError.invalid_request(
                    '"checkpoint" must be a checkpoint directory path',
                    field="checkpoint")
            try:
                registry.register(name, checkpoint)
            except ValueError as exc:  # invalid model name
                raise ApiError.invalid_request(str(exc), field="name") from exc
            except RegistryError as exc:  # missing checkpoint directory
                raise ApiError.invalid_parameter(
                    str(exc), field="checkpoint") from exc
        entry = registry.load(name, warm_up=True)
        self._send_json(200, {"api_version": "v1", "model": entry.info()})

    def _post_model_swap(self, name: str, payload: dict) -> None:
        """Atomic alias flip onto ``name`` (drains in-flight, drops none)."""
        alias = payload.get("alias", "default")
        if not isinstance(alias, str) or not alias.strip():
            raise ApiError.invalid_request(
                '"alias" must be a non-empty alias name', field="alias")
        previous, current = self.service.registry.swap(name, alias=alias)
        self._send_json(200, {"api_version": "v1", "alias": alias,
                              "previous": previous, "current": current})

    def _post_drain(self, payload: dict) -> None:
        """Flip this worker into draining mode (idempotent).

        New advise/stream/job submissions answer 503 from here on;
        in-flight work finishes.  The response (and subsequent
        ``/healthz`` bodies) carries the remaining ``pending`` count the
        drain coordinator — the pool router, or an operator's curl loop —
        polls down to zero before terminating the process.
        """
        del payload  # no body fields yet; accepted for forward compatibility
        self._send_json(200, {"api_version": "v1", **self.service.drain()})

    def _post_advise_stream(self, payload: dict) -> None:
        """NDJSON streaming: one chunk per line, flushed as decoded.

        Validation failures raise before any byte is written (a clean
        400/422 envelope).  After the 200 status line is out, nothing may
        send headers again: a client disconnect mid-stream just ends the
        handler, and a decode failure becomes a structured
        ``{"type": "error", ...}`` line — best-effort, since the peer may
        already be gone.
        """
        request = AdviseRequest.from_dict(payload)  # may raise ApiError: 4xx
        stream = self.service.advise_stream(request)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            for chunk in stream:
                try:
                    self.wfile.write(json.dumps(chunk).encode() + b"\n")
                    self.wfile.flush()
                except OSError:
                    return  # client went away; stop consuming the stream
        except Exception as exc:  # noqa: BLE001 — decode failure mid-stream
            envelope = ApiError.internal(f"{type(exc).__name__}: {exc}").to_dict()
            try:
                self.wfile.write(json.dumps({"type": "error", **envelope})
                                 .encode() + b"\n")
            except OSError:
                pass  # peer already gone; nothing left to deliver

    # ------------------------------------------------------------- plumbing

    def _read_json_body(self, *, allow_empty: bool = False) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(ApiError.invalid_request(
                "missing or oversized Content-Length"))
            return None
        body = self.rfile.read(length)
        if not body and allow_empty:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_error(ApiError.invalid_request(f"invalid JSON body: {exc}"))
            return None
        if not isinstance(payload, dict):
            self._send_error(ApiError.invalid_request(
                "request body must be a JSON object"))
            return None
        return payload

    def _send_error(self, error: ApiError) -> None:
        self._send_json(error.status, error.to_dict(),
                        retry_after=error.retry_after)

    def _send_json(self, status: int, payload: dict, *,
                   retry_after: float | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Whole seconds, rounded up: RFC 9110 allows only delta-seconds.
            self.send_header("Retry-After", str(max(1, int(-(-retry_after // 1)))))
        self.end_headers()
        self.wfile.write(body)


def make_server(service: InferenceService, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the smoke mode
    use.
    """
    handler = type("BoundAdviseRequestHandler", (AdviseRequestHandler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def _demo_model(checkpoint: str | None):
    """A trained :class:`MPIRical`: the checkpoint, or a fresh small model."""
    from ..mpirical.pipeline import MPIRical

    if checkpoint:
        return MPIRical.load(checkpoint)
    from ..corpus import MiningConfig, build_corpus
    from ..dataset import build_dataset
    from ..model.config import tiny_config

    print("no --checkpoint given; training a small demo model ...",
          file=sys.stderr)
    corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
    dataset = build_dataset(corpus)
    config = tiny_config()
    config.training.max_steps_per_epoch = 8
    return MPIRical.fit(dataset.splits.train[:40],
                        dataset.splits.validation[:8], config)


def _demo_service(checkpoint: str | None, *, max_batch_size: int, max_wait_ms: float,
                  num_workers: int, cache_capacity: int,
                  registry_root: str | None = None,
                  scheduler: str = "continuous") -> InferenceService:
    """A service over a checkpoint, or over a freshly trained small model."""
    return InferenceService(_demo_model(checkpoint),
                            max_batch_size=max_batch_size,
                            max_wait_ms=max_wait_ms, num_workers=num_workers,
                            cache_capacity=cache_capacity,
                            registry_root=registry_root,
                            scheduler=scheduler)


def _run_smoke(service: InferenceService) -> int:
    """Start the server and exercise every advise route, the model registry
    listing and one async batch-job round-trip."""
    import time
    import urllib.request

    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def post(path: str, payload: dict):
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, response.read()

    def get(path: str):
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=120) as response:
            return response.status, response.read()

    code = "int main() { return 0; }\n"
    failures: list[str] = []
    try:
        status, raw = post("/advise", {"code": code})
        body = json.loads(raw)
        if status != 200 or "generated_code" not in body:
            failures.append(f"/advise: status={status} body={body}")
        status, raw = post("/v1/advise",
                           {"code": code, "strategy": {"name": "greedy"}})
        v1 = json.loads(raw)
        if status != 200 or v1.get("api_version") != "v1":
            failures.append(f"/v1/advise: status={status} body={v1}")
        status, raw = post("/v1/advise/stream", {"code": code})
        lines = [json.loads(line) for line in raw.splitlines() if line]
        if status != 200 or not lines or lines[-1].get("type") != "final":
            failures.append(f"/v1/advise/stream: status={status} lines={lines}")

        status, raw = get("/v1/models")
        models = json.loads(raw)
        if status != 200 or not models.get("models") or not models.get("default"):
            failures.append(f"/v1/models: status={status} body={models}")

        status, raw = post("/v1/advise/batch",
                           {"items": [{"code": code},
                                      {"code": code, "model": "default"}]})
        job = json.loads(raw)
        if status != 202 or not job.get("job_id"):
            failures.append(f"/v1/advise/batch: status={status} body={job}")
        else:
            deadline = time.monotonic() + 120
            while job["status"] != "done" and time.monotonic() < deadline:
                time.sleep(0.2)
                status, raw = get(f"/v1/jobs/{job['job_id']}")
                job = json.loads(raw)
            ok = [item for item in job.get("results", [])
                  if item.get("status") == "ok"]
            if job["status"] != "done" or len(ok) != job["total"]:
                failures.append(f"batch job round-trip: {job}")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    if failures:
        for failure in failures:
            print(f"smoke test FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"smoke test ok: /advise, /v1/advise, /v1/advise/stream, /v1/models "
          f"and a /v1/advise/batch job round-trip all answered "
          f"({len(lines)} stream chunk(s), job {job['job_id']} done)")
    return 0


def _run_smoke_resume(args) -> int:
    """The kill-and-resume smoke: durability must survive a SIGKILL.

    Runs the server as a *subprocess* over a registry root, submits a batch,
    SIGKILLs the process (no shutdown hooks — the WAL is all that's left),
    restarts it over the same root, and asserts the acknowledged job reaches
    ``"done"`` with every item resolved exactly once and that a fresh submit
    gets the *next* job id (ids never recycle across restarts).
    """
    import json as _json
    import os
    import shutil
    import signal
    import socket
    import subprocess
    import tempfile
    import time
    import urllib.error
    import urllib.request

    workdir = tempfile.mkdtemp(prefix="mpirical-smoke-resume-")
    checkpoint = args.checkpoint
    failures: list[str] = []
    proc = None
    try:
        if not checkpoint:
            checkpoint = os.path.join(workdir, "checkpoint")
            _demo_model(None).save(checkpoint)
        registry_root = os.path.join(workdir, "registry")

        # A fixed port the subprocess can rebind after the kill.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        base = f"http://127.0.0.1:{port}"

        src_dir = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [sys.executable, "-m", "repro.serving.server",
               "--checkpoint", checkpoint, "--registry-root", registry_root,
               "--host", "127.0.0.1", "--port", str(port)]

        def start():
            return subprocess.Popen(cmd, env=env,
                                    stdout=subprocess.DEVNULL,
                                    stderr=subprocess.DEVNULL)

        def wait_healthy(deadline: float) -> bool:
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(f"{base}/healthz",
                                                timeout=5) as response:
                        if response.status == 200:
                            return True
                except (urllib.error.URLError, OSError):
                    time.sleep(0.3)
            return False

        def fetch(path: str, payload: dict | None = None,
                  headers: dict | None = None):
            request = urllib.request.Request(
                f"{base}{path}",
                data=_json.dumps(payload).encode() if payload is not None else None,
                headers={"Content-Type": "application/json", **(headers or {})})
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, _json.loads(response.read())

        proc = start()
        if not wait_healthy(time.monotonic() + 120):
            failures.append("first server never became healthy")
            return _smoke_resume_report(failures)

        code = "int main(int argc, char** argv) { return %d; }\n"
        status, job = fetch("/v1/advise/batch",
                            {"items": [{"code": code % n} for n in range(3)]})
        if status != 202 or job.get("job_id") != "job-1":
            failures.append(f"submit: status={status} body={job}")
            return _smoke_resume_report(failures)

        # SIGKILL mid-run: no atexit, no close() — the WAL alone must carry
        # the job across.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        proc = start()
        if not wait_healthy(time.monotonic() + 120):
            failures.append("restarted server never became healthy")
            return _smoke_resume_report(failures)

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, job = fetch("/v1/jobs/job-1")
            if status == 200 and job.get("status") == "done":
                break
            time.sleep(0.3)
        if job.get("status") != "done" or job.get("completed") != job.get("total"):
            failures.append(f"resumed job never finished: {job}")
        elif any(item.get("status") not in ("ok", "error", "dead_letter")
                 for item in job.get("results", [])):
            failures.append(f"resumed job has malformed item envelopes: {job}")

        status, second = fetch("/v1/advise/batch",
                               {"items": [{"code": code % 99}]})
        if status != 202 or second.get("job_id") != "job-2":
            failures.append(f"job ids recycled across restart: "
                            f"status={status} body={second}")
    finally:
        if proc is not None:
            proc.kill()
            proc.wait(timeout=30)
        shutil.rmtree(workdir, ignore_errors=True)
    return _smoke_resume_report(failures, job_id="job-1")


def _smoke_resume_report(failures: list[str], *, job_id: str = "") -> int:
    if failures:
        for failure in failures:
            print(f"kill-and-resume smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"kill-and-resume smoke ok: {job_id} survived SIGKILL, resumed to "
          f"done, and ids did not recycle")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve MPI-RICAL advice over HTTP (stdlib only).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--checkpoint", default=None,
                        help="model directory saved via MPIRical.save(); "
                             "omitted = train a small demo model")
    parser.add_argument("--registry-root", default=None,
                        help="durable-state directory; enables the batch-job "
                             "WAL at <root>/jobs/jobs.wal and crash resume")
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-capacity", type=int, default=256)
    parser.add_argument("--scheduler", choices=("continuous", "static"),
                        default="continuous",
                        help="decode scheduling: iteration-level continuous "
                             "batching (default) or the static micro-batcher")
    parser.add_argument("--smoke", action="store_true",
                        help="start, exercise every advise route, the model "
                             "listing and one batch job round-trip, exit")
    parser.add_argument("--smoke-resume", action="store_true",
                        help="durability smoke: subprocess server + submit + "
                             "SIGKILL + restart + poll the job to done, exit")
    args = parser.parse_args(argv)

    if args.smoke_resume:
        return _run_smoke_resume(args)

    service = _demo_service(args.checkpoint, max_batch_size=args.max_batch_size,
                            max_wait_ms=args.max_wait_ms, num_workers=args.workers,
                            cache_capacity=args.cache_capacity,
                            registry_root=args.registry_root,
                            scheduler=args.scheduler)
    if args.smoke:
        return _run_smoke(service)

    if args.registry_root is not None:
        # Eager recovery: opening the store replays the WAL and re-enqueues
        # unfinished jobs *now*, not on the first batch request.
        snapshot = service.jobs.snapshot()
        if snapshot["resumed_jobs"] or snapshot["retained"]:
            print(f"job WAL replayed: {snapshot['retained']} job(s) retained, "
                  f"{snapshot['resumed_jobs']} resumed, "
                  f"{snapshot['restored_items']} item result(s) restored",
                  file=sys.stderr)

    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving MPI-RICAL advice on http://{host}:{port} "
          f"(POST /v1/advise, /v1/advise/stream, /v1/advise/batch, "
          f"/v1/models/<name>/load|swap, /advise [legacy]; "
          f"GET /v1/models, /v1/jobs/<id>, /healthz, /metrics)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
