"""Stdlib-only JSON HTTP endpoint over :class:`InferenceService`.

Endpoints
---------
``POST /v1/advise``
    Body is a v1 :class:`repro.api.AdviseRequest`:
    ``{"code": "<C source>", "strategy": {"name": "beam", "beam_size": 4}}``
    (``strategy`` optional — greedy by default; may also be a bare name
    string).  Responds with the full :class:`repro.api.AdviseResponse` JSON.
``POST /v1/advise/stream``
    Same body; responds with **NDJSON**: one
    ``{"type": "token", "index": n, "token": "<code token>"}`` line per
    generated token as the model emits it, then a single
    ``{"type": "final", "response": {...}}`` line with the full response.
``POST /v1/advise/batch``
    Async bulk advising: ``{"items": [<advise request>, ...]}`` (optional
    top-level ``model``/``strategy`` defaults) answers **202** with
    ``{"job_id": ..., "status": "queued", ...}`` immediately; the items run
    through the same micro-batcher as interactive traffic.
``GET /v1/jobs/{id}``
    Poll a batch job: status, progress counters and one per-item envelope
    (``{"status": "ok", "response": ...}`` / ``{"status": "error", "error":
    ...}``) per completed item.
``GET /v1/models``
    The model registry: default alias, aliases, and every registered
    model's ``name``/``revision``/``loaded``/lease/request counters.
``POST /v1/models/{name}/load``
    Load (and warm up) a registered model, or register-and-load a new one
    from ``{"checkpoint": "<directory>"}``.
``POST /v1/models/{name}/swap``
    Atomically flip an alias (``{"alias": "default"}`` if omitted) to
    ``{name}``.  The target is loaded before the flip; requests in flight on
    the previous model drain on it — none are dropped — and the cache can
    never serve the old revision's entries afterwards because every cache
    key embeds ``model@revision``.
``POST /advise`` (legacy, deprecated)
    The pre-v1 body (``{"code": ..., "beam_size"?: ..., "length_penalty"?:
    ...}``); delegates to the v1 path through a compatibility shim and
    answers in the legacy shape, bit-identical to previous releases.
``GET /healthz``
    Liveness probe; 200 with ``{"status": "ok", ...}`` plus the registry
    state (default alias identity, per-model loaded/revision flags).
``GET /metrics``
    The :meth:`InferenceService.metrics` snapshot as JSON (includes
    ``requests_by_model`` and the registry snapshot).

Invalid requests get the structured envelope
``{"error": {"code", "message", "field"}}`` from every route: **400** for
malformed bodies (bad JSON, wrong types, unknown fields), **422** for
well-formed requests with out-of-range parameter values (NaN/inf/negative
knobs, oversized beams).  Validation itself lives in
:meth:`repro.api.AdviseRequest.validate` — the server only translates the
raised :class:`repro.api.ApiError`.

The server is a :class:`http.server.ThreadingHTTPServer`: each connection
gets a thread, the threads converge on the service's micro-batcher, and the
batcher turns their concurrency into model batches.  No third-party web
framework is required — the point is that the serving layer runs anywhere the
reproduction itself runs.

Run it::

    PYTHONPATH=src python -m repro.serving.server --port 8080

which trains a small demo model first (or loads ``--checkpoint DIR`` saved
via :meth:`MPIRical.save`).  ``--smoke`` starts the server on an ephemeral
port, exercises ``/advise``, ``/v1/advise`` and ``/v1/advise/stream``
against it, asserts the responses, and exits — the CI smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import AdviseRequest, ApiError, parse_batch_advise, parse_legacy_advise
from ..model.checkpoints import CheckpointError
from ..model.decoding import MAX_BEAM_SIZE  # re-export for back-compat
from ..registry import RegistryError
from .jobs import JobStore
from .service import InferenceService, ServedAdvice

#: Largest accepted request body; a source buffer bigger than this is a
#: client error, not a workload.
MAX_BODY_BYTES = 1 << 20

__all__ = ["AdviseRequestHandler", "make_server", "advice_payload",
           "MAX_BODY_BYTES", "MAX_BEAM_SIZE", "main"]


def advice_payload(served: ServedAdvice) -> dict:
    """The legacy JSON response body for one /advise call (pre-v1 shape).

    The ``beam_size``/``length_penalty`` echo comes from the request's
    *merged* legacy config (:attr:`ServedAdvice.generation`) when present —
    the pre-v1 server echoed the resolved config, penalty and all, even for
    greedy requests — falling back to the strategy-derived pair.
    """
    from ..api import AdviseResponse, advice_items

    payload = AdviseResponse(
        generated_code=served.session.generated_code,
        advice=advice_items(served.session),
        diagnostics=tuple(served.session.parse_diagnostics),
        strategy=served.strategy,
        cached=served.cached,
        latency_ms=served.latency_ms,
        cache_key=served.cache_key,
    ).to_legacy_dict()
    if served.generation is not None:
        payload["beam_size"] = served.generation.beam_size
        payload["length_penalty"] = served.generation.length_penalty
    return payload


def _to_api_error(exc: Exception) -> ApiError:
    """Map any handler exception onto the structured error envelope.

    Registry resolution failures are client errors (422 unknown model /
    409 lifecycle conflict); checkpoint-integrity failures surface the
    :class:`CheckpointError` message (422 — the named artefact is unusable);
    everything else is a 500.
    """
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, RegistryError):
        if exc.kind == "conflict":
            return ApiError("conflict", str(exc), status=409)
        return ApiError.unknown_model(str(exc))
    if isinstance(exc, CheckpointError):
        return ApiError.invalid_parameter(str(exc), field="checkpoint")
    return ApiError.internal(f"{type(exc).__name__}: {exc}")


class AdviseRequestHandler(BaseHTTPRequestHandler):
    """Routes the endpoints onto the shared :class:`InferenceService`."""

    #: Set by :func:`make_server`.
    service: InferenceService

    #: Socket timeout: a client that advertises a Content-Length but never
    #: sends the body must not strand its handler thread forever.
    timeout = 60

    # Tests and the smoke path don't want per-request access logging.
    quiet = False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------- endpoints

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        try:
            if self.path == "/healthz":
                self._get_healthz()
            elif self.path == "/metrics":
                self._send_json(200, self.service.metrics())
            elif self.path == "/v1/models":
                self._send_json(200, {"api_version": "v1",
                                      **self.service.registry.snapshot()})
            elif self.path.startswith("/v1/jobs/"):
                job_id = self.path[len("/v1/jobs/"):]
                self._send_json(200, self.service.jobs.get(job_id).to_dict())
            else:
                self._send_error(
                    ApiError.not_found(f"unknown path {self.path!r}"))
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._send_error(_to_api_error(exc))

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        routes = {
            "/advise": self._post_advise_legacy,
            "/v1/advise": self._post_advise_v1,
            "/v1/advise/stream": self._post_advise_stream,
            "/v1/advise/batch": self._post_advise_batch,
        }
        handler = routes.get(self.path)
        allow_empty = False
        if handler is None:
            handler = self._model_route(self.path)
            allow_empty = True  # lifecycle bodies are optional
        if handler is None:
            self._send_error(ApiError.not_found(f"unknown path {self.path!r}"))
            return
        payload = self._read_json_body(allow_empty=allow_empty)
        if payload is None:
            return
        try:
            handler(payload)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            self._send_error(_to_api_error(exc))

    def _model_route(self, path: str):
        """Resolve ``/v1/models/{name}/load`` and ``.../swap`` to handlers."""
        parts = path.split("/")
        if len(parts) != 5 or parts[:3] != ["", "v1", "models"] or not parts[3]:
            return None
        name, action = parts[3], parts[4]
        if action == "load":
            return lambda payload: self._post_model_load(name, payload)
        if action == "swap":
            return lambda payload: self._post_model_swap(name, payload)
        return None

    def _get_healthz(self) -> None:
        registry = self.service.registry.snapshot()
        self._send_json(200, {
            "status": "ok",
            "default": registry["default"],
            "models": {model["name"]: {"revision": model["revision"],
                                       "loaded": model["loaded"],
                                       "requests_served": model["requests_served"]}
                       for model in registry["models"]},
        })

    def _post_advise_legacy(self, payload: dict) -> None:
        """The pre-v1 route: legacy body in, legacy body out, v1 underneath."""
        warnings.warn(
            "POST /advise is deprecated; use POST /v1/advise",
            DeprecationWarning, stacklevel=2)
        code, beam_size, length_penalty = parse_legacy_advise(payload)
        # Partial overrides merge onto the service's default config and the
        # merged pair is echoed back — the pre-v1 semantics.  Values were
        # validated by the parser, so this cannot raise for a client-caused
        # reason; the route-level DeprecationWarning above is the single one.
        served = self.service.advise_legacy_async(
            code, beam_size, length_penalty).result()
        self._send_json(200, advice_payload(served))

    def _post_advise_v1(self, payload: dict) -> None:
        request = AdviseRequest.from_dict(payload)
        response = self.service.advise_request(request)
        self._send_json(200, response.to_dict())

    def _post_advise_batch(self, payload: dict) -> None:
        """Async bulk advising: validate atomically, queue, answer 202."""
        requests = parse_batch_advise(payload)
        job = self.service.jobs.submit(requests)
        self._send_json(202, job.to_dict())

    def _post_model_load(self, name: str, payload: dict) -> None:
        """Load a registered model, or register-and-load from a checkpoint.

        ``{"checkpoint": "<dir>"}`` (re-)registers ``name`` from that
        directory first — the hot-deploy path for a freshly trained
        revision; an empty body loads (and warms up) what is already
        registered.  The response reports the loaded entry, revision
        included.
        """
        registry = self.service.registry
        checkpoint = payload.get("checkpoint")
        if checkpoint is not None:
            if not isinstance(checkpoint, str) or not checkpoint.strip():
                raise ApiError.invalid_request(
                    '"checkpoint" must be a checkpoint directory path',
                    field="checkpoint")
            try:
                registry.register(name, checkpoint)
            except ValueError as exc:  # invalid model name
                raise ApiError.invalid_request(str(exc), field="name") from exc
            except RegistryError as exc:  # missing checkpoint directory
                raise ApiError.invalid_parameter(
                    str(exc), field="checkpoint") from exc
        entry = registry.load(name, warm_up=True)
        self._send_json(200, {"api_version": "v1", "model": entry.info()})

    def _post_model_swap(self, name: str, payload: dict) -> None:
        """Atomic alias flip onto ``name`` (drains in-flight, drops none)."""
        alias = payload.get("alias", "default")
        if not isinstance(alias, str) or not alias.strip():
            raise ApiError.invalid_request(
                '"alias" must be a non-empty alias name', field="alias")
        previous, current = self.service.registry.swap(name, alias=alias)
        self._send_json(200, {"api_version": "v1", "alias": alias,
                              "previous": previous, "current": current})

    def _post_advise_stream(self, payload: dict) -> None:
        """NDJSON streaming: one chunk per line, flushed as decoded.

        Validation failures raise before any byte is written (a clean
        400/422 envelope).  After the 200 status line is out, nothing may
        send headers again: a client disconnect mid-stream just ends the
        handler, and a decode failure becomes a structured
        ``{"type": "error", ...}`` line — best-effort, since the peer may
        already be gone.
        """
        request = AdviseRequest.from_dict(payload)  # may raise ApiError: 4xx
        stream = self.service.advise_stream(request)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            for chunk in stream:
                try:
                    self.wfile.write(json.dumps(chunk).encode() + b"\n")
                    self.wfile.flush()
                except OSError:
                    return  # client went away; stop consuming the stream
        except Exception as exc:  # noqa: BLE001 — decode failure mid-stream
            envelope = ApiError.internal(f"{type(exc).__name__}: {exc}").to_dict()
            try:
                self.wfile.write(json.dumps({"type": "error", **envelope})
                                 .encode() + b"\n")
            except OSError:
                pass  # peer already gone; nothing left to deliver

    # ------------------------------------------------------------- plumbing

    def _read_json_body(self, *, allow_empty: bool = False) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(ApiError.invalid_request(
                "missing or oversized Content-Length"))
            return None
        body = self.rfile.read(length)
        if not body and allow_empty:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_error(ApiError.invalid_request(f"invalid JSON body: {exc}"))
            return None
        if not isinstance(payload, dict):
            self._send_error(ApiError.invalid_request(
                "request body must be a JSON object"))
            return None
        return payload

    def _send_error(self, error: ApiError) -> None:
        self._send_json(error.status, error.to_dict())

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(service: InferenceService, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the smoke mode
    use.
    """
    handler = type("BoundAdviseRequestHandler", (AdviseRequestHandler,),
                   {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def _demo_service(checkpoint: str | None, *, max_batch_size: int, max_wait_ms: float,
                  num_workers: int, cache_capacity: int) -> InferenceService:
    """A service over a checkpoint, or over a freshly trained small model."""
    from ..mpirical.pipeline import MPIRical

    if checkpoint:
        mpirical = MPIRical.load(checkpoint)
    else:
        from ..corpus import MiningConfig, build_corpus
        from ..dataset import build_dataset
        from ..model.config import tiny_config

        print("no --checkpoint given; training a small demo model ...",
              file=sys.stderr)
        corpus = build_corpus(MiningConfig(num_repositories=35, seed=101))
        dataset = build_dataset(corpus)
        config = tiny_config()
        config.training.max_steps_per_epoch = 8
        mpirical = MPIRical.fit(dataset.splits.train[:40],
                                dataset.splits.validation[:8], config)
    return InferenceService(mpirical, max_batch_size=max_batch_size,
                           max_wait_ms=max_wait_ms, num_workers=num_workers,
                           cache_capacity=cache_capacity)


def _run_smoke(service: InferenceService) -> int:
    """Start the server and exercise every advise route, the model registry
    listing and one async batch-job round-trip."""
    import time
    import urllib.request

    server = make_server(service, port=0, quiet=True)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def post(path: str, payload: dict):
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, response.read()

    def get(path: str):
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=120) as response:
            return response.status, response.read()

    code = "int main() { return 0; }\n"
    failures: list[str] = []
    try:
        status, raw = post("/advise", {"code": code})
        body = json.loads(raw)
        if status != 200 or "generated_code" not in body:
            failures.append(f"/advise: status={status} body={body}")
        status, raw = post("/v1/advise",
                           {"code": code, "strategy": {"name": "greedy"}})
        v1 = json.loads(raw)
        if status != 200 or v1.get("api_version") != "v1":
            failures.append(f"/v1/advise: status={status} body={v1}")
        status, raw = post("/v1/advise/stream", {"code": code})
        lines = [json.loads(line) for line in raw.splitlines() if line]
        if status != 200 or not lines or lines[-1].get("type") != "final":
            failures.append(f"/v1/advise/stream: status={status} lines={lines}")

        status, raw = get("/v1/models")
        models = json.loads(raw)
        if status != 200 or not models.get("models") or not models.get("default"):
            failures.append(f"/v1/models: status={status} body={models}")

        status, raw = post("/v1/advise/batch",
                           {"items": [{"code": code},
                                      {"code": code, "model": "default"}]})
        job = json.loads(raw)
        if status != 202 or not job.get("job_id"):
            failures.append(f"/v1/advise/batch: status={status} body={job}")
        else:
            deadline = time.monotonic() + 120
            while job["status"] != "done" and time.monotonic() < deadline:
                time.sleep(0.2)
                status, raw = get(f"/v1/jobs/{job['job_id']}")
                job = json.loads(raw)
            ok = [item for item in job.get("results", [])
                  if item.get("status") == "ok"]
            if job["status"] != "done" or len(ok) != job["total"]:
                failures.append(f"batch job round-trip: {job}")
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    if failures:
        for failure in failures:
            print(f"smoke test FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"smoke test ok: /advise, /v1/advise, /v1/advise/stream, /v1/models "
          f"and a /v1/advise/batch job round-trip all answered "
          f"({len(lines)} stream chunk(s), job {job['job_id']} done)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve MPI-RICAL advice over HTTP (stdlib only).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--checkpoint", default=None,
                        help="model directory saved via MPIRical.save(); "
                             "omitted = train a small demo model")
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-capacity", type=int, default=256)
    parser.add_argument("--smoke", action="store_true",
                        help="start, exercise every advise route, the model "
                             "listing and one batch job round-trip, exit")
    args = parser.parse_args(argv)

    service = _demo_service(args.checkpoint, max_batch_size=args.max_batch_size,
                            max_wait_ms=args.max_wait_ms, num_workers=args.workers,
                            cache_capacity=args.cache_capacity)
    if args.smoke:
        return _run_smoke(service)

    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving MPI-RICAL advice on http://{host}:{port} "
          f"(POST /v1/advise, /v1/advise/stream, /v1/advise/batch, "
          f"/v1/models/<name>/load|swap, /advise [legacy]; "
          f"GET /v1/models, /v1/jobs/<id>, /healthz, /metrics)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
