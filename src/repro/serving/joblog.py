"""Append-only JSONL write-ahead log for the durable batch-job tier.

The PR 5 :class:`repro.serving.jobs.JobStore` kept everything in memory: a
process restart silently dropped every queued and running job.  ``JobLog``
gives the store a crash-safe spine with three properties:

* **append-only state transitions** — every externally visible change is one
  JSON record appended to ``jobs.wal`` (``submit`` / ``attempt`` / ``item`` /
  ``status`` / ``evict`` plus a ``meta`` watermark).  Nothing is ever
  updated in place, so a crash at any byte offset loses at most the torn
  tail of the file, never the history before it;
* **fsync batching** — appends land in the OS page cache immediately
  (``flush``), and ``fsync`` runs at transition *boundaries* (a submit
  acknowledgement, a job completing, an explicit :meth:`sync`) or every
  ``sync_every`` records, whichever comes first.  One fsync covers a whole
  fan-out of item records instead of paying the disk once per item;
* **torn-tail-tolerant replay** — :meth:`replay` yields every decodable
  record and counts (rather than raises on) trailing garbage, which is
  exactly what a record written mid-crash looks like.

On every reopen the store replays the log, reconstructs its state, and asks
for :meth:`rewrite` — a compaction that writes the *current* state as a
fresh record sequence to a temp file and atomically renames it over the old
log.  The WAL therefore stays proportional to retained jobs, not to the
server's lifetime, and the rename is the only non-append mutation (atomic
on POSIX).

A closed log silently drops appends instead of raising: the one writer that
can outlive :meth:`close` is a worker thread wedged on a hung decode, and
its late, bounded-join-abandoned writes must not corrupt a WAL that a
successor store may already have compacted and reopened.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable

#: WAL filename under the job-log directory (``<registry root>/jobs/``).
WAL_FILENAME = "jobs.wal"

#: Record-format version stamped on the compaction ``meta`` record.
WAL_VERSION = 1


class JobLog:
    """One append-only JSONL file of job-state transitions.

    Thread-safe: request threads append ``submit`` records while the worker
    appends ``attempt``/``item``/``status`` records; a single internal lock
    serialises them (and never nests inside the store's lock, so the two can
    be taken in either order without deadlock).
    """

    def __init__(self, directory: str | Path, *, sync_every: int = 16) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.directory = Path(directory)
        self.path = self.directory / WAL_FILENAME
        self.sync_every = sync_every
        self._lock = threading.Lock()
        self._file = None
        self._unsynced = 0
        self._closed = False
        #: Appends dropped because the log was already closed (a wedged
        #: worker finishing after a bounded-join close) — surfaced in the
        #: store's snapshot so an operator can see it happened.
        self.dropped_appends = 0
        #: Undecodable lines skipped by the last :meth:`replay` (torn tail).
        self.torn_records = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Stale compaction temp files removed on open.  :meth:`rewrite`
        #: writes ``jobs.wal.tmp`` and renames it over the live WAL; a crash
        #: between the write and the rename leaves the tmp file behind, and
        #: without cleanup every such crash would leak one orphan forever
        #: (and a later compaction would silently reuse a stale path).  The
        #: tmp file is *never* recovery state — the rename is atomic, so the
        #: live WAL is always the authority — which is what makes deleting
        #: it on reopen safe.
        self.orphaned_tmp_removed = 0
        for orphan in self.directory.glob(WAL_FILENAME + "*.tmp"):
            try:
                orphan.unlink()
                self.orphaned_tmp_removed += 1
            except OSError:
                pass  # already gone, or unreadable — replay works regardless

    # ----------------------------------------------------------------- write

    def _open_locked(self) -> None:
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict[str, Any], *, sync: bool = False) -> None:
        """Append one record; ``sync=True`` forces the batched fsync now."""
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._closed:
                self.dropped_appends += 1
                return
            self._open_locked()
            self._file.write(line + "\n")
            self._file.flush()
            self._unsynced += 1
            if sync or self._unsynced >= self.sync_every:
                os.fsync(self._file.fileno())
                self._unsynced = 0

    def sync(self) -> None:
        """Flush the batched fsync window (a transition boundary)."""
        with self._lock:
            if self._closed or self._file is None or self._unsynced == 0:
                return
            os.fsync(self._file.fileno())
            self._unsynced = 0

    # ------------------------------------------------------------------ read

    def replay(self) -> list[dict[str, Any]]:
        """Every decodable record currently on disk, in append order.

        Lines that fail to decode — a torn tail from a crash mid-write, or
        any later garbage — are skipped and counted in
        :attr:`torn_records`; replay never raises for file *content*.
        """
        records: list[dict[str, Any]] = []
        self.torn_records = 0
        if not self.path.exists():
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.torn_records += 1
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    self.torn_records += 1
        return records

    # ------------------------------------------------------------ compaction

    def rewrite(self, records: Iterable[dict[str, Any]]) -> None:
        """Atomically replace the WAL with ``records`` (compaction).

        Writes to ``jobs.wal.tmp``, fsyncs, then renames over the live file
        — a crash mid-compaction leaves the old WAL untouched.  Reopens the
        append handle on the new file.
        """
        tmp = self.path.with_suffix(".wal.tmp")
        with self._lock:
            if self._closed:
                return
            if self._file is not None:
                self._file.close()
                self._file = None
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._unsynced = 0
            self._open_locked()

    # ----------------------------------------------------------------- close

    def close(self) -> None:
        """Fsync outstanding records and drop all future appends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                if self._unsynced:
                    os.fsync(self._file.fileno())
                    self._unsynced = 0
                self._file.close()
                self._file = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
