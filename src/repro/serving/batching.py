"""Dynamic micro-batching: coalesce concurrent requests into model batches.

A single NumPy decode step costs almost the same for one sequence as for
eight — the per-step Python/autograd overhead dominates at serving sizes — so
the scheduler's job is to trade a bounded sliver of latency for batch
occupancy.  The policy is the classic dynamic micro-batching rule used by
production inference servers:

* a batch is flushed **immediately** once ``max_batch_size`` compatible
  requests are waiting, and
* otherwise when the *oldest* waiting request has been queued for
  ``max_wait_ms`` — a hard per-request queueing-latency bound that does not
  reset as later requests trickle in.

Requests may additionally carry a **group key** (``group_key=``): only
requests with equal keys are flushed together.  The serving layer uses this
to keep generation configs homogeneous per batch — a beam-4 request and a
greedy request cannot share one decode, because the whole batch runs through
a single decoder loop.  With no ``group_key`` every request is compatible
and behaviour is the classic single-queue batcher.

Requests are submitted from any thread and resolved through
:class:`concurrent.futures.Future`, so callers can block (``result()``) or
compose asynchronously.  A small pool of worker threads pulls batches off the
shared queue; while one worker is inside the model (NumPy releases the GIL in
its BLAS kernels) another can already be collecting the next batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable


@dataclass
class _PendingRequest:
    """One queued request: payload, group, completion future, enqueue time."""

    payload: Any
    group: Hashable = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)


#: Sentinel distinguishing "no group is full" from a full ``None`` group.
_NO_GROUP = object()


class MicroBatcher:
    """Collects submitted payloads into batches and hands them to a worker pool.

    Parameters
    ----------
    process_batch:
        Called with a list of payloads (1..``max_batch_size``, all from one
        group); must return a list of results of the same length, in the same
        order.  Exceptions fail every request in the flushed batch.
    max_batch_size:
        Flush threshold and upper bound on a batch.
    max_wait_ms:
        Maximum time a request may sit in the queue waiting for company.
    num_workers:
        Worker threads pulling batches; with one worker batches are strictly
        sequential, with more they overlap (useful because the model's BLAS
        kernels release the GIL).
    group_key:
        Optional ``payload -> hashable`` function; only payloads with equal
        keys share a batch.  ``None`` puts every payload in one group.
    on_batch:
        Optional observer called with ``(batch_size, group)`` for each
        flushed batch (metrics).
    """

    def __init__(self, process_batch: Callable[[list[Any]], list[Any]], *,
                 max_batch_size: int = 8, max_wait_ms: float = 5.0,
                 num_workers: int = 1,
                 group_key: Callable[[Any], Hashable] | None = None,
                 on_batch: Callable[[int, Hashable], None] | None = None) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.process_batch = process_batch
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1000.0
        self.group_key = group_key
        self.on_batch = on_batch
        #: One FIFO per group keeps every scheduling decision O(#groups)
        #: (a handful of generation configs), not O(queued requests).
        self._queues: dict[Hashable, deque[_PendingRequest]] = {}
        self._pending = 0
        self._cond = threading.Condition()
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"micro-batcher-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------- api

    def submit(self, payload: Any) -> Future:
        """Enqueue ``payload``; the returned future resolves to its result."""
        group = self.group_key(payload) if self.group_key is not None else None
        request = _PendingRequest(payload, group=group)
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._queues.setdefault(group, deque()).append(request)
            self._pending += 1
            self._cond.notify_all()
        return request.future

    def pending(self) -> int:
        """Requests currently queued (not yet flushed to a worker)."""
        with self._cond:
            return self._pending

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; already-queued requests are still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _oldest_group(self) -> tuple[Hashable, float]:
        """The group whose head (oldest) request was enqueued earliest.

        Caller holds the lock and guarantees at least one queued request.
        """
        best_group: Hashable = _NO_GROUP
        best_time = float("inf")
        for group, queue in self._queues.items():
            if queue[0].enqueued_at < best_time:
                best_group, best_time = group, queue[0].enqueued_at
        return best_group, best_time

    def _full_group(self) -> Hashable:
        """The full group (>= ``max_batch_size`` waiting) with the oldest head.

        Returns :data:`_NO_GROUP` when no group is full (``None`` is a valid
        group key).  Caller holds the lock.
        """
        best_group: Hashable = _NO_GROUP
        best_time = float("inf")
        for group, queue in self._queues.items():
            if len(queue) >= self.max_batch_size and queue[0].enqueued_at < best_time:
                best_group, best_time = group, queue[0].enqueued_at
        return best_group

    def _collect_batch(self) -> list[_PendingRequest] | None:
        """Block until a batch is due (full group, timed out, or closing); pop it.

        Returns None when the batcher is closed and the queue is drained —
        the worker's signal to exit.
        """
        with self._cond:
            while True:
                if self._pending:
                    group, head_time = self._oldest_group()
                    if self._closed:
                        break
                    remaining = head_time + self.max_wait - time.monotonic()
                    # The oldest request's deadline outranks the size trigger:
                    # under sustained traffic from another (always-full) group,
                    # checking fullness first would starve minority groups past
                    # their hard max_wait_ms bound.
                    if remaining <= 0:
                        break
                    full = self._full_group()
                    if full is not _NO_GROUP:
                        group = full
                        break
                    self._cond.wait(timeout=remaining)
                else:
                    if self._closed:
                        return None
                    self._cond.wait()
            return self._pop_group(group)

    def _pop_group(self, group: Hashable) -> list[_PendingRequest]:
        """Remove up to ``max_batch_size`` queued requests of ``group``, in order.

        Other groups' queues (and their enqueue timestamps, so their
        ``max_wait_ms`` bound) are untouched.  Caller holds the lock.
        """
        queue = self._queues[group]
        batch = [queue.popleft()
                 for _ in range(min(self.max_batch_size, len(queue)))]
        if not queue:
            del self._queues[group]
        self._pending -= len(batch)
        return batch

    def _run_batch(self, batch: list[_PendingRequest]) -> None:
        if self.on_batch is not None:
            try:
                self.on_batch(len(batch), batch[0].group)
            except Exception:  # noqa: BLE001 — observers are best-effort; a
                pass           # metrics bug must not strand the batch's futures
        payloads = [request.payload for request in batch]
        try:
            results = self.process_batch(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"process_batch returned {len(results)} results "
                    f"for a batch of {len(batch)}")
        except Exception as exc:  # noqa: BLE001 — failures must reach callers
            for request in batch:
                try:
                    request.future.set_exception(exc)
                except InvalidStateError:
                    pass  # caller cancelled; nothing to deliver
            return
        for request, result in zip(batch, results):
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # caller cancelled; nothing to deliver
