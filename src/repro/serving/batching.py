"""Dynamic micro-batching: coalesce concurrent requests into model batches.

A single NumPy decode step costs almost the same for one sequence as for
eight — the per-step Python/autograd overhead dominates at serving sizes — so
the scheduler's job is to trade a bounded sliver of latency for batch
occupancy.  The policy is the classic dynamic micro-batching rule used by
production inference servers:

* a batch is flushed **immediately** once ``max_batch_size`` requests are
  waiting, and
* otherwise when the *oldest* waiting request has been queued for
  ``max_wait_ms`` — a hard per-request queueing-latency bound that does not
  reset as later requests trickle in.

Requests are submitted from any thread and resolved through
:class:`concurrent.futures.Future`, so callers can block (``result()``) or
compose asynchronously.  A small pool of worker threads pulls batches off the
shared queue; while one worker is inside the model (NumPy releases the GIL in
its BLAS kernels) another can already be collecting the next batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class _PendingRequest:
    """One queued request: payload, completion future, enqueue timestamp."""

    payload: Any
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)


class MicroBatcher:
    """Collects submitted payloads into batches and hands them to a worker pool.

    Parameters
    ----------
    process_batch:
        Called with a list of payloads (1..``max_batch_size``); must return a
        list of results of the same length, in the same order.  Exceptions
        fail every request in the flushed batch.
    max_batch_size:
        Flush threshold and upper bound on a batch.
    max_wait_ms:
        Maximum time a request may sit in the queue waiting for company.
    num_workers:
        Worker threads pulling batches; with one worker batches are strictly
        sequential, with more they overlap (useful because the model's BLAS
        kernels release the GIL).
    on_batch:
        Optional observer called with each flushed batch's size (metrics).
    """

    def __init__(self, process_batch: Callable[[list[Any]], list[Any]], *,
                 max_batch_size: int = 8, max_wait_ms: float = 5.0,
                 num_workers: int = 1,
                 on_batch: Callable[[int], None] | None = None) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.process_batch = process_batch
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1000.0
        self.on_batch = on_batch
        self._queue: deque[_PendingRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"micro-batcher-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------- api

    def submit(self, payload: Any) -> Future:
        """Enqueue ``payload``; the returned future resolves to its result."""
        request = _PendingRequest(payload)
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def pending(self) -> int:
        """Requests currently queued (not yet flushed to a worker)."""
        with self._cond:
            return len(self._queue)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; already-queued requests are still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _worker_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _collect_batch(self) -> list[_PendingRequest] | None:
        """Block until a batch is due (full, timed out, or closing); pop it.

        Returns None when the batcher is closed and the queue is drained —
        the worker's signal to exit.
        """
        with self._cond:
            while True:
                if self._queue:
                    if len(self._queue) >= self.max_batch_size or self._closed:
                        break
                    remaining = (self._queue[0].enqueued_at + self.max_wait
                                 - time.monotonic())
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                else:
                    if self._closed:
                        return None
                    self._cond.wait()
            size = min(self.max_batch_size, len(self._queue))
            return [self._queue.popleft() for _ in range(size)]

    def _run_batch(self, batch: list[_PendingRequest]) -> None:
        if self.on_batch is not None:
            try:
                self.on_batch(len(batch))
            except Exception:  # noqa: BLE001 — observers are best-effort; a
                pass           # metrics bug must not strand the batch's futures
        payloads = [request.payload for request in batch]
        try:
            results = self.process_batch(payloads)
            if len(results) != len(batch):
                raise RuntimeError(
                    f"process_batch returned {len(results)} results "
                    f"for a batch of {len(batch)}")
        except Exception as exc:  # noqa: BLE001 — failures must reach callers
            for request in batch:
                try:
                    request.future.set_exception(exc)
                except InvalidStateError:
                    pass  # caller cancelled; nothing to deliver
            return
        for request, result in zip(batch, results):
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # caller cancelled; nothing to deliver
