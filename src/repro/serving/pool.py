"""Self-healing multi-process worker pool for the serving layer.

NumPy decode is GIL-bound: one ``server.py`` process caps out a single core
complex and — worse for the robustness story — is a single point of failure.
:class:`WorkerPool` turns the single server into a shared-nothing fleet:

* **N subprocess replicas** of ``repro.serving.server``, each owning its own
  model registry (and durable job WAL) under a per-worker directory of the
  shared pool root, all loading the same checkpoint.  Nothing is shared
  between worker processes but the read-only checkpoint files, so one
  worker's death cannot corrupt another's state;
* **supervision with restart backoff** — a monitor thread polls every
  worker; a crashed one (SIGKILL, OOM, bug) is respawned after an
  exponential per-worker backoff (reset once the worker stays up for
  ``stable_seconds``), so a crash-looping worker cannot spin the supervisor
  while a one-off kill restarts almost immediately.  Because workers keep
  their ports and registry roots across restarts, a respawned worker replays
  its job WAL and resumes its unfinished jobs — the PR 6 crash-safety story
  carried up to the process level;
* **fault-injection hooks** — :meth:`WorkerPool.kill` delivers an arbitrary
  signal to a chosen worker, which is how the chaos tests (and the router's
  ``--smoke-chaos`` CI drill) murder replicas under load.

The pool is transport-agnostic: it spawns and supervises processes, while
routing, health checking and retries live in :mod:`repro.serving.router`.
The ``command_for`` factory decides what a worker *is* — the default
(:func:`server_worker_command`) runs the real HTTP server, and the chaos
tests substitute a lightweight stub with the same wire contract.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

__all__ = ["WorkerSpec", "WorkerHandle", "WorkerPool",
           "allocate_port", "server_worker_command"]


def allocate_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port by binding and releasing it.

    The worker keeps this port across restarts (the router's ring is built
    over stable worker addresses), which is why the pool allocates ports up
    front instead of letting each worker bind port 0.
    """
    probe = socket.socket()
    try:
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


@dataclass(frozen=True)
class WorkerSpec:
    """The stable identity of one pool slot: id, address, state directory."""

    worker_id: str
    host: str
    port: int
    #: Per-worker durable-state directory (registry root + job WAL); kept
    #: across restarts so a respawned worker resumes its own jobs.
    registry_root: Path

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}"


def server_worker_command(checkpoint: str | Path,
                          *, extra_args: Sequence[str] = ()) -> Callable:
    """A ``command_for`` factory running the real ``repro.serving.server``."""

    def command(spec: WorkerSpec) -> list[str]:
        return [sys.executable, "-m", "repro.serving.server",
                "--host", spec.host, "--port", str(spec.port),
                "--checkpoint", str(checkpoint),
                "--registry-root", str(spec.registry_root),
                *extra_args]

    return command


class WorkerHandle:
    """One supervised worker slot: its spec, live process and restart state."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.proc: subprocess.Popen | None = None
        #: False once the pool deliberately stopped this worker — the
        #: monitor only respawns workers that are *supposed* to be up.
        self.desired_up = True
        self.restarts = 0
        #: Restarts since the worker last proved stable; drives the
        #: exponential backoff and resets after ``stable_seconds`` of uptime.
        self.consecutive_restarts = 0
        self.started_at: float | None = None
        self.restart_at: float | None = None
        self.last_exit_code: int | None = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def info(self) -> dict[str, Any]:
        now = time.monotonic()
        return {
            "id": self.spec.worker_id,
            "endpoint": self.spec.endpoint,
            "pid": self.pid,
            "alive": self.alive,
            "desired_up": self.desired_up,
            "restarts": self.restarts,
            "consecutive_restarts": self.consecutive_restarts,
            "last_exit_code": self.last_exit_code,
            "uptime_seconds": (now - self.started_at
                               if self.alive and self.started_at is not None
                               else None),
            "restart_in_seconds": (max(0.0, self.restart_at - now)
                                   if self.desired_up and not self.alive
                                   and self.restart_at is not None else None),
        }


class WorkerPool:
    """Spawn and supervise N worker subprocesses with restart backoff.

    Parameters
    ----------
    num_workers:
        Replica count.
    command_for:
        ``WorkerSpec -> argv`` factory for one worker process.
    root:
        Pool state directory; each worker owns ``<root>/workers/<id>``.
    host:
        Interface the workers bind (ports are allocated automatically).
    restart_backoff_base / restart_backoff_max:
        Exponential respawn delay: ``base * 2**(consecutive_restarts - 1)``
        capped at ``max`` — one kill restarts in ``base`` seconds, a crash
        loop converges to one attempt per ``max`` seconds.
    stable_seconds:
        Uptime after which the consecutive-restart counter (and so the
        backoff) resets.
    env:
        Extra environment merged over ``os.environ`` for the workers
        (the tests inject ``PYTHONPATH`` here).
    """

    def __init__(self, num_workers: int, command_for: Callable, *,
                 root: str | Path, host: str = "127.0.0.1",
                 restart_backoff_base: float = 0.25,
                 restart_backoff_max: float = 5.0,
                 stable_seconds: float = 10.0,
                 poll_interval: float = 0.05,
                 env: dict[str, str] | None = None,
                 quiet: bool = True) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if restart_backoff_base <= 0 or restart_backoff_max < restart_backoff_base:
            raise ValueError("restart backoff must satisfy 0 < base <= max")
        self.command_for = command_for
        self.root = Path(root)
        self.host = host
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_max = restart_backoff_max
        self.stable_seconds = stable_seconds
        self.poll_interval = poll_interval
        self.quiet = quiet
        self._env = dict(os.environ)
        if env:
            self._env.update(env)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._workers: dict[str, WorkerHandle] = {}
        for index in range(num_workers):
            worker_id = f"w{index}"
            spec = WorkerSpec(worker_id=worker_id, host=host,
                              port=allocate_port(host),
                              registry_root=self.root / "workers" / worker_id)
            self._workers[worker_id] = WorkerHandle(spec)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "WorkerPool":
        """Spawn every worker and start the supervision loop."""
        with self._lock:
            for handle in self._workers.values():
                if not handle.alive:
                    self._spawn_locked(handle)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="worker-pool-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Terminate every worker and stop supervising."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
        with self._lock:
            handles = list(self._workers.values())
            for handle in handles:
                handle.desired_up = False
        for handle in handles:
            self._terminate_process(handle, timeout=timeout)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ operations

    def kill(self, worker_id: str, sig: int = signal.SIGKILL) -> bool:
        """Deliver ``sig`` to a worker — the fault-injection entry point.

        The supervisor sees the death on its next poll and respawns the
        worker after its backoff (``desired_up`` stays True).  Returns False
        when the worker was not running.
        """
        handle = self._handle(worker_id)
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            return False
        proc.send_signal(sig)
        return True

    def restart(self, worker_id: str, *, timeout: float = 10.0) -> None:
        """Deliberate bounce: terminate now, respawn immediately.

        Unlike a crash, an operator-requested restart (the tail of a drain)
        pays no backoff — the worker was healthy, its replacement should be
        routable as soon as it boots.
        """
        handle = self._handle(worker_id)
        self._terminate_process(handle, timeout=timeout)
        with self._lock:
            handle.desired_up = True
            handle.consecutive_restarts = 0
            handle.restart_at = time.monotonic()

    def stop_worker(self, worker_id: str, *, timeout: float = 10.0) -> None:
        """Take one worker down without respawn (scale-in / maintenance)."""
        handle = self._handle(worker_id)
        with self._lock:
            handle.desired_up = False
        self._terminate_process(handle, timeout=timeout)

    # ------------------------------------------------------------- reporting

    def specs(self) -> list[WorkerSpec]:
        with self._lock:
            return [handle.spec for handle in self._workers.values()]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            workers = [handle.info() for handle in self._workers.values()]
        return {
            "workers": workers,
            "alive": sum(1 for worker in workers if worker["alive"]),
            "size": len(workers),
            "restarts_total": sum(worker["restarts"] for worker in workers),
        }

    # ------------------------------------------------------------- internals

    def _handle(self, worker_id: str) -> WorkerHandle:
        with self._lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            raise KeyError(f"unknown worker {worker_id!r}")
        return handle

    def _spawn_locked(self, handle: WorkerHandle) -> None:
        handle.spec.registry_root.mkdir(parents=True, exist_ok=True)
        output = subprocess.DEVNULL if self.quiet else None
        handle.proc = subprocess.Popen(self.command_for(handle.spec),
                                       env=self._env,
                                       stdout=output, stderr=output)
        handle.started_at = time.monotonic()
        handle.restart_at = None

    def _terminate_process(self, handle: WorkerHandle, *,
                           timeout: float) -> None:
        proc = handle.proc
        if proc is None:
            return
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout)
        handle.last_exit_code = proc.returncode
        handle.proc = None

    def _backoff(self, consecutive_restarts: int) -> float:
        delay = self.restart_backoff_base * (2 ** max(0, consecutive_restarts - 1))
        return min(delay, self.restart_backoff_max)

    def _monitor_loop(self) -> None:
        """Poll every worker; respawn the dead after their backoff."""
        while not self._stop.wait(self.poll_interval):
            now = time.monotonic()
            with self._lock:
                for handle in self._workers.values():
                    if not handle.desired_up:
                        continue
                    proc = handle.proc
                    if proc is not None:
                        if proc.poll() is None:
                            # Stable uptime earns the backoff reset.
                            if (handle.consecutive_restarts
                                    and handle.started_at is not None
                                    and now - handle.started_at
                                    >= self.stable_seconds):
                                handle.consecutive_restarts = 0
                            continue
                        # Died behind our back: schedule the respawn.
                        handle.last_exit_code = proc.returncode
                        handle.proc = None
                        handle.restarts += 1
                        handle.consecutive_restarts += 1
                        handle.restart_at = now + self._backoff(
                            handle.consecutive_restarts)
                        if not self.quiet:
                            print(f"worker {handle.spec.worker_id} exited "
                                  f"with {handle.last_exit_code}; respawning "
                                  f"in {handle.restart_at - now:.2f}s",
                                  file=sys.stderr)
                    elif (handle.restart_at is not None
                          and now >= handle.restart_at):
                        self._spawn_locked(handle)
