"""Continuous batching: an iteration-level scheduler with KV-row join/retire.

The micro-batcher (:mod:`repro.serving.batching`) schedules at *request*
granularity: a batch forms, decodes to completion, and only then does the
next batch start.  Under mixed workloads that wastes most of the decoder —
a batch of one long and seven short requests spends the tail decoding a
single row while seven slots sit idle and new arrivals queue behind the
whole flush.

This module schedules at *iteration* granularity (the continuous batching
of Orca, and of production LLM servers since): between any two decode
steps, finished requests **retire** out of the in-flight batch and queued
requests **join** it, so the batch stays full whenever there is work.  The
machinery that makes a mid-decode join exact — per-row KV-cache lengths,
per-row decode positions, join-time cross-attention population — lives in
:class:`repro.model.generation.ContinuousDecoderLoop`; per-request decoding
strategies (greedy / beam / seeded sampling) ride along as
:class:`repro.model.decoding.RowDecodeState` machines, each consuming its
own block of the batched logits.  A request's output is therefore bitwise
identical to its sequential decode regardless of what joins or retires
around it, which is what lets the serving layer flip this on by default
(``tests/test_decoding_differential.py`` pins the property down).

Layering:

* :class:`InflightBatch` — the deterministic, thread-free core: a set of
  row blocks over one :class:`ContinuousDecoderLoop`, advanced one
  iteration at a time.  Differential tests drive it directly.
* :class:`ContinuousScheduler` — the threaded front: a bounded admission
  queue, a worker that fills the batch to capacity between steps
  (fairness-guarded — see :class:`SchedulerPolicy`), and a
  :class:`~concurrent.futures.Future`-based ``submit`` mirroring the
  micro-batcher's contract so :class:`repro.serving.service.InferenceService`
  can put either behind the same cache/single-flight path.

Unlike the micro-batcher, batches here need not share one decoding
strategy: config homogeneity is relaxed to per-row strategy state, so a
beam-4 request and a greedy request decode in the same iteration.  One
thing still binds a batch: the model.  All rows attend one set of weights,
so requests for a different ``name@revision`` wait until the batch drains
(drain-then-switch), with the same starvation guard as oversized requests.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..model.decoding import DecodingStrategy, RowDecodeState
from ..model.generation import ContinuousDecoderLoop

#: ``on_token`` callback: called with each emitted token id as the request's
#: rows decode (beam replays the winner at retirement, like the static path).
OnToken = Callable[[int], None]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Admission policy knobs for :class:`ContinuousScheduler`.

    ``max_rows`` caps the in-flight batch (a beam-``k`` request occupies
    ``k`` rows).  ``max_queue`` bounds the admission queue — beyond it,
    ``submit`` raises :class:`QueueFullError` so callers shed load instead
    of growing an unbounded backlog.  ``starvation_limit`` is the fairness
    guard: FIFO order is relaxed so smaller requests may jump a queue head
    that does not fit the free rows (fill-to-capacity), but after the head
    has been bypassed in ``starvation_limit`` consecutive scheduling passes
    the queue stops admitting anything else until the head fits — a wide
    beam request or a different-model request is delayed, never starved.
    """

    max_rows: int = 8
    max_queue: int = 256
    starvation_limit: int = 16

    def __post_init__(self) -> None:
        if self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.starvation_limit < 1:
            raise ValueError(
                f"starvation_limit must be >= 1, got {self.starvation_limit}")


class QueueFullError(RuntimeError):
    """The admission queue is at ``SchedulerPolicy.max_queue``."""


@dataclass
class SchedWork:
    """One decode request as the scheduler sees it.

    The service layer has already parsed/lexed the buffer and resolved the
    registry entry; the scheduler encodes, decodes and packages.  ``entry``
    is duck-typed: anything with ``identity`` and ``ensure_loaded()``
    returning a pipeline (tests pass lightweight stubs).
    """

    source_code: str
    xsbt: str | None
    tokens: list[str] | None
    strategy: DecodingStrategy
    entry: Any
    max_length: int
    on_token: OnToken | None = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Stamped at batch join; decode latency is measured join → retire.
    decode_started: float | None = None


class _Slot:
    """One admitted request inside the batch: its row block + state machine."""

    __slots__ = ("work", "state", "start")

    def __init__(self, work: SchedWork, state: RowDecodeState, start: int) -> None:
        self.work = work
        self.state = state
        self.start = start


class InflightBatch:
    """The deterministic continuous-batching core (no threads, no queue).

    Owns one :class:`ContinuousDecoderLoop` plus the per-request strategy
    state machines, and exposes exactly three moves — :meth:`add` a request
    between steps, :meth:`step` one iteration, and (inside ``step``) retire
    whoever finished.  The scheduler wraps this in a thread; differential
    tests drive it directly with scripted arrival schedules.
    """

    def __init__(self, model, *, sos_id: int, eos_id: int, pad_id: int) -> None:
        self.loop = ContinuousDecoderLoop(model, pad_id=pad_id)
        self.sos_id = sos_id
        self.eos_id = eos_id
        self.slots: list[_Slot] = []
        #: The token each live row feeds at the next step, kept in row order.
        self._feed: list[int] = []

    # ------------------------------------------------------------------- api

    @property
    def num_rows(self) -> int:
        return self.loop.num_rows

    @property
    def num_requests(self) -> int:
        return len(self.slots)

    def free_rows(self, max_rows: int) -> int:
        return max_rows - self.num_rows

    def add(self, work: SchedWork, state: RowDecodeState,
            source_ids: list[int]) -> None:
        """Join ``work`` (occupying ``state.rows`` rows) to the batch.

        Must be called between steps.  An empty source never reaches here:
        the scheduler answers those immediately (the sequential decoders'
        contract — nothing to attend over means an empty generation).
        """
        start = self.loop.join(source_ids, rows=state.rows)
        self.slots.append(_Slot(work, state, start))
        self._feed.extend(state.first_tokens())

    def step(self) -> list[_Slot]:
        """One iteration for every live row; returns the slots that finished.

        Each slot's state machine consumes its block of the batched logits
        (the blocks are independent — the row-independence property every
        batched ≡ sequential differential pins down), then beam blocks are
        re-gathered and finished blocks compacted out of the KV caches.
        Finished slots are returned *unresolved*; the caller packages the
        result and resolves the future (keeping this core free of any
        serving-layer types).
        """
        if not self.slots:
            return []
        tokens = np.asarray(self._feed, dtype=np.int64)[:, None]
        logits = self.loop.step(tokens)
        parents = np.arange(self.num_rows)
        reorder = False
        feed: list[int] = []
        for slot in self.slots:
            block = logits[slot.start:slot.start + slot.state.rows]
            next_tokens, block_parents = slot.state.advance(block)
            if len(next_tokens) != slot.state.rows:
                raise RuntimeError(
                    f"strategy fed {len(next_tokens)} tokens for "
                    f"{slot.state.rows} rows")
            feed.extend(next_tokens)
            if block_parents is not None:
                block_parents = np.asarray(block_parents)
                if ((block_parents < 0)
                        | (block_parents >= slot.state.rows)).any():
                    raise RuntimeError("beam parents escaped the row block")
                parents[slot.start:slot.start + slot.state.rows] = (
                    slot.start + block_parents)
                reorder = True
        if reorder:
            self.loop.reorder_rows(parents)
        self._feed = feed
        return self._retire_finished()

    # ------------------------------------------------------------- internals

    def _retire_finished(self) -> list[_Slot]:
        """Compact every finished slot out of the loop, highest row first
        (so earlier blocks' offsets stay valid while removing), then
        re-number the survivors' offsets."""
        finished = [slot for slot in self.slots if slot.state.finished]
        for slot in sorted(finished, key=lambda s: s.start, reverse=True):
            self.loop.retire(slot.start, slot.state.rows)
            del self._feed[slot.start:slot.start + slot.state.rows]
        if finished:
            self.slots = [slot for slot in self.slots
                          if not slot.state.finished]
            offset = 0
            for slot in self.slots:
                slot.start = offset
                offset += slot.state.rows
        return finished


class ContinuousScheduler:
    """Threaded continuous-batching front: queue in, futures out.

    One worker thread loops *admit → step → resolve*: between iterations it
    fills the in-flight batch to ``policy.max_rows`` from the admission
    queue (FIFO with the fill-to-capacity / anti-starvation relaxation —
    see :class:`SchedulerPolicy`), runs one decode iteration, and resolves
    the futures of whatever finished.  ``submit`` mirrors
    :meth:`repro.serving.batching.MicroBatcher.submit` so the service's
    cache / single-flight / lease plumbing is scheduler-agnostic.

    Error containment: a failed **join** (encode raised) fails that request
    alone; a failed **step** poisons the whole in-flight batch — every
    in-flight future gets the exception and the loop is rebuilt fresh —
    but queued requests are unaffected and service resumes on the next
    pass.  ``close(wait=True)`` drains queue and batch, then stops.
    """

    def __init__(self, *, policy: SchedulerPolicy | None = None,
                 metrics: Any | None = None) -> None:
        self.policy = policy or SchedulerPolicy()
        self.metrics = metrics
        self._queue: deque[SchedWork] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._batch: InflightBatch | None = None
        self._identity: str | None = None
        #: Consecutive scheduling passes the current queue head has been
        #: unable to join (capacity or model mismatch) while others could.
        self._head_bypassed = 0
        self._head_starved = False
        self._worker = threading.Thread(target=self._run,
                                        name="continuous-sched", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------- api

    def submit(self, work: SchedWork) -> Future:
        """Enqueue ``work``; the future resolves to its ``PredictionResult``.

        Raises :class:`QueueFullError` at ``policy.max_queue`` queued
        requests (backpressure) and ``RuntimeError`` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    "cannot submit to a closed ContinuousScheduler")
            if len(self._queue) >= self.policy.max_queue:
                raise QueueFullError(
                    f"scheduler queue is full ({self.policy.max_queue})")
            self._queue.append(work)
            self._cond.notify_all()
        return work.future

    def pending(self) -> int:
        """Requests queued or in flight (decode not yet finished)."""
        with self._cond:
            inflight = self._batch.num_requests if self._batch else 0
            return len(self._queue) + inflight

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; already-accepted work is still served."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if wait:
            self._worker.join()

    def __enter__(self) -> "ContinuousScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _run(self) -> None:
        while True:
            with self._cond:
                while (not self._closed and not self._queue
                       and (self._batch is None
                            or not self._batch.num_requests)):
                    self._cond.wait()
                if (self._closed and not self._queue
                        and (self._batch is None
                             or not self._batch.num_requests)):
                    return
                admitted = list(self._drain_admissible())
            joins = 0
            joined_by_config: Counter[str] = Counter()
            for work in admitted:
                rows = self._admit(work)
                joins += rows
                if rows:
                    joined_by_config[work.strategy.canonical()] += 1
            if self.metrics is not None:
                # Each same-config join group is the continuous analogue of
                # one micro-batch flush, so the static dashboards
                # (batches_total, batches_by_config) stay populated.
                for label, count in joined_by_config.items():
                    self.metrics.record_batch(count, label)
            batch = self._batch
            if batch is None or not batch.num_requests:
                continue
            try:
                finished = batch.step()
            except Exception as exc:  # noqa: BLE001 — poison the batch, keep serving
                self._poison(exc)
                continue
            if self.metrics is not None:
                # Occupancy is the rows the step decoded (before retires).
                occupancy = batch.num_rows + sum(
                    slot.state.rows for slot in finished)
                self.metrics.record_sched_step(occupancy, joins=joins,
                                               retires=len(finished))
            for slot in finished:
                self._resolve(slot)

    def _drain_admissible(self) -> list[SchedWork]:
        """Pop the queued requests this pass will try to join (lock held).

        FIFO with fill-to-capacity: the head joins if its rows fit (and its
        model matches the in-flight batch); otherwise later, smaller
        requests may jump ahead — until the head has been bypassed
        ``starvation_limit`` passes in a row, after which nothing jumps and
        free rows are held for it (drain-to-fit / drain-then-switch).

        Row need is conservatively ``strategy.row_state().rows`` — computed
        without touching the model, so it is safe under the lock.
        """
        if self._batch is None or not self._batch.num_requests:
            # An empty batch re-anchors on the head: its model becomes the
            # batch identity and bypass bookkeeping restarts.
            self._identity = None
            self._head_bypassed = 0
            self._head_starved = False
        free = self.policy.max_rows - (
            self._batch.num_rows if self._batch else 0)
        admitted: list[SchedWork] = []
        head_blocked = False
        index = 0
        while index < len(self._queue) and free > 0:
            work = self._queue[index]
            try:
                rows = self._rows_needed(work)
            except Exception:  # noqa: BLE001 — _admit re-raises it properly
                # Unsupported or oversized: pop it; _admit fails its future
                # (outside the lock) with the real error.
                del self._queue[index]
                admitted.append(work)
                continue
            fits = rows <= free and (
                self._identity is None
                or work.entry.identity == self._identity)
            if fits:
                if self._identity is None:
                    self._identity = work.entry.identity
                del self._queue[index]
                admitted.append(work)
                free -= rows
                if index == 0:
                    self._head_bypassed = 0
                    self._head_starved = False
                continue
            if index == 0:
                head_blocked = True
                if self._head_bypassed >= self.policy.starvation_limit:
                    if not self._head_starved:
                        self._head_starved = True
                        if self.metrics is not None:
                            self.metrics.record_sched_starvation()
                    # Hold every free row for the head: admit nothing past it.
                    break
            index += 1
        if head_blocked and (admitted or (self._batch is not None
                                          and self._batch.num_requests)):
            # Only count a bypass when the pass made progress without the
            # head — an idle wait for retires is not starvation.
            self._head_bypassed += 1
        return admitted

    def _rows_needed(self, work: SchedWork) -> int:
        """Rows ``work`` will occupy — computed without touching the model
        (safe under the lock).  Raises for strategies that do not support
        continuous batching or cannot fit the batch at all."""
        rows = work.strategy.row_state(sos_id=0, eos_id=0).rows
        if rows > self.policy.max_rows:
            raise ValueError(
                f"strategy {work.strategy.canonical()!r} needs {rows} rows "
                f"but the scheduler batch is capped at {self.policy.max_rows}")
        return rows

    def _admit(self, work: SchedWork) -> int:
        """Join one popped request to the batch; returns rows joined (0 on
        an immediate answer or a failed join)."""
        try:
            self._rows_needed(work)  # re-raises the pop reason, if any
            mpirical = work.entry.ensure_loaded()
            vocab = mpirical.encoder.vocab
            source_ids = mpirical.encode_source_ids(work.source_code,
                                                    work.xsbt, work.tokens)
            state = work.strategy.row_state(
                sos_id=vocab.sos_id, eos_id=vocab.eos_id,
                max_length=work.max_length, on_token=work.on_token)
            if self._batch is None:
                self._batch = InflightBatch(
                    mpirical.model, sos_id=vocab.sos_id,
                    eos_id=vocab.eos_id, pad_id=vocab.pad_id)
            if self.metrics is not None:
                self.metrics.record_sched_wait(
                    (time.monotonic() - work.enqueued_at) * 1000.0)
            if not source_ids:
                # Nothing to attend over — the sequential decoders answer
                # these with an empty generation without decoding at all.
                _set_result(work.future,
                            mpirical.package_prediction(work.source_code, []))
                return 0
        except Exception as exc:  # noqa: BLE001 — a bad request fails alone
            _set_exception(work.future, exc)
            return 0
        work.decode_started = time.monotonic()
        try:
            self._batch.add(work, state, source_ids)
        except Exception as exc:  # noqa: BLE001 — a torn join poisons the batch
            # join() encodes before mutating anything, so the only failures
            # landing here are invariant violations that may have left the
            # loop partially mutated — decoding on would corrupt *other*
            # requests' rows.  Contain: fail everything in flight, rebuild.
            _set_exception(work.future, exc)
            self._poison(exc)
            return 0
        return state.rows

    def _resolve(self, slot: _Slot) -> None:
        """Package a finished request's ids and resolve its future."""
        work = slot.work
        try:
            started = getattr(work, "decode_started", work.enqueued_at)
            decode_ms = (time.monotonic() - started) * 1000.0
            if self.metrics is not None:
                self.metrics.record_decode(decode_ms)
            result = work.entry.ensure_loaded().package_prediction(
                work.source_code, slot.state.result())
        except Exception as exc:  # noqa: BLE001 — surfaced to the caller
            _set_exception(work.future, exc)
            return
        _set_result(work.future, result)

    def _poison(self, exc: Exception) -> None:
        """A decode step died: fail every in-flight request, rebuild fresh."""
        batch = self._batch
        self._batch = None
        with self._cond:
            self._identity = None
            self._head_bypassed = 0
            self._head_starved = False
        if batch is not None:
            for slot in batch.slots:
                _set_exception(slot.work.future, exc)


def _set_result(future: Future, result: Any) -> None:
    try:
        future.set_result(result)
    except InvalidStateError:
        pass  # caller cancelled; nothing to deliver


def _set_exception(future: Future, exc: Exception) -> None:
    try:
        future.set_exception(exc)
    except InvalidStateError:
        pass  # caller cancelled; nothing to deliver
