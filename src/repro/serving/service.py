"""The InferenceService facade: cache → single-flight → micro-batch → model.

This is the serving layer's front door.  A request travels through three
short-circuits before it is allowed to cost a model decode:

1. **LRU cache** — the buffer's canonical key (:mod:`repro.serving.cache`)
   is looked up; a hit reuses the stored model output without touching the
   queue.  Because the key is layout-invariant while advice anchors are not,
   the cache stores the :class:`PredictionResult` (generated program), and
   line-anchored suggestions are re-derived against the requesting buffer on
   every response (:func:`anchor_result`).
2. **Single-flight coalescing** — if an *identical* request is already in
   flight, the new request subscribes to its future instead of decoding the
   same program twice (a thundering herd of editors re-advising the same
   buffer costs one decode).  Coalesced requests count as cache hits in the
   metrics: they skipped the model.
3. **Micro-batcher** — genuine misses are queued and flushed to
   :meth:`MPIRical.predict_code_batch` in dynamic batches
   (:mod:`repro.serving.batching`), so concurrent distinct requests share
   encoder/decoder passes.

Requests may override the decoding settings per call (``beam_size``,
``length_penalty``): beam requests run through the batched beam decoder,
are cached under a key that includes the generation settings (a beam-4
result must never answer a greedy request), and are micro-batched only with
requests of the same configuration — the whole batch runs through one
decoder loop, so configs cannot be mixed within a flush.  Batch metrics are
reported per configuration (``batches_by_config``).

Every completed request records its end-to-end latency and cache outcome in
:class:`repro.serving.metrics.ServingMetrics`; :meth:`InferenceService.metrics`
returns the merged operational snapshot the ``/metrics`` endpoint serves.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Future
from dataclasses import dataclass
from threading import Lock

from ..clang.parser import parse_source_with_diagnostics
from ..model.generation import GenerationConfig
from ..mpirical.assistant import AdviceSession, MPIAssistant, build_advice_session
from ..mpirical.pipeline import MPIRical, PredictionResult
from ..mpirical.suggestions import extract_suggestions
from ..tokenization.code_tokenizer import tokenize_code
from ..xsbt.xsbt import xsbt_string
from .batching import MicroBatcher
from .cache import LRUCache, canonical_cache_key
from .metrics import ServingMetrics


def anchor_result(source_code: str, result: PredictionResult) -> PredictionResult:
    """Re-derive the advice anchors of ``result`` against ``source_code``.

    The cache key is layout-invariant (whitespace/comment edits keep the
    key), but :attr:`MPISuggestion.insert_after_line` is layout-*dependent* —
    a cached result's anchors refer to whichever buffer was decoded first.
    Suggestion extraction is a cheap line diff, so every response recomputes
    it against the requesting buffer; only the model decode is shared.
    """
    return PredictionResult(
        generated_code=result.generated_code,
        generated_tokens=result.generated_tokens,
        suggestions=extract_suggestions(source_code, result.generated_code),
    )


def generation_label(generation: GenerationConfig) -> str:
    """The batching/metrics label of a generation config.

    Two requests share a micro-batch exactly when their labels are equal, and
    the whole flush decodes under one config — so the label must distinguish
    every penalty the cache key distinguishes (``repr``, not a rounded
    format, or two almost-equal penalties would share a batch yet cache
    separately).  The label also keys the per-config batch metrics.  Greedy
    ignores the length penalty (it reranks beam hypotheses only), mirroring
    the cache key's normalisation.
    """
    if generation.beam_size <= 1:
        return "greedy"
    return f"beam{generation.beam_size}:lp{generation.length_penalty!r}"


@dataclass
class ServedAdvice:
    """One request's response plus its serving-side bookkeeping."""

    session: AdviceSession
    #: True when the session was served from cache (including requests
    #: coalesced onto an identical in-flight decode).
    cached: bool
    latency_ms: float
    cache_key: str
    #: The decoding settings this response was generated under (service
    #: defaults merged with the request's overrides).
    generation: GenerationConfig | None = None


@dataclass
class _AdviseWork:
    """A cache miss on its way to the model (lexed once, decoded in batch)."""

    source_code: str
    xsbt: str
    #: The request thread's lexer output, reused by the encoder at flush time.
    tokens: list[str]
    #: Resolved decoding settings; the batcher groups flushes by its label.
    generation: GenerationConfig


class InferenceService:
    """Concurrent advising facade over :class:`MPIRical` / :class:`MPIAssistant`.

    Parameters
    ----------
    model:
        A trained :class:`MPIRical` pipeline or an :class:`MPIAssistant`
        already wrapping one.
    max_batch_size / max_wait_ms / num_workers:
        Micro-batcher policy; see :class:`repro.serving.batching.MicroBatcher`.
    cache_capacity:
        LRU entries to keep; ``0`` disables caching (every request decodes).
    generation:
        Optional decoding override applied to every batched decode.
    """

    def __init__(self, model: MPIRical | MPIAssistant, *,
                 max_batch_size: int = 8, max_wait_ms: float = 5.0,
                 num_workers: int = 1, cache_capacity: int = 256,
                 generation: GenerationConfig | None = None,
                 metrics_window: int = 1024) -> None:
        self.assistant = model if isinstance(model, MPIAssistant) else MPIAssistant(model)
        self.generation = generation
        self.metrics_ = ServingMetrics(window=metrics_window)
        self.cache = LRUCache(cache_capacity) if cache_capacity > 0 else None
        self._inflight: dict[str, Future] = {}
        self._inflight_lock = Lock()
        self.batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            num_workers=num_workers,
            group_key=lambda work: generation_label(work.generation),
            on_batch=self.metrics_.record_batch,
        )
        self._closed = False

    # ------------------------------------------------------------------- api

    def advise(self, source_code: str, *, beam_size: int | None = None,
               length_penalty: float | None = None,
               timeout: float | None = None) -> ServedAdvice:
        """Advise on ``source_code``, blocking until the response is ready.

        ``beam_size`` / ``length_penalty`` override the service's default
        decoding settings for this request only; ``beam_size > 1`` trades
        latency for the paper's beam-search quality setting.
        """
        return self.advise_async(source_code, beam_size=beam_size,
                                 length_penalty=length_penalty).result(timeout)

    def advise_async(self, source_code: str, *, beam_size: int | None = None,
                     length_penalty: float | None = None) -> Future:
        """Non-blocking :meth:`advise`; resolves to a :class:`ServedAdvice`."""
        start = time.perf_counter()
        response: Future = Future()
        generation = self._resolve_generation(beam_size, length_penalty)

        unit, diagnostics = parse_source_with_diagnostics(source_code)
        xsbt = xsbt_string(unit)
        tokens = tokenize_code(source_code)
        key = canonical_cache_key(source_code, xsbt, tokens=tokens,
                                  beam_size=generation.beam_size,
                                  length_penalty=generation.length_penalty)

        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self._resolve(response, source_code, diagnostics, hit,
                              cached=True, start=start, key=key,
                              generation=generation)
                return response

        work = _AdviseWork(source_code=source_code, xsbt=xsbt, tokens=tokens,
                           generation=generation)
        late_hit = None
        with self._inflight_lock:
            inflight = self._inflight.get(key)
            owner = inflight is None
            if owner:
                if self.cache is not None:
                    # Re-check under the lock: an owner that completed between
                    # our miss above and here has already populated the cache.
                    # peek() keeps the hit/miss counters at one count per
                    # request; resolution happens outside the lock.
                    late_hit = self.cache.peek(key)
                if late_hit is None:
                    inflight = self.batcher.submit(work)
                    self._inflight[key] = inflight
        if late_hit is not None:
            self._resolve(response, source_code, diagnostics, late_hit,
                          cached=True, start=start, key=key,
                          generation=generation)
            return response

        def _on_done(decode: Future) -> None:
            try:
                result = decode.result()
            except Exception as exc:  # noqa: BLE001 — surfaced to the caller
                if owner:
                    with self._inflight_lock:
                        self._inflight.pop(key, None)
                self.metrics_.record_error()
                response.set_exception(exc)
                return
            if owner:
                # Populate the cache BEFORE dropping the in-flight entry, and
                # have would-be owners re-check the cache under the in-flight
                # lock, so a concurrent identical request finds one of the two.
                if self.cache is not None:
                    self.cache.put(key, result)
                with self._inflight_lock:
                    self._inflight.pop(key, None)
            self._resolve(response, source_code, diagnostics, result,
                          cached=not owner, start=start, key=key,
                          generation=generation)

        inflight.add_done_callback(_on_done)
        return response

    def metrics(self) -> dict:
        """Operational snapshot: request metrics + cache stats + queue depth."""
        snapshot = self.metrics_.snapshot()
        snapshot["cache"] = (self.cache.stats().as_dict() if self.cache is not None
                             else {"enabled": False})
        snapshot["queued_requests"] = self.batcher.pending()
        snapshot["max_batch_size"] = self.batcher.max_batch_size
        snapshot["max_wait_ms"] = self.batcher.max_wait * 1000.0
        return snapshot

    def close(self) -> None:
        """Drain queued requests and stop the worker pool."""
        if not self._closed:
            self._closed = True
            self.batcher.close()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _resolve_generation(self, beam_size: int | None,
                            length_penalty: float | None) -> GenerationConfig:
        """Merge request overrides onto the service's default decoding config."""
        base = self.generation or self.assistant.mpirical.generation
        if beam_size is None and length_penalty is None:
            return base
        if beam_size is not None and (not isinstance(beam_size, int)
                                      or isinstance(beam_size, bool)
                                      or beam_size < 1):
            raise ValueError(f"beam_size must be a positive int, got {beam_size!r}")
        if length_penalty is not None and (not isinstance(length_penalty, (int, float))
                                           or isinstance(length_penalty, bool)
                                           or not math.isfinite(length_penalty)
                                           or length_penalty < 0):
            raise ValueError(
                f"length_penalty must be a finite non-negative number, "
                f"got {length_penalty!r}")
        return GenerationConfig(
            max_length=base.max_length,
            beam_size=base.beam_size if beam_size is None else beam_size,
            length_penalty=(base.length_penalty if length_penalty is None
                            else float(length_penalty)),
        )

    def _resolve(self, response: Future, source_code: str, diagnostics: list,
                 result: PredictionResult, *, cached: bool, start: float,
                 key: str, generation: GenerationConfig | None = None) -> None:
        """Build this request's session (own anchors + diagnostics) and finish.

        A non-cached resolve is the owner of the decode, and the batch already
        extracted suggestions against this very buffer — only cache hits and
        coalesced followers (possibly layout-shifted buffers) re-anchor.
        """
        if cached:
            result = anchor_result(source_code, result)
        session = build_advice_session(diagnostics, result)
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.metrics_.record_request(latency_ms, cached=cached)
        response.set_result(ServedAdvice(session=session, cached=cached,
                                         latency_ms=latency_ms, cache_key=key,
                                         generation=generation))

    def _process_batch(self, works: list[_AdviseWork]) -> list[PredictionResult]:
        """Flush one micro-batch through the batched decode path.

        The batcher groups flushes by generation label, so every work item in
        the batch shares one decoding config — greedy batches run the batched
        greedy decoder, beam batches the batched beam decoder.  Returns raw
        prediction results; per-request session assembly (advice anchoring,
        diagnostics) happens back on the requesting side so that coalesced
        and cached followers are anchored to *their* buffers.

        The decode wall time is recorded per request rider as the model-side
        decode latency (``decode_latency_ms_p50/p95`` in ``/metrics``).
        """
        start = time.perf_counter()
        results = self.assistant.mpirical.predict_code_batch(
            [work.source_code for work in works],
            [work.xsbt for work in works],
            generation=works[0].generation,
            source_tokens=[work.tokens for work in works],
        )
        decode_ms = (time.perf_counter() - start) * 1000.0
        self.metrics_.record_decode(decode_ms, requests=len(works))
        return results
