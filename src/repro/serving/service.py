"""The InferenceService facade: cache → single-flight → micro-batch → model.

This is the serving layer's front door, and it speaks the **repro.api v1
contract**: requests are :class:`repro.api.AdviseRequest` values carrying a
pluggable :class:`repro.model.decoding.DecodingStrategy`, responses are
:class:`repro.api.AdviseResponse`.  A request travels through three
short-circuits before it is allowed to cost a model decode:

1. **LRU cache** — the buffer's canonical key (:mod:`repro.serving.cache`,
   which folds in the strategy's canonical serialized form) is looked up; a
   hit reuses the stored model output without touching the queue.  Because
   the key is layout-invariant while advice anchors are not, the cache stores
   the :class:`PredictionResult` (generated program), and line-anchored
   suggestions are re-derived against the requesting buffer on every response
   (:func:`anchor_result`).
2. **Single-flight coalescing** — if an *identical* request is already in
   flight, the new request subscribes to its future instead of decoding the
   same program twice.  Coalesced requests count as cache hits in the
   metrics: they skipped the model.
3. **Micro-batcher** — genuine misses are queued and flushed to
   :meth:`MPIRical.predict_code_batch` in dynamic batches
   (:mod:`repro.serving.batching`), so concurrent distinct requests share
   encoder/decoder passes.

Cache keys, micro-batch groups and the per-config batch metrics are all
derived from the **same canonical strategy string**
(:meth:`DecodingStrategy.canonical` after :meth:`normalised`), so two
requests share a batch exactly when they could share a cache entry — no
hand-maintained label function can drift out of sync with the key.

**Streaming** (:meth:`InferenceService.advise_stream`) runs a request's
decode on a dedicated thread and yields each generated token as it is
emitted, followed by the final :class:`AdviseResponse`.  Streams bypass the
micro-batcher (a stream is one decode by construction) but still read and
populate the shared cache: a cache hit replays its tokens instantly.

**Multi-model routing** (v1.1): the service fronts a
:class:`repro.registry.ModelRegistry` instead of one hard-wired model.  A
request's optional ``model`` reference (alias, name, or pinned
``name@revision``) resolves to a registry entry *before* anything else
happens; the resolved identity becomes part of the cache key, the
single-flight key and the micro-batch group key, so two models — or two
revisions of one model across a hot-swap — can never share a cache entry, a
coalesced decode or a batch.  Each decode holds a **lease** on its entry for
its whole life, which is what makes :meth:`repro.registry.ModelRegistry.swap`
safe under traffic: the alias flip is atomic, requests that already resolved
drain on the old revision, and the old entry unloads only after its last
lease returns.  Constructing the service from a bare pipeline still works —
it is registered as the registry's ``default`` model.

The legacy surface (``advise(code, beam_size=..., length_penalty=...)``)
remains as a compatibility shim that emits a :class:`DeprecationWarning` and
delegates to the v1 path; greedy and beam results are bit-identical to the
pre-contract behaviour.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import Future
from dataclasses import dataclass, replace
from pathlib import Path
from queue import SimpleQueue
from threading import Lock, Thread
from typing import TYPE_CHECKING, Iterator

from ..api import AdviseRequest, AdviseResponse, ApiError, advice_items
from ..clang.parser import parse_source_with_diagnostics
from ..model.decoding import (
    BeamStrategy,
    DecodingStrategy,
    GreedyStrategy,
    merge_legacy_overrides,
    strategy_from_generation,
)
from ..model.generation import GenerationConfig
from ..mpirical.assistant import AdviceSession, MPIAssistant, build_advice_session
from ..mpirical.pipeline import MPIRical, PredictionResult
from ..mpirical.suggestions import extract_suggestions
from ..registry import ModelEntry, ModelRegistry, RegistryError
from ..tokenization.code_tokenizer import tokenize_code
from ..verify import VerificationReport, VerifyConfig, verify_candidates
from ..xsbt.xsbt import xsbt_string
from .batching import MicroBatcher
from .cache import LRUCache, canonical_cache_key
from .metrics import ServingMetrics
from .sched import ContinuousScheduler, QueueFullError, SchedulerPolicy, SchedWork

if TYPE_CHECKING:  # pragma: no cover — typing only
    from .jobs import JobPolicy, JobStore


def anchor_result(source_code: str, result: PredictionResult) -> PredictionResult:
    """Re-derive the advice anchors of ``result`` against ``source_code``.

    The cache key is layout-invariant (whitespace/comment edits keep the
    key), but :attr:`MPISuggestion.insert_after_line` is layout-*dependent* —
    a cached result's anchors refer to whichever buffer was decoded first.
    Suggestion extraction is a cheap line diff, so every response recomputes
    it against the requesting buffer; only the model decode is shared.
    """
    return PredictionResult(
        generated_code=result.generated_code,
        generated_tokens=result.generated_tokens,
        suggestions=extract_suggestions(source_code, result.generated_code),
    )


def generation_label(generation: GenerationConfig) -> str:
    """The batching/metrics label of a legacy generation config.

    Kept for backward compatibility; the label *is* the canonical serialized
    form of the equivalent strategy, so it can never drift from the cache
    key (``"greedy"``, ``"beam4:lp0.6"``, ...).
    """
    return strategy_from_generation(generation).canonical()


@dataclass
class ServedAdvice:
    """One request's response plus its serving-side bookkeeping."""

    session: AdviceSession
    #: True when the session was served from cache (including requests
    #: coalesced onto an identical in-flight decode).
    cached: bool
    latency_ms: float
    cache_key: str
    #: The decoding settings this response was generated under, as a legacy
    #: :class:`GenerationConfig` view (kept for pre-v1 callers).
    generation: GenerationConfig | None = None
    #: The strategy the decode actually ran under (the v1 identity).
    strategy: DecodingStrategy | None = None
    #: The resolved ``name@revision`` of the model that served the request.
    model: str | None = None


@dataclass
class _AdviseWork:
    """A cache miss on its way to the model (lexed once, decoded in batch)."""

    source_code: str
    xsbt: str
    #: The request thread's lexer output, reused by the encoder at flush time.
    tokens: list[str]
    #: Resolved decoding strategy; the batcher groups flushes by its
    #: canonical serialized form together with the model identity.
    strategy: DecodingStrategy
    #: The registry entry (already loaded + leased) the decode must run on —
    #: pinned at submit time, so a hot-swap mid-queue cannot reroute it.
    entry: ModelEntry | None = None


class InferenceService:
    """Concurrent advising facade over :class:`MPIRical` / :class:`MPIAssistant`.

    Parameters
    ----------
    model:
        A :class:`repro.registry.ModelRegistry`, or — the single-model
        shorthand — a trained :class:`MPIRical` pipeline / an
        :class:`MPIAssistant` wrapping one, which is registered as the
        registry's ``default`` model.
    max_batch_size / max_wait_ms / num_workers:
        Micro-batcher policy; see :class:`repro.serving.batching.MicroBatcher`.
    cache_capacity:
        LRU entries to keep; ``0`` disables caching (every request decodes).
        The cache is shared across models; keys embed ``name@revision``.
    generation:
        Optional legacy decoding override applied to every request that does
        not pin a strategy; also supplies ``max_length`` for every decode.
    registry_root:
        Durable-state directory for the batch-job tier; the job WAL lives at
        ``<registry_root>/jobs/jobs.wal``.  Defaults to the registry's own
        ``root`` when it has one; ``None`` (and no registry root) keeps jobs
        in-memory only.
    job_policy:
        Backpressure/hygiene knobs for the job store
        (:class:`repro.serving.jobs.JobPolicy`); ``None`` uses the defaults.
    scheduler:
        Decode scheduling mode.  ``"continuous"`` (the default) runs
        iteration-level continuous batching (:mod:`repro.serving.sched`):
        requests join and leave the in-flight batch between decode steps,
        capped at ``max_batch_size`` rows.  ``"static"`` keeps every decode
        on the request-level micro-batcher.  The micro-batcher always exists
        as the fallback path — strategies without per-row state, oversized
        beam requests and scheduler backpressure all shed to it — and both
        paths produce bitwise-identical outputs, so the mode is purely an
        efficiency/latency knob.
    """

    def __init__(self, model: MPIRical | MPIAssistant | ModelRegistry, *,
                 max_batch_size: int = 8, max_wait_ms: float = 5.0,
                 num_workers: int = 1, cache_capacity: int = 256,
                 generation: GenerationConfig | None = None,
                 metrics_window: int = 1024,
                 registry_root: "str | Path | None" = None,
                 job_policy: "JobPolicy | None" = None,
                 scheduler: str = "continuous") -> None:
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry(model)
        if registry_root is None:
            registry_root = self.registry.root
        self._job_log_dir = (Path(registry_root) / "jobs"
                             if registry_root is not None else None)
        self._job_policy = job_policy
        self.generation = generation
        self.metrics_ = ServingMetrics(window=metrics_window)
        self.cache = LRUCache(cache_capacity) if cache_capacity > 0 else None
        #: Verification results keyed by ``<decode cache key>|verify:<options>``
        #: — a repeat verified request replays both the decode *and* the
        #: simulation sweep from memory.  Skipped reports are never cached
        #: (a transient budget exhaustion must not stick).
        self.verify_cache = (LRUCache(cache_capacity)
                             if cache_capacity > 0 else None)
        self._inflight: dict[str, Future] = {}
        self._inflight_lock = Lock()
        self.batcher = MicroBatcher(
            self._process_batch,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            # A batch is homogeneous in *both* dimensions that change model
            # output: the decoding strategy and the model revision.
            group_key=lambda work: (work.entry.identity,
                                    work.strategy.canonical()),
            # Metrics keep the pre-registry strategy-only labels; per-model
            # traffic is tracked by requests_by_model instead.
            on_batch=lambda size, group: self.metrics_.record_batch(
                size, group=group[1]),
            num_workers=num_workers,
        )
        if scheduler not in ("continuous", "static"):
            raise ValueError(
                f'scheduler must be "continuous" or "static", got {scheduler!r}')
        self.scheduler = scheduler
        self.sched = (ContinuousScheduler(
            policy=SchedulerPolicy(max_rows=max_batch_size),
            metrics=self.metrics_) if scheduler == "continuous" else None)
        self._jobs = None
        self._jobs_lock = Lock()
        self._closed = False
        self._draining = False

    @property
    def jobs(self) -> "JobStore":
        """The async batch-job store (:class:`repro.serving.jobs.JobStore`),
        created on first use and closed with the service.

        When the service has a durable root (``registry_root``, or the
        registry's own ``root``), first access opens the store *over its
        WAL* — replaying finished jobs and re-enqueueing unfinished ones —
        which is why server startup touches this property eagerly.  Access
        after :meth:`close` answers the contract's 503 ``unavailable``
        envelope: a shutting-down replica is not a server bug.
        """
        with self._jobs_lock:
            if self._jobs is None:
                if self._closed:
                    raise ApiError.unavailable(
                        "the service is shutting down; retry against a "
                        "healthy replica")
                from .jobs import JobStore

                self._jobs = JobStore(self, policy=self._job_policy,
                                      log_dir=self._job_log_dir,
                                      metrics=self.metrics_)
            return self._jobs

    def job_store(self) -> "JobStore | None":
        """The job store if one has been created, else ``None`` — a
        peek that (unlike :attr:`jobs`) never opens the WAL or starts the
        worker thread; used by ``/metrics`` and ``/healthz``.

        Deliberately **lock-free**: the jobs lock is held for the whole WAL
        replay on first access and across the bounded job drain during
        :meth:`close`, and a liveness probe must never block behind either
        (a router health-checking a worker that is replaying a large WAL or
        draining would otherwise time it out and mark it dead).  The
        attribute is only ever written once, after the store is fully
        constructed, so the probe reads either ``None`` or a usable store.
        """
        return self._jobs

    def submit_job(self, requests: "list[AdviseRequest]", *,
                   client: str | None = None):
        """Queue one batch job (the ``POST /v1/advise/batch`` entry point).

        Refused with the 503 ``unavailable`` envelope while the service is
        draining — new work must land on a healthy replica — while job
        *polls* keep working so clients can collect what already ran.
        """
        self._require_not_draining()
        return self.jobs.submit(requests, client=client)

    # ---------------------------------------------------------------- drain

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> dict:
        """Stop accepting new work; in-flight work keeps running.

        The graceful half of a worker shutdown: after ``drain()`` every new
        advise/stream/job submission answers the 503 ``unavailable``
        envelope (with a ``Retry-After`` hint), while queued micro-batches,
        in-flight decodes and running jobs finish normally.  The pool
        router calls this, stops routing to the worker, waits for
        :meth:`pending_work` to reach zero, and only then terminates the
        process — which is what makes a rolling restart lose nothing.

        Returns the drain status snapshot (also on ``/healthz``).
        """
        self._draining = True
        return {"draining": True, "pending": self.pending_work()}

    def pending_work(self) -> int:
        """Work still owed to callers: queued batches, in-flight decodes
        and unfinished jobs.  Zero means terminating the process drops
        nothing (streams are best-effort and excluded — a stream's client
        observes the cut and simply retries)."""
        with self._inflight_lock:
            inflight = len(self._inflight)
        pending = self.batcher.pending() + inflight
        if self.sched is not None:
            # In-flight scheduler decodes are already counted via the
            # single-flight dict; only the admission queue adds new work.
            pending += self.sched.queue_depth()
        jobs = self.job_store()
        if jobs is not None:
            snapshot = jobs.snapshot()
            pending += snapshot["queued"] + snapshot["running"]
        return pending

    def _require_not_draining(self) -> None:
        if self._draining:
            raise ApiError.unavailable(
                "this replica is draining; retry against the pool",
                retry_after=1.0)

    @property
    def assistant(self) -> MPIAssistant:
        """The ``default`` model's advising facade (pre-registry callers)."""
        entry = self.registry.default_entry()
        if entry is None:
            raise RuntimeError("the registry has no default model")
        return entry.assistant()

    # ------------------------------------------------------------ v1 contract

    def advise_request(self, request: AdviseRequest, *,
                       timeout: float | None = None) -> AdviseResponse:
        """Serve one v1 :class:`AdviseRequest`, blocking until done.

        When the request carries a ``verify`` block, the response is taken
        through bounded synchronous verification on the calling thread
        (simulate-and-rerank; see :meth:`apply_verification`) before it is
        returned — the decode itself still rides the shared batcher.
        """
        response = self.advise_request_async(request).result(timeout)
        if request.verify is not None:
            response = self.apply_verification(request, response)
        return response

    def advise_request_async(self, request: AdviseRequest) -> Future:
        """Non-blocking :meth:`advise_request`; resolves to an
        :class:`AdviseResponse`.  Raises :class:`repro.api.ApiError`
        synchronously on an invalid request or an unresolvable ``model``
        reference (the registry is consulted *here*, so the alias an
        in-flight request resolved through can be re-pointed concurrently
        without affecting it)."""
        request.validate()
        strategy = request.strategy.normalised()
        entry = self._resolve_entry(request.model)
        # Echo the resolved name@revision only when the request named a
        # model: requests omitting it keep the v1.0 response shape exactly.
        echo_model = request.model is not None
        inner = self._advise_async(request.code, strategy, entry=entry)
        response: Future = Future()

        def _on_done(done: Future) -> None:
            try:
                served = done.result()
            except Exception as exc:  # noqa: BLE001 — surfaced to the caller
                response.set_exception(exc)
                return
            response.set_result(self._to_response(served, echo_model=echo_model))

        inner.add_done_callback(_on_done)
        return response

    # -------------------------------------------------------- verification

    def apply_verification(self, request: AdviseRequest,
                           response: AdviseResponse) -> AdviseResponse:
        """Take a served response through simulate-and-rerank verification.

        Bounded and non-fatal by construction: the whole pass runs inside the
        request's ``verify.timeout_ms`` budget, any internal failure (or an
        original program that does not simulate) degrades to
        ``verification: {"verified": "skipped", ...}``, and the normally
        served advice always survives.  When a runner-up candidate is the
        first to prove equivalent under simulation, the response's
        ``generated_code``/``advice`` are rebuilt from that winner
        (``reranked: true``).  Results are cached under the decode cache key
        plus the canonical options, so a repeat hit pays neither the decode
        nor the simulation sweep.
        """
        options = request.verify
        if options is None:
            return response
        start = time.perf_counter()
        verify_key = f"{response.cache_key}|verify:{options.canonical()}"
        if self.verify_cache is not None:
            hit = self.verify_cache.get(verify_key)
            if hit is not None:
                status, payload, generated_code, advice, diagnostics = hit
                self.metrics_.record_verify(
                    (time.perf_counter() - start) * 1000.0, status)
                return replace(response, generated_code=generated_code,
                               advice=advice, diagnostics=diagnostics,
                               verification=dict(payload))
        try:
            report, candidates = self._run_verification(request, response,
                                                        options)
        except Exception as exc:  # noqa: BLE001 — verification never fails a request
            report = VerificationReport.skipped(
                f"verification error: {type(exc).__name__}: {exc}")
            candidates = []
        payload = report.to_payload()
        verified = response
        if report.reranked and report.winner_index < len(candidates):
            winner = candidates[report.winner_index]
            if isinstance(winner, PredictionResult):
                _, diagnostics = parse_source_with_diagnostics(request.code)
                session = build_advice_session(
                    diagnostics, anchor_result(request.code, winner))
                verified = replace(response,
                                   generated_code=session.generated_code,
                                   advice=advice_items(session),
                                   diagnostics=tuple(session.parse_diagnostics))
        verified = replace(verified, verification=payload)
        self.metrics_.record_verify((time.perf_counter() - start) * 1000.0,
                                    report.status)
        if report.status != "skipped" and self.verify_cache is not None:
            self.verify_cache.put(verify_key, (
                report.status, payload, verified.generated_code,
                verified.advice, verified.diagnostics))
        return verified

    def _run_verification(self, request: AdviseRequest,
                          response: AdviseResponse, options) -> tuple:
        """Decode extra candidates (when the strategy can supply them) and run
        the rank-sweep verification; returns ``(report, candidates)``."""
        strategy = request.strategy.normalised()
        limit = min(options.candidates, strategy.nbest_limit())
        if limit > 1:
            entry = self._resolve_entry(request.model)
            mpirical = entry.ensure_loaded()
            entry.acquire()
            try:
                candidates = mpirical.predict_code_candidates(
                    request.code, strategy=strategy,
                    generation=self._default_generation(entry),
                    max_candidates=limit)
            finally:
                entry.release()
        else:
            # Single-candidate strategies reuse the served generation as-is;
            # no re-decode happens at all.
            candidates = [response.generated_code]
        config = VerifyConfig(
            ranks=tuple(options.ranks),
            tolerance=float(options.tolerance),
            timeout=options.timeout_ms / 1000.0,
            sim_timeout=min(5.0, options.timeout_ms / 1000.0),
        )
        return verify_candidates(request.code, candidates,
                                 config=config), candidates

    def advise_stream(self, request: AdviseRequest) -> Iterator[dict]:
        """Serve ``request`` as a stream of chunk dicts.

        Yields ``{"type": "token", "index": i, "token": "<code token>"}`` for
        each generated token, then exactly one
        ``{"type": "final", "response": <AdviseResponse dict>}``.  Greedy and
        sampling emit token chunks incrementally while the model decodes;
        beam search only knows its winning hypothesis at the end, so its
        chunks arrive just before the final result.

        Streams read and populate the shared LRU cache (a hit replays its
        cached tokens immediately) and bypass single-flight.  Under the
        default continuous scheduler the stream's decode joins the shared
        in-flight batch — tokens surface per iteration while other requests
        decode in the same steps; in static mode (or when the scheduler
        cannot serve the strategy) a stream falls back to one dedicated
        decode.

        Validation is eager — an invalid request raises here, at call time,
        not at the first ``next()`` (the HTTP layer relies on this to answer
        4xx before committing to a 200 stream).
        """
        request.validate()
        self._require_not_draining()
        strategy = self._resolve_strategy(request.strategy)
        entry = self._resolve_entry(request.model)
        return self._stream(request, strategy, entry,
                            echo_model=request.model is not None)

    def _stream(self, request: AdviseRequest, strategy: DecodingStrategy,
                entry: ModelEntry, *, echo_model: bool) -> Iterator[dict]:
        start = time.perf_counter()
        mpirical = entry.ensure_loaded()
        vocab = mpirical.encoder.vocab

        unit, diagnostics = parse_source_with_diagnostics(request.code)
        xsbt = xsbt_string(unit)
        tokens = tokenize_code(request.code)
        key = canonical_cache_key(request.code, xsbt, tokens=tokens,
                                  strategy=strategy, model=entry.identity)

        cached = self.cache.get(key) if self.cache is not None else None
        if cached is not None:
            result = anchor_result(request.code, cached)
            for index, token in enumerate(result.generated_tokens):
                yield {"type": "token", "index": index, "token": token}
            yield self._final_chunk(request.code, diagnostics, result,
                                    strategy=strategy, cached=True,
                                    start=start, key=key, entry=entry,
                                    echo_model=echo_model,
                                    verify_requested=request.verify is not None)
            return

        chunks: SimpleQueue = SimpleQueue()

        def on_token(token_id: int) -> None:
            for token in vocab.decode([token_id]):
                chunks.put(("token", token))

        def decode_worker() -> None:
            # The lease pins the entry's weights for the whole decode: a
            # concurrent swap/unload drains behind this stream, never under
            # it.  A failed acquire (entry unloaded in the race window after
            # resolution) must reach the consuming generator as an error
            # chunk — dying silently would strand it on chunks.get() forever.
            try:
                entry.acquire()
            except Exception as exc:  # noqa: BLE001 — delivered to the reader
                chunks.put(("error", exc))
                return
            try:
                # Continuous mode folds the stream's decode into the shared
                # in-flight batch — tokens surface per iteration while other
                # requests decode in the same steps.  The static fallback
                # (scheduler off / unsupported strategy) keeps the dedicated
                # per-stream decode.
                work = _AdviseWork(source_code=request.code, xsbt=xsbt,
                                   tokens=tokens, strategy=strategy,
                                   entry=entry)
                shared = self._submit_sched(work, on_token=on_token)
                if shared is not None:
                    result = shared.result()
                else:
                    decode_start = time.perf_counter()
                    result = mpirical.predict_code(
                        request.code, xsbt, strategy=strategy,
                        generation=self._default_generation(entry),
                        source_tokens=tokens, on_token=on_token)
                    decode_ms = (time.perf_counter() - decode_start) * 1000.0
                    self.metrics_.record_decode(decode_ms)
                # Cache here, on the worker: a completed decode must not be
                # discarded just because the streaming client disconnected
                # and abandoned the consuming generator — its retry should
                # replay from cache.
                if self.cache is not None:
                    self.cache.put(key, result)
                chunks.put(("done", result))
            except Exception as exc:  # noqa: BLE001 — delivered to the reader
                chunks.put(("error", exc))
            finally:
                entry.release()

        Thread(target=decode_worker, name="advise-stream", daemon=True).start()
        index = 0
        while True:
            kind, payload = chunks.get()
            if kind == "token":
                yield {"type": "token", "index": index, "token": payload}
                index += 1
            elif kind == "done":
                yield self._final_chunk(request.code, diagnostics, payload,
                                        strategy=strategy, cached=False,
                                        start=start, key=key, entry=entry,
                                        echo_model=echo_model,
                                        verify_requested=request.verify is not None)
                return
            else:
                self.metrics_.record_error()
                raise payload

    # ------------------------------------------------------------- legacy api

    def advise(self, source_code: str, *, beam_size: int | None = None,
               length_penalty: float | None = None,
               strategy: DecodingStrategy | None = None,
               timeout: float | None = None) -> ServedAdvice:
        """Advise on ``source_code``, blocking until the response is ready.

        ``strategy`` pins the decoding strategy for this request only;
        ``beam_size`` / ``length_penalty`` are the deprecated pre-v1 spelling
        of the same override (they emit a :class:`DeprecationWarning` and
        behave bit-identically to before).
        """
        return self.advise_async(source_code, beam_size=beam_size,
                                 length_penalty=length_penalty,
                                 strategy=strategy).result(timeout)

    def advise_async(self, source_code: str, *, beam_size: int | None = None,
                     length_penalty: float | None = None,
                     strategy: DecodingStrategy | None = None) -> Future:
        """Non-blocking :meth:`advise`; resolves to a :class:`ServedAdvice`."""
        if beam_size is not None or length_penalty is not None:
            if strategy is not None:
                raise ValueError(
                    "pass either strategy= or the deprecated beam_size=/"
                    "length_penalty= kwargs, not both")
            warnings.warn(
                "advise(beam_size=, length_penalty=) is deprecated; pass "
                "strategy=BeamStrategy(...) or an AdviseRequest instead",
                DeprecationWarning, stacklevel=2)
            return self.advise_legacy_async(source_code, beam_size,
                                            length_penalty)
        return self._advise_async(source_code, self._resolve_strategy(strategy))

    def advise_legacy_async(self, source_code: str, beam_size: int | None,
                            length_penalty: float | None) -> Future:
        """The warning-free legacy resolution the HTTP shim delegates to.

        Partial overrides merge onto the service's default generation config
        exactly as the pre-v1 service resolved them
        (:func:`repro.model.decoding.merge_legacy_overrides`), and the merged
        config — not the normalised strategy — is what the response echoes
        back (``ServedAdvice.generation``), keeping the legacy
        ``beam_size``/``length_penalty`` echo byte-identical (a greedy
        request with an explicit penalty echoes that penalty, as it always
        did).  Raises :class:`repro.model.decoding.StrategyParamError`
        (a ``ValueError``) on bad values — the same validators as v1.
        """
        merged = merge_legacy_overrides(self._default_generation(),
                                        beam_size, length_penalty)
        return self._advise_async(source_code, strategy_from_generation(merged),
                                  generation_view=merged)

    def legacy_strategy(self, beam_size: int | None,
                        length_penalty: float | None) -> DecodingStrategy:
        """The strategy a legacy override pair resolves to (merge + normalise)."""
        return strategy_from_generation(merge_legacy_overrides(
            self._default_generation(), beam_size, length_penalty))

    def metrics(self) -> dict:
        """Operational snapshot: request metrics + cache stats + queue depth
        + registry state (loaded models, default alias, per-model counters)."""
        snapshot = self.metrics_.snapshot()
        snapshot["cache"] = (self.cache.stats().as_dict() if self.cache is not None
                             else {"enabled": False})
        snapshot["queued_requests"] = self.batcher.pending() + (
            self.sched.queue_depth() if self.sched is not None else 0)
        snapshot["max_batch_size"] = self.batcher.max_batch_size
        snapshot["max_wait_ms"] = self.batcher.max_wait * 1000.0
        snapshot["scheduler"] = self.scheduler
        snapshot["registry"] = self.registry.snapshot()
        snapshot["draining"] = self._draining
        jobs = self.job_store()
        snapshot["jobs"] = (jobs.snapshot() if jobs is not None
                            else {"enabled": False})
        return snapshot

    def close(self, *, job_drain_timeout: float | None = 5.0) -> None:
        """Drain queued requests and stop the worker pool (and job store).

        The job store closes *first* and with a **bounded** join (its items
        run through the batcher, so the batcher must outlive the drain) —
        one hung decode ends the wait after ``job_drain_timeout`` seconds
        instead of hanging server shutdown forever.  With durability on, the
        abandoned work is simply re-enqueued on the next open.
        """
        if not self._closed:
            # The closed flag flips under the jobs lock so a racing first
            # access of .jobs either sees it and refuses, or wins the race
            # and hands its store to this close.
            with self._jobs_lock:
                self._closed = True
                jobs = self._jobs
            if jobs is not None:
                jobs.close(wait=True, timeout=job_drain_timeout)
            self.batcher.close()
            if self.sched is not None:
                self.sched.close(wait=True)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _default_generation(self, entry: ModelEntry | None = None) -> GenerationConfig:
        """The decode-bounds config: the service override, or the (given or
        default) entry's own pipeline default."""
        if self.generation is not None:
            return self.generation
        entry = entry or self.registry.default_entry()
        if entry is None:
            return GenerationConfig()
        return entry.ensure_loaded().generation

    def _max_length(self) -> int:
        return self._default_generation().max_length

    def _resolve_entry(self, model_spec: str | None) -> ModelEntry:
        """Resolve a request's ``model`` reference to a loaded registry entry.

        Translates :class:`repro.registry.RegistryError` into the contract's
        422 ``unknown_model`` envelope, and checkpoint-integrity failures
        during a lazy load into a 500 — a client cannot fix a corrupt
        checkpoint by changing its request.
        """
        try:
            return self.registry.resolve(model_spec)
        except RegistryError as exc:
            if exc.kind == "unknown":
                raise ApiError.unknown_model(str(exc)) from exc
            raise ApiError.internal(str(exc)) from exc

    def _resolve_strategy(self, strategy: DecodingStrategy | None) -> DecodingStrategy:
        """The effective strategy: an explicit one (validated, normalised) or
        the service default derived from the legacy generation config."""
        if strategy is None:
            return strategy_from_generation(self._default_generation())
        strategy.validate()
        return strategy.normalised()

    def _generation_view(self, strategy: DecodingStrategy) -> GenerationConfig:
        """The legacy :class:`GenerationConfig` equivalent of ``strategy``
        (what pre-v1 callers read off :attr:`ServedAdvice.generation`)."""
        base = self._default_generation()
        if isinstance(strategy, BeamStrategy):
            return GenerationConfig(max_length=base.max_length,
                                    beam_size=strategy.beam_size,
                                    length_penalty=strategy.length_penalty)
        if isinstance(strategy, GreedyStrategy) and base.beam_size <= 1:
            # The pre-v1 default view: the service's own config, penalty
            # and all (the old service echoed it unchanged).
            return base
        return GenerationConfig(max_length=base.max_length)

    def _to_response(self, served: ServedAdvice, *,
                     echo_model: bool = False) -> AdviseResponse:
        session = served.session
        return AdviseResponse(
            generated_code=session.generated_code,
            advice=advice_items(session),
            diagnostics=tuple(session.parse_diagnostics),
            strategy=served.strategy,
            cached=served.cached,
            latency_ms=served.latency_ms,
            cache_key=served.cache_key,
            model=served.model if echo_model else None,
        )

    def _final_chunk(self, source_code: str, diagnostics: list,
                     result: PredictionResult, *, strategy: DecodingStrategy,
                     cached: bool, start: float, key: str, entry: ModelEntry,
                     echo_model: bool, verify_requested: bool = False) -> dict:
        """Record metrics for a finished stream and build its final chunk."""
        session = build_advice_session(diagnostics, result)
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.metrics_.record_request(latency_ms, cached=cached,
                                     model=entry.identity)
        entry.record_request()
        self.metrics_.record_stream()
        verification = None
        if verify_requested:
            # Streams never block on simulation; the explicit skip marker
            # tells the caller where the verified path lives.
            verification = VerificationReport.skipped(
                "streaming responses are not verified; "
                "use POST /v1/advise").to_payload()
            self.metrics_.record_verify(0.0, "skipped")
        response = AdviseResponse(
            generated_code=session.generated_code,
            advice=advice_items(session),
            diagnostics=tuple(session.parse_diagnostics),
            strategy=strategy,
            cached=cached,
            latency_ms=latency_ms,
            cache_key=key,
            model=entry.identity if echo_model else None,
            verification=verification,
        )
        return {"type": "final", "response": response.to_dict()}

    def _advise_async(self, source_code: str, strategy: DecodingStrategy,
                      generation_view: GenerationConfig | None = None,
                      entry: ModelEntry | None = None) -> Future:
        """The shared (cache → single-flight → batch) path for one request.

        ``generation_view`` overrides the legacy config echoed on
        :attr:`ServedAdvice.generation` (the legacy shim passes the merged
        pre-normalisation config so partial-override echoes stay faithful).
        ``entry`` is the resolved registry entry; None resolves the default
        alias (legacy callers).  The owner of a decode holds a lease on the
        entry from submit until the decode resolves, so a concurrent
        hot-swap drains behind queued work instead of dropping it.
        """
        self._require_not_draining()
        start = time.perf_counter()
        response: Future = Future()
        if entry is None:
            entry = self._resolve_entry(None)

        unit, diagnostics = parse_source_with_diagnostics(source_code)
        xsbt = xsbt_string(unit)
        tokens = tokenize_code(source_code)
        key = canonical_cache_key(source_code, xsbt, tokens=tokens,
                                  strategy=strategy, model=entry.identity)

        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self._resolve(response, source_code, diagnostics, hit,
                              cached=True, start=start, key=key,
                              strategy=strategy, generation_view=generation_view,
                              entry=entry)
                return response

        work = _AdviseWork(source_code=source_code, xsbt=xsbt, tokens=tokens,
                           strategy=strategy, entry=entry)
        late_hit = None
        with self._inflight_lock:
            inflight = self._inflight.get(key)
            owner = inflight is None
            if owner:
                if self.cache is not None:
                    # Re-check under the lock: an owner that completed between
                    # our miss above and here has already populated the cache.
                    # peek() keeps the hit/miss counters at one count per
                    # request; resolution happens outside the lock.
                    late_hit = self.cache.peek(key)
                if late_hit is None:
                    entry.acquire()
                    try:
                        inflight = self._submit_sched(work)
                        if inflight is None:
                            inflight = self.batcher.submit(work)
                    except BaseException:
                        entry.release()
                        raise
                    self._inflight[key] = inflight
        if late_hit is not None:
            self._resolve(response, source_code, diagnostics, late_hit,
                          cached=True, start=start, key=key,
                          strategy=strategy, generation_view=generation_view,
                          entry=entry)
            return response

        def _on_done(decode: Future) -> None:
            try:
                result = decode.result()
            except Exception as exc:  # noqa: BLE001 — surfaced to the caller
                if owner:
                    with self._inflight_lock:
                        self._inflight.pop(key, None)
                    entry.release()
                self.metrics_.record_error()
                response.set_exception(exc)
                return
            if owner:
                # Populate the cache BEFORE dropping the in-flight entry, and
                # have would-be owners re-check the cache under the in-flight
                # lock, so a concurrent identical request finds one of the two.
                if self.cache is not None:
                    self.cache.put(key, result)
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                entry.release()
            self._resolve(response, source_code, diagnostics, result,
                          cached=not owner, start=start, key=key,
                          strategy=strategy, generation_view=generation_view,
                          entry=entry)

        inflight.add_done_callback(_on_done)
        return response

    def _resolve(self, response: Future, source_code: str, diagnostics: list,
                 result: PredictionResult, *, cached: bool, start: float,
                 key: str, strategy: DecodingStrategy,
                 generation_view: GenerationConfig | None = None,
                 entry: ModelEntry | None = None) -> None:
        """Build this request's session (own anchors + diagnostics) and finish.

        A non-cached resolve is the owner of the decode, and the batch already
        extracted suggestions against this very buffer — only cache hits and
        coalesced followers (possibly layout-shifted buffers) re-anchor.
        """
        if cached:
            result = anchor_result(source_code, result)
        session = build_advice_session(diagnostics, result)
        latency_ms = (time.perf_counter() - start) * 1000.0
        identity = entry.identity if entry is not None else None
        self.metrics_.record_request(latency_ms, cached=cached, model=identity)
        if entry is not None:
            entry.record_request()
        view = generation_view or self._generation_view(strategy)
        response.set_result(ServedAdvice(session=session, cached=cached,
                                         latency_ms=latency_ms, cache_key=key,
                                         generation=view, strategy=strategy,
                                         model=identity))

    def _submit_sched(self, work: _AdviseWork,
                      on_token=None) -> Future | None:
        """Submit ``work`` to the continuous scheduler, if it can serve it.

        Returns ``None`` when the static path must serve the request instead:
        the service runs in ``"static"`` mode, the strategy has no per-row
        state machine, the request needs more rows than the whole batch has,
        or the scheduler queue is full (backpressure sheds to the batcher
        rather than failing — both paths are bit-identical).  ``on_token``
        streams token ids per iteration (the streaming path).
        """
        if self.sched is None:
            return None
        try:
            rows = work.strategy.row_state(sos_id=0, eos_id=0).rows
        except NotImplementedError:
            return None
        if rows > self.sched.policy.max_rows:
            return None
        sched_work = SchedWork(
            source_code=work.source_code, xsbt=work.xsbt, tokens=work.tokens,
            strategy=work.strategy, entry=work.entry,
            max_length=self._default_generation(work.entry).max_length,
            on_token=on_token)
        try:
            return self.sched.submit(sched_work)
        except QueueFullError:
            return None

    def _process_batch(self, works: list[_AdviseWork]) -> list[PredictionResult]:
        """Flush one micro-batch through the batched decode path.

        The batcher groups flushes by ``(model identity, canonical strategy
        string)``, so every work item in the batch shares one decoding
        strategy *and* one model revision — the whole flush runs through that
        entry's batched decoder.  Each work item's owner already holds a
        lease on the entry, so the weights cannot be unloaded under the
        flush.  Returns raw prediction results; per-request session assembly
        (advice anchoring, diagnostics) happens back on the requesting side
        so that coalesced and cached followers are anchored to *their*
        buffers.

        The decode wall time is recorded per request rider as the model-side
        decode latency (``decode_latency_ms_p50/p95`` in ``/metrics``).
        """
        entry = works[0].entry
        start = time.perf_counter()
        results = entry.ensure_loaded().predict_code_batch(
            [work.source_code for work in works],
            [work.xsbt for work in works],
            strategy=works[0].strategy,
            generation=self._default_generation(entry),
            source_tokens=[work.tokens for work in works],
        )
        decode_ms = (time.perf_counter() - start) * 1000.0
        self.metrics_.record_decode(decode_ms, requests=len(works))
        return results
