"""Simulated MPI communicator: point-to-point queues and collectives.

Each simulated rank runs in its own thread (see :mod:`repro.mpisim.runtime`);
this module provides the shared coordination objects:

* :class:`MessageBox` — per-(source, dest, tag) FIFO queues for Send/Recv;
* :class:`CollectiveExchange` — barrier + slot array used by every collective
  (Bcast, Reduce, Allreduce, Scatter, Gather, Allgather, Alltoall, Scan,
  Barrier);
* :class:`SimCommunicator` — the object the interpreter's MPI bindings talk
  to; supports communicator splitting (``MPI_Comm_split``) by building child
  communicators over the participating ranks.

The simulator models *values*, not bytes: a message is a list of Python
numbers.  That is all the validity check of the numerical benchmark needs.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from .datatypes import MPIOp

#: Seconds a blocking receive/collective waits before declaring deadlock.
DEFAULT_TIMEOUT = 30.0


class SimulationDeadlock(RuntimeError):
    """Raised when a blocking MPI operation times out (deadlock in the program)."""


@dataclass
class MessageBox:
    """Point-to-point mailboxes keyed by (source, dest, tag)."""

    timeout: float = DEFAULT_TIMEOUT
    _queues: dict[tuple[int, int, int], "queue.Queue"] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _queue_for(self, source: int, dest: int, tag: int) -> "queue.Queue":
        key = (source, dest, tag)
        with self._lock:
            if key not in self._queues:
                self._queues[key] = queue.Queue()
            return self._queues[key]

    def send(self, source: int, dest: int, tag: int, payload: list) -> None:
        self._queue_for(source, dest, tag).put(list(payload))

    def recv(self, source: int, dest: int, tag: int) -> list:
        try:
            return self._queue_for(source, dest, tag).get(timeout=self.timeout)
        except queue.Empty as exc:
            raise SimulationDeadlock(
                f"rank {dest} timed out waiting for a message from rank {source} "
                f"(tag {tag})"
            ) from exc


class CollectiveExchange:
    """One reusable rendezvous object shared by all ranks of a communicator.

    Every collective follows the same pattern: each rank deposits its
    contribution into its slot, everyone meets at a barrier, every rank then
    reads what it needs, and a second barrier prevents the next collective
    from overwriting slots that are still being read.
    """

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.size = size
        self.timeout = timeout
        self._slots: list = [None] * size
        self._barrier = threading.Barrier(size)

    def _wait(self, rank: int | None = None, label: str | None = None) -> None:
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            who = f"rank {rank}" if rank is not None else "a rank"
            call = label or "a collective operation"
            raise SimulationDeadlock(
                f"{who} timed out in {call} after {self.timeout:g}s — "
                f"not all {self.size} ranks reached the call "
                f"(ranks diverged or deadlocked)"
            ) from exc

    def exchange(self, rank: int, contribution, label: str | None = None) -> list:
        """Deposit ``contribution`` and return every rank's contribution."""
        self._slots[rank] = contribution
        self._wait(rank, label)
        snapshot = list(self._slots)
        self._wait(rank, label)
        return snapshot

    def barrier(self, rank: int, label: str | None = None) -> None:
        self._wait(rank, label or "MPI_Barrier")


@dataclass
class CommGroup:
    """Shared state of one communicator (world or split child)."""

    size: int
    message_box: MessageBox
    collective: CollectiveExchange
    #: Mapping of communicator rank -> world rank (identity for the world).
    world_ranks: list[int] = field(default_factory=list)


class SimCommunicator:
    """The per-rank handle on a communicator's shared state."""

    def __init__(self, group: CommGroup, rank: int) -> None:
        self.group = group
        self.rank = rank

    # ----------------------------------------------------------- environment

    @property
    def size(self) -> int:
        return self.group.size

    # --------------------------------------------------------- point to point

    def send(self, payload: list, dest: int, tag: int) -> None:
        self.group.message_box.send(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: int) -> list:
        return self.group.message_box.recv(source, self.rank, tag)

    def sendrecv(self, payload: list, dest: int, send_tag: int,
                 source: int, recv_tag: int) -> list:
        """Combined send/receive; either side may be MPI_PROC_NULL (handled by
        the caller passing dest/source < 0)."""
        if dest >= 0:
            self.group.message_box.send(self.rank, dest, send_tag, payload)
        if source >= 0:
            return self.group.message_box.recv(source, self.rank, recv_tag)
        return []

    # ------------------------------------------------------------ collectives

    def barrier(self) -> None:
        self.group.collective.barrier(self.rank)

    def bcast(self, payload: list | None, root: int) -> list:
        contributions = self.group.collective.exchange(self.rank, payload,
                                                       "MPI_Bcast")
        result = contributions[root]
        return list(result) if result is not None else []

    def reduce(self, payload: list, op: MPIOp, root: int) -> list | None:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Reduce")
        if self.rank != root:
            return None
        return _elementwise_reduce(contributions, op)

    def allreduce(self, payload: list, op: MPIOp) -> list:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Allreduce")
        return _elementwise_reduce(contributions, op)

    def scan(self, payload: list, op: MPIOp) -> list:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Scan")
        return _elementwise_reduce(contributions[: self.rank + 1], op)

    def scatter(self, payload: list | None, count: int, root: int) -> list:
        contributions = self.group.collective.exchange(self.rank, payload,
                                                       "MPI_Scatter")
        source = contributions[root]
        if source is None:
            raise ValueError(f"MPI_Scatter: root {root} provided no send buffer")
        start = self.rank * count
        return list(source[start:start + count])

    def gather(self, payload: list, root: int) -> list | None:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Gather")
        if self.rank != root:
            return None
        flattened: list = []
        for chunk in contributions:
            flattened.extend(chunk)
        return flattened

    def allgather(self, payload: list) -> list:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Allgather")
        flattened: list = []
        for chunk in contributions:
            flattened.extend(chunk)
        return flattened

    def alltoall(self, payload: list, count: int) -> list:
        contributions = self.group.collective.exchange(self.rank, list(payload),
                                                       "MPI_Alltoall")
        received: list = []
        for source_chunk in contributions:
            start = self.rank * count
            received.extend(source_chunk[start:start + count])
        return received

    # ------------------------------------------------------------- splitting

    def split(self, color: int, key: int,
              split_registry: "SplitRegistry") -> "SimCommunicator":
        """MPI_Comm_split: ranks with the same ``color`` form a child
        communicator ordered by ``key`` (ties broken by world rank)."""
        contributions = self.group.collective.exchange(
            self.rank, (color, key, self.rank), "MPI_Comm_split")
        members = sorted(
            (k, r) for (c, k, r) in contributions if c == color
        )
        member_ranks = [r for _, r in members]
        new_rank = member_ranks.index(self.rank)
        child_group = split_registry.group_for(tuple(member_ranks), self.group.size)
        return SimCommunicator(child_group, new_rank)


class SplitRegistry:
    """Shared registry so every rank of a split obtains the *same* child group."""

    def __init__(self, timeout: float = DEFAULT_TIMEOUT) -> None:
        self._lock = threading.Lock()
        self._groups: dict[tuple[int, ...], CommGroup] = {}
        self.timeout = timeout

    def group_for(self, member_world_ranks: tuple[int, ...], _parent_size: int) -> CommGroup:
        with self._lock:
            if member_world_ranks not in self._groups:
                size = len(member_world_ranks)
                self._groups[member_world_ranks] = CommGroup(
                    size=size,
                    message_box=MessageBox(timeout=self.timeout),
                    collective=CollectiveExchange(size, timeout=self.timeout),
                    world_ranks=list(member_world_ranks),
                )
            return self._groups[member_world_ranks]


def _elementwise_reduce(contributions: list[list], op: MPIOp) -> list:
    """Element-wise reduction across per-rank payload lists."""
    result = list(contributions[0])
    for chunk in contributions[1:]:
        for i, value in enumerate(chunk):
            result[i] = op.combine(result[i], value)
    return result


def make_world(size: int, timeout: float = DEFAULT_TIMEOUT) -> list[SimCommunicator]:
    """Create MPI_COMM_WORLD handles for ``size`` ranks."""
    group = CommGroup(
        size=size,
        message_box=MessageBox(timeout=timeout),
        collective=CollectiveExchange(size, timeout=timeout),
        world_ranks=list(range(size)),
    )
    return [SimCommunicator(group, rank) for rank in range(size)]
