"""Simulated MPI runtime: communicator, C interpreter, multi-rank runner,
program validation."""

from .comm import (
    CollectiveExchange,
    CommGroup,
    MessageBox,
    SimCommunicator,
    SimulationDeadlock,
    SplitRegistry,
    make_world,
)
from .datatypes import (
    MPI_CONSTANT_VALUES,
    MPI_DOUBLE,
    MPI_INT,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    MPIDatatype,
    MPIOp,
    MPISentinel,
    datatype_for_c_type,
)
from .interpreter import CInterpreter, MPIBindings, RankContext
from .memory import Cell, Pointer, RawAllocation, Scope, read_buffer, write_buffer
from .runtime import MPIRuntime, RankResult, RunResult, run_program
from .validate import ValidationResult, all_floats, expect_close, first_float, validate_program

__all__ = [
    "CollectiveExchange",
    "CommGroup",
    "MessageBox",
    "SimCommunicator",
    "SimulationDeadlock",
    "SplitRegistry",
    "make_world",
    "MPI_CONSTANT_VALUES",
    "MPI_DOUBLE",
    "MPI_INT",
    "MPI_MAX",
    "MPI_MIN",
    "MPI_PROD",
    "MPI_SUM",
    "MPIDatatype",
    "MPIOp",
    "MPISentinel",
    "datatype_for_c_type",
    "CInterpreter",
    "MPIBindings",
    "RankContext",
    "Cell",
    "Pointer",
    "RawAllocation",
    "Scope",
    "read_buffer",
    "write_buffer",
    "MPIRuntime",
    "RankResult",
    "RunResult",
    "run_program",
    "ValidationResult",
    "all_floats",
    "expect_close",
    "first_float",
    "validate_program",
]
