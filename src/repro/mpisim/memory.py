"""Value model for the C interpreter: cells, arrays, pointers.

The interpreter models just enough of C's storage semantics to execute MPI
numerical kernels:

* a scalar variable lives in a :class:`Cell` (a mutable box);
* an array (fixed-size or malloc'ed) is a Python list stored in a cell;
* ``&x`` produces a :class:`Pointer` to the cell, ``&a[i]`` and plain ``a``
  produce a pointer into the list with an offset;
* pointer arithmetic, indexing and dereferencing work on those pointers.

MPI buffer arguments accept any of the three forms; the helpers
:func:`read_buffer` / :func:`write_buffer` normalise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Cell:
    """A mutable storage location for one variable."""

    value: Any = 0
    c_type: str = "int"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.value!r}: {self.c_type})"


@dataclass
class RawAllocation:
    """The (typeless) result of ``malloc(bytes)`` before a cast assigns an
    element type."""

    num_bytes: int


@dataclass
class Pointer:
    """A pointer either to a scalar cell or into a Python list."""

    target: Any  # Cell or list
    offset: int = 0

    def deref(self) -> Any:
        if isinstance(self.target, Cell):
            return self.target.value
        return self.target[self.offset]

    def store(self, value: Any) -> None:
        if isinstance(self.target, Cell):
            self.target.value = value
        else:
            self.target[self.offset] = value

    def index(self, i: int) -> Any:
        if isinstance(self.target, Cell):
            if i == 0:
                return self.target.value
            raise IndexError("scalar pointer indexed beyond offset 0")
        return self.target[self.offset + i]

    def store_index(self, i: int, value: Any) -> None:
        if isinstance(self.target, Cell):
            if i != 0:
                raise IndexError("scalar pointer indexed beyond offset 0")
            self.target.value = value
        else:
            self.target[self.offset + i] = value

    def shifted(self, delta: int) -> "Pointer":
        return Pointer(self.target, self.offset + delta)


class Scope:
    """A lexical scope chain of name -> :class:`Cell` bindings."""

    def __init__(self, parent: "Scope | None" = None) -> None:
        self.parent = parent
        self.bindings: dict[str, Cell] = {}

    def declare(self, name: str, value: Any = 0, c_type: str = "int") -> Cell:
        cell = Cell(value=value, c_type=c_type)
        self.bindings[name] = cell
        return cell

    def lookup(self, name: str) -> Cell | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(parent=self)


def read_buffer(buffer: Any, count: int) -> list:
    """Normalise an MPI send buffer argument into a list of ``count`` values."""
    if isinstance(buffer, Pointer):
        if isinstance(buffer.target, Cell):
            value = buffer.target.value
            if isinstance(value, list):
                return list(value[buffer.offset:buffer.offset + count])
            return [value] * min(count, 1) if count >= 1 else []
        return list(buffer.target[buffer.offset:buffer.offset + count])
    if isinstance(buffer, list):
        return list(buffer[:count])
    if isinstance(buffer, Cell):
        if isinstance(buffer.value, list):
            return list(buffer.value[:count])
        return [buffer.value]
    # A bare scalar (e.g. literal) — only meaningful for count == 1.
    return [buffer]


def write_buffer(buffer: Any, values: list) -> None:
    """Write received values back through an MPI receive buffer argument."""
    if isinstance(buffer, Pointer):
        if isinstance(buffer.target, Cell):
            cell_value = buffer.target.value
            if isinstance(cell_value, list):
                for i, v in enumerate(values):
                    cell_value[buffer.offset + i] = v
            else:
                if values:
                    buffer.target.value = values[0]
            return
        for i, v in enumerate(values):
            buffer.target[buffer.offset + i] = v
        return
    if isinstance(buffer, list):
        for i, v in enumerate(values):
            buffer[i] = v
        return
    if isinstance(buffer, Cell):
        if isinstance(buffer.value, list):
            for i, v in enumerate(values):
                buffer.value[i] = v
        elif values:
            buffer.value = values[0]
        return
    raise TypeError(f"cannot write into MPI buffer of type {type(buffer)!r}")
