"""A tree-walking interpreter for the C subset emitted by the front-end.

Together with :mod:`repro.mpisim.comm` this is the "compile and run"
substitute used to validate MPI programs (Section VI-C of the paper compiles
and runs the 11 numerical benchmark programs; we interpret them on a simulated
multi-rank MPI runtime instead).

Supported C: declarations (scalars, fixed arrays, malloc'ed arrays), the full
expression grammar produced by the parser, control flow (if/while/do/for/
switch/break/continue/return), user-defined functions, and a library of C
standard functions (printf, malloc/free, math, rand) plus the MPI bindings in
:class:`MPIBindings`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..clang import ast_nodes as ast
from ..clang.errors import InterpreterError
from .comm import SimCommunicator, SplitRegistry
from .datatypes import C_TYPE_SIZES, MPI_CONSTANT_VALUES, MPIDatatype, MPIOp, MPISentinel
from .memory import Cell, Pointer, RawAllocation, Scope, read_buffer, write_buffer


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _AbortSignal(Exception):
    """Raised by MPI_Abort / exit."""

    def __init__(self, code: int) -> None:
        self.code = code


@dataclass
class RankContext:
    """Per-rank execution context shared with the MPI bindings."""

    rank: int
    comm_world: SimCommunicator
    split_registry: SplitRegistry
    stdout: list[str] = field(default_factory=list)
    wall_clock: float = 0.0
    rand_state: int = 1
    initialized: bool = False
    finalized: bool = False
    #: The blocking MPI call this rank is currently inside (e.g.
    #: ``"MPI_Recv(source=1, tag=0)"``), or None when it is computing.  Set by
    #: :class:`MPIBindings` around every potentially blocking operation and
    #: deliberately *left set* when that operation raises
    #: :class:`repro.mpisim.comm.SimulationDeadlock` — the runtime reads it to
    #: report which ranks were blocked in which call.
    blocked_in: str | None = None

    def srand(self, seed: int) -> None:
        self.rand_state = (int(seed) & 0x7FFFFFFF) or 1

    def rand(self) -> int:
        # Deterministic LCG (glibc-like constants) so runs are reproducible.
        self.rand_state = (1103515245 * self.rand_state + 12345) & 0x7FFFFFFF
        return self.rand_state

    def wtime(self) -> float:
        # A simulated clock: advances a little on every call.
        self.wall_clock += 1e-3
        return self.wall_clock


class MPIBindings:
    """Implementations of the MPI functions the interpreter dispatches to."""

    def __init__(self, context: RankContext) -> None:
        self.context = context
        #: request id -> ("send", None) | ("recv", (buffer, source, tag))
        self._pending: dict[int, tuple[str, Any]] = {}
        self._next_request = 1

    @contextmanager
    def _blocking(self, label: str) -> Iterator[None]:
        """Mark this rank as blocked in ``label`` for the duration of a call.

        On success the marker is cleared; on failure (deadlock timeout, or a
        rank thread that never returns at all) it stays set, so the runtime
        and the exception handler can report *which call* the rank was stuck
        in.  Nested blocking calls cannot occur (the interpreter is
        single-threaded per rank), so a plain attribute is enough.
        """
        self.context.blocked_in = label
        yield
        self.context.blocked_in = None

    # ----------------------------------------------------------- environment

    def MPI_Init(self, *_args) -> int:
        self.context.initialized = True
        return 0

    def MPI_Init_thread(self, *_args) -> int:
        self.context.initialized = True
        return 0

    def MPI_Finalize(self, *_args) -> int:
        self.context.finalized = True
        return 0

    def MPI_Abort(self, _comm=None, code: int = 1) -> int:
        raise _AbortSignal(int(code))

    def MPI_Comm_rank(self, comm, rank_out) -> int:
        communicator = self._resolve_comm(comm)
        write_buffer(rank_out, [communicator.rank])
        return 0

    def MPI_Comm_size(self, comm, size_out) -> int:
        communicator = self._resolve_comm(comm)
        write_buffer(size_out, [communicator.size])
        return 0

    def MPI_Get_processor_name(self, name_out, len_out) -> int:
        name = f"simnode{self.context.rank:03d}"
        write_buffer(name_out, [name])
        write_buffer(len_out, [len(name)])
        return 0

    def MPI_Wtime(self) -> float:
        return self.context.wtime()

    def MPI_Barrier(self, comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking("MPI_Barrier"):
            communicator.barrier()
        return 0

    # --------------------------------------------------------- point to point

    def MPI_Send(self, buf, count, _dtype, dest, tag, comm) -> int:
        communicator = self._resolve_comm(comm)
        dest = int(dest)
        if dest < 0:
            return 0
        communicator.send(read_buffer(buf, int(count)), dest, int(tag))
        return 0

    MPI_Ssend = MPI_Send
    MPI_Rsend = MPI_Send
    MPI_Bsend = MPI_Send

    def MPI_Recv(self, buf, count, _dtype, source, tag, comm, _status=None) -> int:
        communicator = self._resolve_comm(comm)
        source = int(source)
        if source < 0:
            return 0
        with self._blocking(f"MPI_Recv(source={source}, tag={int(tag)})"):
            values = communicator.recv(source, int(tag))
        write_buffer(buf, values[: int(count)])
        return 0

    def MPI_Isend(self, buf, count, dtype, dest, tag, comm, request_out) -> int:
        # The simulator's sends never block, so Isend completes eagerly.
        self.MPI_Send(buf, count, dtype, dest, tag, comm)
        request_id = self._register_request(("send", None))
        write_buffer(request_out, [request_id])
        return 0

    def MPI_Irecv(self, buf, count, _dtype, source, tag, comm, request_out) -> int:
        request_id = self._register_request(("recv", (buf, int(count), int(source),
                                                      int(tag), comm)))
        write_buffer(request_out, [request_id])
        return 0

    def MPI_Wait(self, request, _status=None) -> int:
        request_id = self._request_id(request)
        self._complete(request_id)
        return 0

    def MPI_Waitall(self, count, requests, _statuses=None) -> int:
        ids = read_buffer(requests, int(count))
        for request_id in ids:
            self._complete(int(request_id))
        return 0

    def MPI_Sendrecv(self, sendbuf, sendcount, _sdtype, dest, sendtag,
                     recvbuf, recvcount, _rdtype, source, recvtag, comm,
                     _status=None) -> int:
        communicator = self._resolve_comm(comm)
        dest = int(dest)
        source = int(source)
        if dest >= 0:
            communicator.send(read_buffer(sendbuf, int(sendcount)), dest, int(sendtag))
        if source >= 0:
            with self._blocking(
                    f"MPI_Sendrecv(source={source}, recvtag={int(recvtag)})"):
                values = communicator.recv(source, int(recvtag))
            write_buffer(recvbuf, values[: int(recvcount)])
        return 0

    def MPI_Get_count(self, _status, _dtype, count_out) -> int:
        write_buffer(count_out, [0])
        return 0

    # ------------------------------------------------------------ collectives

    def MPI_Bcast(self, buf, count, _dtype, root, comm) -> int:
        communicator = self._resolve_comm(comm)
        payload = read_buffer(buf, int(count)) if communicator.rank == int(root) else None
        with self._blocking(f"MPI_Bcast(root={int(root)})"):
            result = communicator.bcast(payload, int(root))
        write_buffer(buf, result[: int(count)])
        return 0

    def MPI_Reduce(self, sendbuf, recvbuf, count, _dtype, op, root, comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking(f"MPI_Reduce(root={int(root)})"):
            result = communicator.reduce(read_buffer(sendbuf, int(count)),
                                         self._resolve_op(op), int(root))
        if result is not None:
            write_buffer(recvbuf, result[: int(count)])
        return 0

    def MPI_Allreduce(self, sendbuf, recvbuf, count, _dtype, op, comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking("MPI_Allreduce"):
            result = communicator.allreduce(read_buffer(sendbuf, int(count)),
                                            self._resolve_op(op))
        write_buffer(recvbuf, result[: int(count)])
        return 0

    def MPI_Scan(self, sendbuf, recvbuf, count, _dtype, op, comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking("MPI_Scan"):
            result = communicator.scan(read_buffer(sendbuf, int(count)),
                                       self._resolve_op(op))
        write_buffer(recvbuf, result[: int(count)])
        return 0

    def MPI_Scatter(self, sendbuf, sendcount, _sdtype, recvbuf, recvcount, _rdtype,
                    root, comm) -> int:
        communicator = self._resolve_comm(comm)
        payload = None
        if communicator.rank == int(root):
            payload = read_buffer(sendbuf, int(sendcount) * communicator.size)
        with self._blocking(f"MPI_Scatter(root={int(root)})"):
            received = communicator.scatter(payload, int(sendcount), int(root))
        write_buffer(recvbuf, received[: int(recvcount)])
        return 0

    def MPI_Gather(self, sendbuf, sendcount, _sdtype, recvbuf, recvcount, _rdtype,
                   root, comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking(f"MPI_Gather(root={int(root)})"):
            gathered = communicator.gather(read_buffer(sendbuf, int(sendcount)),
                                           int(root))
        if gathered is not None:
            write_buffer(recvbuf, gathered)
        return 0

    def MPI_Allgather(self, sendbuf, sendcount, _sdtype, recvbuf, _recvcount, _rdtype,
                      comm) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking("MPI_Allgather"):
            gathered = communicator.allgather(read_buffer(sendbuf, int(sendcount)))
        write_buffer(recvbuf, gathered)
        return 0

    def MPI_Alltoall(self, sendbuf, sendcount, _sdtype, recvbuf, _recvcount, _rdtype,
                     comm) -> int:
        communicator = self._resolve_comm(comm)
        payload = read_buffer(sendbuf, int(sendcount) * communicator.size)
        with self._blocking("MPI_Alltoall"):
            received = communicator.alltoall(payload, int(sendcount))
        write_buffer(recvbuf, received)
        return 0

    # ----------------------------------------------------------- communicators

    def MPI_Comm_split(self, comm, color, key, newcomm_out) -> int:
        communicator = self._resolve_comm(comm)
        with self._blocking("MPI_Comm_split"):
            child = communicator.split(int(color), int(key),
                                       self.context.split_registry)
        write_buffer(newcomm_out, [child])
        return 0

    def MPI_Comm_dup(self, comm, newcomm_out) -> int:
        write_buffer(newcomm_out, [self._resolve_comm(comm)])
        return 0

    def MPI_Comm_free(self, _comm_ref) -> int:
        return 0

    # -------------------------------------------------------------- topology

    def MPI_Dims_create(self, nnodes, ndims, dims) -> int:
        nnodes, ndims = int(nnodes), int(ndims)
        current = read_buffer(dims, ndims)
        # Fill in zero entries with a balanced factorisation.
        factors = _balanced_dims(nnodes, ndims)
        result = [int(c) if int(c) > 0 else factors.pop(0) for c in current]
        write_buffer(dims, result)
        return 0

    def MPI_Cart_create(self, comm, _ndims, _dims, _periods, _reorder, newcomm_out) -> int:
        write_buffer(newcomm_out, [self._resolve_comm(comm)])
        return 0

    def MPI_Cart_coords(self, comm, rank, ndims, coords_out) -> int:
        communicator = self._resolve_comm(comm)
        ndims = int(ndims)
        dims = _balanced_dims(communicator.size, ndims)
        remaining = int(rank)
        coords = []
        for d in reversed(dims):
            coords.append(remaining % d)
            remaining //= d
        write_buffer(coords_out, list(reversed(coords)))
        return 0

    def MPI_Cart_shift(self, comm, _direction, disp, source_out, dest_out) -> int:
        communicator = self._resolve_comm(comm)
        rank, size = communicator.rank, communicator.size
        disp = int(disp)
        write_buffer(source_out, [(rank - disp) % size])
        write_buffer(dest_out, [(rank + disp) % size])
        return 0

    # -------------------------------------------------------------- internals

    def _register_request(self, entry: tuple[str, Any]) -> int:
        request_id = self._next_request
        self._next_request += 1
        self._pending[request_id] = entry
        return request_id

    def _request_id(self, request) -> int:
        if isinstance(request, Pointer):
            return int(request.deref())
        if isinstance(request, Cell):
            return int(request.value)
        return int(request)

    def _complete(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        kind, payload = entry
        if kind == "recv":
            buf, count, source, tag, comm = payload
            communicator = self._resolve_comm(comm)
            if source >= 0:
                with self._blocking(f"MPI_Wait(recv source={source}, tag={tag})"):
                    values = communicator.recv(source, tag)
                write_buffer(buf, values[:count])

    def _resolve_comm(self, comm) -> SimCommunicator:
        if isinstance(comm, SimCommunicator):
            return comm
        if isinstance(comm, Cell):
            return self._resolve_comm(comm.value)
        if isinstance(comm, Pointer):
            return self._resolve_comm(comm.deref())
        if isinstance(comm, MPISentinel):
            return self.context.comm_world
        if comm is None or comm == 0:
            return self.context.comm_world
        raise InterpreterError(f"cannot resolve communicator from {comm!r}")

    @staticmethod
    def _resolve_op(op) -> MPIOp:
        if isinstance(op, MPIOp):
            return op
        raise InterpreterError(f"unsupported reduction operator {op!r}")


def _balanced_dims(nnodes: int, ndims: int) -> list[int]:
    """A near-square factorisation of ``nnodes`` into ``ndims`` factors."""
    dims = [1] * ndims
    remaining = nnodes
    idx = 0
    factor = 2
    while remaining > 1 and factor <= remaining:
        if remaining % factor == 0:
            dims[idx % ndims] *= factor
            remaining //= factor
            idx += 1
        else:
            factor += 1
    dims.sort(reverse=True)
    return dims


class CInterpreter:
    """Execute one translation unit for one simulated rank."""

    def __init__(self, unit: ast.TranslationUnit, context: RankContext) -> None:
        self.unit = unit
        self.context = context
        self.bindings = MPIBindings(context)
        self.globals = Scope()
        self.functions: dict[str, ast.FunctionDef] = {}
        self._install_constants()
        self._install_globals()

    # ------------------------------------------------------------------ api

    def run_main(self, argv: list[str] | None = None) -> int:
        """Execute ``main`` and return its exit code."""
        main = self.functions.get("main")
        if main is None:
            raise InterpreterError("program has no main function")
        scope = self.globals.child()
        argv = argv or ["program"]
        scope.declare("argc", len(argv), "int")
        scope.declare("argv", list(argv), "char**")
        try:
            self._exec_block(main.body, scope)
        except _ReturnSignal as signal:
            return int(signal.value or 0)
        except _AbortSignal as signal:
            return int(signal.code)
        return 0

    @property
    def stdout(self) -> str:
        return "".join(self.context.stdout)

    # ------------------------------------------------------------- installers

    def _install_constants(self) -> None:
        for name, value in MPI_CONSTANT_VALUES.items():
            self.globals.declare(name, value, "const")
        self.globals.declare("MPI_COMM_WORLD_OBJECT", self.context.comm_world, "MPI_Comm")
        # MPI_COMM_WORLD resolves through the sentinel; keep both paths working.

    def _install_globals(self) -> None:
        for item in self.unit.items:
            if isinstance(item, ast.FunctionDef):
                self.functions[item.name] = item
            elif isinstance(item, ast.Declaration):
                scope_cells = self._exec_declaration(item, self.globals)
                _ = scope_cells

    # -------------------------------------------------------------- statements

    def _exec_block(self, block: ast.Compound, scope: Scope) -> None:
        inner = scope.child()
        for statement in block.statements:
            self._exec_statement(statement, inner)

    def _exec_statement(self, node: ast.Node, scope: Scope) -> None:
        if isinstance(node, ast.Declaration):
            self._exec_declaration(node, scope)
        elif isinstance(node, ast.ExpressionStatement):
            if node.expr is not None:
                self._eval(node.expr, scope)
        elif isinstance(node, ast.Compound):
            self._exec_block(node, scope)
        elif isinstance(node, ast.If):
            if self._truthy(self._eval(node.cond, scope)):
                self._exec_statement(node.then, scope)
            elif node.otherwise is not None:
                self._exec_statement(node.otherwise, scope)
        elif isinstance(node, ast.While):
            while self._truthy(self._eval(node.cond, scope)):
                try:
                    self._exec_statement(node.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(node, ast.DoWhile):
            while True:
                try:
                    self._exec_statement(node.body, scope)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(self._eval(node.cond, scope)):
                    break
        elif isinstance(node, ast.For):
            self._exec_for(node, scope)
        elif isinstance(node, ast.Switch):
            self._exec_switch(node, scope)
        elif isinstance(node, ast.Return):
            value = self._eval(node.value, scope) if node.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(node, ast.Break):
            raise _BreakSignal()
        elif isinstance(node, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(node, (ast.Label, ast.CaseLabel, ast.Include, ast.TypedefDecl,
                               ast.StructDef)):
            return
        elif isinstance(node, ast.Goto):
            raise InterpreterError("goto is not supported by the simulator")
        else:
            raise InterpreterError(f"unsupported statement kind {node.kind!r}")

    def _exec_for(self, node: ast.For, scope: Scope) -> None:
        loop_scope = scope.child()
        if node.init is not None:
            if isinstance(node.init, ast.Declaration):
                self._exec_declaration(node.init, loop_scope)
            elif isinstance(node.init, ast.ExpressionStatement):
                if node.init.expr is not None:
                    self._eval(node.init.expr, loop_scope)
            else:
                self._eval(node.init, loop_scope)
        while True:
            if node.cond is not None and not self._truthy(self._eval(node.cond, loop_scope)):
                break
            try:
                self._exec_statement(node.body, loop_scope)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if node.update is not None:
                self._eval(node.update, loop_scope)

    def _exec_switch(self, node: ast.Switch, scope: Scope) -> None:
        value = self._eval(node.cond, scope)
        statements = node.body.statements
        matched = False
        try:
            for statement in statements:
                if isinstance(statement, ast.CaseLabel):
                    if matched:
                        continue
                    if statement.value is None:
                        matched = True
                    else:
                        matched = self._eval(statement.value, scope) == value
                    continue
                if matched:
                    self._exec_statement(statement, scope)
        except _BreakSignal:
            return

    def _exec_declaration(self, node: ast.Declaration, scope: Scope) -> list[Cell]:
        cells: list[Cell] = []
        for declarator in node.declarators:
            value: Any
            if declarator.array_dims:
                size = 1
                for dim in declarator.array_dims:
                    size *= int(self._eval(dim, scope)) if dim is not None else 0
                value = [self._zero_for(node.type_name)] * max(size, 0)
            elif declarator.init is not None:
                value = self._eval(declarator.init, scope)
                if isinstance(value, ast.Node):
                    raise InterpreterError("unexpected AST node as initialiser value")
                if isinstance(value, RawAllocation):
                    value = self._materialise_allocation(value, node.type_name)
            elif declarator.pointer:
                value = None
            else:
                value = self._zero_for(node.type_name)
            if isinstance(declarator.init, ast.InitList):
                value = [self._eval(v, scope) for v in declarator.init.values]
            cell = scope.declare(declarator.name, value, node.type_name)
            cells.append(cell)
        return cells

    @staticmethod
    def _zero_for(type_name: str) -> Any:
        if "double" in type_name or "float" in type_name:
            return 0.0
        return 0

    @staticmethod
    def _materialise_allocation(alloc: RawAllocation, type_name: str) -> list:
        element = 8 if ("double" in type_name or "long" in type_name) else 4
        if "char" in type_name:
            element = 1
        count = max(alloc.num_bytes // element, 0)
        zero = 0.0 if ("double" in type_name or "float" in type_name) else 0
        return [zero] * count

    # ------------------------------------------------------------- expressions

    def _eval(self, node: ast.Node, scope: Scope) -> Any:
        if isinstance(node, ast.Literal):
            return self._eval_literal(node)
        if isinstance(node, ast.Identifier):
            return self._eval_identifier(node, scope)
        if isinstance(node, ast.Parenthesized):
            return self._eval(node.inner, scope)
        if isinstance(node, ast.BinaryOp):
            return self._eval_binary(node, scope)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node, scope)
        if isinstance(node, ast.PostfixOp):
            return self._eval_postfix(node, scope)
        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, scope)
        if isinstance(node, ast.Call):
            return self._eval_call(node, scope)
        if isinstance(node, ast.ArraySubscript):
            return self._eval_subscript(node, scope)
        if isinstance(node, ast.Cast):
            return self._eval_cast(node, scope)
        if isinstance(node, ast.Conditional):
            if self._truthy(self._eval(node.cond, scope)):
                return self._eval(node.then, scope)
            return self._eval(node.otherwise, scope)
        if isinstance(node, ast.CommaExpression):
            result = None
            for part in node.parts:
                result = self._eval(part, scope)
            return result
        if isinstance(node, ast.InitList):
            return [self._eval(v, scope) for v in node.values]
        if isinstance(node, ast.MemberAccess):
            raise InterpreterError("struct member access is not supported by the simulator")
        raise InterpreterError(f"unsupported expression kind {node.kind!r}")

    @staticmethod
    def _eval_literal(node: ast.Literal) -> Any:
        if node.category == "number":
            text = node.value.rstrip("uUlLfF")
            if any(c in text for c in ".eE") and not text.startswith("0x"):
                return float(text)
            return int(text, 0)
        if node.category == "string":
            return _decode_c_string(node.value)
        # char literal
        inner = node.value[1:-1]
        decoded = inner.encode().decode("unicode_escape")
        return ord(decoded) if decoded else 0

    def _eval_identifier(self, node: ast.Identifier, scope: Scope) -> Any:
        cell = scope.lookup(node.name)
        if cell is not None:
            return cell.value
        if node.name in self.functions:
            return node.name
        raise InterpreterError(f"undefined identifier {node.name!r}")

    def _eval_binary(self, node: ast.BinaryOp, scope: Scope) -> Any:
        op = node.op
        if op == "&&":
            return 1 if (self._truthy(self._eval(node.left, scope))
                         and self._truthy(self._eval(node.right, scope))) else 0
        if op == "||":
            return 1 if (self._truthy(self._eval(node.left, scope))
                         or self._truthy(self._eval(node.right, scope))) else 0

        left = self._eval(node.left, scope)
        right = self._eval(node.right, scope)

        # Pointer arithmetic.
        if isinstance(left, Pointer) and isinstance(right, (int, float)):
            if op == "+":
                return left.shifted(int(right))
            if op == "-":
                return left.shifted(-int(right))
        if isinstance(left, list) and isinstance(right, (int, float)) and op == "+":
            return Pointer(left, int(right))

        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise InterpreterError("integer division by zero")
                return int(left / right) if (left < 0) != (right < 0) else left // right
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return int(math.fmod(left, right))
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        raise InterpreterError(f"unsupported binary operator {op!r}")

    def _eval_unary(self, node: ast.UnaryOp, scope: Scope) -> Any:
        op = node.op
        if op == "&":
            return self._address_of(node.operand, scope)
        if op == "*":
            value = self._eval(node.operand, scope)
            if isinstance(value, Pointer):
                return value.deref()
            if isinstance(value, list):
                return value[0]
            raise InterpreterError("cannot dereference a non-pointer value")
        if op == "sizeof":
            return self._eval_sizeof(node.operand, scope)
        if op in ("++", "--"):
            reference = self._lvalue(node.operand, scope)
            new_value = reference.deref() + (1 if op == "++" else -1)
            reference.store(new_value)
            return new_value
        value = self._eval(node.operand, scope)
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return ~int(value)
        raise InterpreterError(f"unsupported unary operator {op!r}")

    def _eval_postfix(self, node: ast.PostfixOp, scope: Scope) -> Any:
        reference = self._lvalue(node.operand, scope)
        old_value = reference.deref()
        reference.store(old_value + (1 if node.op == "++" else -1))
        return old_value

    def _eval_assignment(self, node: ast.Assignment, scope: Scope) -> Any:
        reference = self._lvalue(node.target, scope)
        value = self._eval(node.value, scope)
        if isinstance(value, RawAllocation):
            cell = reference.target if isinstance(reference.target, Cell) else None
            type_name = cell.c_type if cell is not None else "double"
            value = self._materialise_allocation(value, type_name)
        if node.op == "=":
            reference.store(value)
            return value
        current = reference.deref()
        operator = node.op[:-1]
        updated = _apply_compound(current, value, operator)
        reference.store(updated)
        return updated

    def _eval_subscript(self, node: ast.ArraySubscript, scope: Scope) -> Any:
        array = self._eval(node.array, scope)
        index = int(self._eval(node.index, scope))
        if isinstance(array, Pointer):
            return array.index(index)
        if isinstance(array, (list, str)):
            return array[index]
        raise InterpreterError("subscript applied to a non-array value")

    def _eval_cast(self, node: ast.Cast, scope: Scope) -> Any:
        value = self._eval(node.operand, scope)
        type_name = node.type_name
        if isinstance(value, RawAllocation):
            return self._materialise_allocation(value, type_name)
        if "*" in type_name:
            return value
        if "double" in type_name or "float" in type_name:
            return float(value)
        if any(t in type_name for t in ("int", "long", "short", "char", "unsigned", "size_t")):
            return int(value)
        return value

    def _eval_sizeof(self, operand: ast.Node, scope: Scope) -> int:
        if isinstance(operand, ast.Identifier):
            name = operand.name.replace("*", " *").strip()
            base = name.replace("*", "").strip()
            if "*" in operand.name:
                return 8
            if base in C_TYPE_SIZES:
                return C_TYPE_SIZES[base]
            cell = scope.lookup(base)
            if cell is not None:
                return C_TYPE_SIZES.get(cell.c_type, 8)
            return 8
        value = self._eval(operand, scope)
        if isinstance(value, float):
            return 8
        if isinstance(value, list):
            return 8 * len(value)
        return 4

    # ----------------------------------------------------------------- lvalues

    def _lvalue(self, node: ast.Node, scope: Scope) -> Pointer:
        if isinstance(node, ast.Identifier):
            cell = scope.lookup(node.name)
            if cell is None:
                cell = scope.declare(node.name, 0, "int")
            return Pointer(cell)
        if isinstance(node, ast.ArraySubscript):
            array = self._eval(node.array, scope)
            index = int(self._eval(node.index, scope))
            if isinstance(array, Pointer):
                return Pointer(array.target, array.offset + index) \
                    if not isinstance(array.target, Cell) else Pointer(array.target)
            if isinstance(array, list):
                return Pointer(array, index)
            raise InterpreterError("cannot take an element reference of a non-array")
        if isinstance(node, ast.UnaryOp) and node.op == "*":
            value = self._eval(node.operand, scope)
            if isinstance(value, Pointer):
                return value
            if isinstance(value, list):
                return Pointer(value, 0)
            raise InterpreterError("cannot dereference a non-pointer value")
        if isinstance(node, ast.Parenthesized):
            return self._lvalue(node.inner, scope)
        raise InterpreterError(f"expression of kind {node.kind!r} is not assignable")

    def _address_of(self, node: ast.Node, scope: Scope) -> Pointer:
        return self._lvalue(node, scope)

    # ------------------------------------------------------------------- calls

    def _eval_call(self, node: ast.Call, scope: Scope) -> Any:
        name = node.callee_name
        if name is None:
            raise InterpreterError("indirect calls are not supported")

        if name.startswith("MPI_"):
            return self._call_mpi(name, node.args, scope)

        if name in self.functions:
            return self._call_user_function(self.functions[name], node.args, scope)

        return self._call_builtin(name, node.args, scope)

    def _call_mpi(self, name: str, args: list[ast.Node], scope: Scope) -> Any:
        handler = getattr(self.bindings, name, None)
        if handler is None:
            raise InterpreterError(f"MPI function {name} is not implemented by the simulator")
        values = [self._eval_mpi_arg(arg, scope) for arg in args]
        return handler(*values)

    def _eval_mpi_arg(self, node: ast.Node, scope: Scope) -> Any:
        # `&x` style output arguments need pointers; everything else evaluates
        # normally (arrays already evaluate to lists, which are by-reference).
        if isinstance(node, ast.UnaryOp) and node.op == "&":
            return self._address_of(node.operand, scope)
        return self._eval(node, scope)

    def _call_user_function(self, function: ast.FunctionDef, args: list[ast.Node],
                            scope: Scope) -> Any:
        call_scope = self.globals.child()
        for param, arg in zip(function.params, args):
            value = self._eval(arg, scope)
            call_scope.declare(param.name or "_", value, param.type_name)
        try:
            self._exec_block(function.body, call_scope)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    def _call_builtin(self, name: str, args: list[ast.Node], scope: Scope) -> Any:
        evaluated = [self._eval(arg, scope) for arg in args]
        builtin = _BUILTINS.get(name)
        if builtin is not None:
            return builtin(self, evaluated)
        raise InterpreterError(f"unknown function {name!r}")

    # --------------------------------------------------------------- utilities

    @staticmethod
    def _truthy(value: Any) -> bool:
        if isinstance(value, (int, float)):
            return value != 0
        return bool(value)


def _apply_compound(current: Any, value: Any, operator: str) -> Any:
    if operator == "+":
        return current + value
    if operator == "-":
        return current - value
    if operator == "*":
        return current * value
    if operator == "/":
        if isinstance(current, int) and isinstance(value, int):
            return current // value
        return current / value
    if operator == "%":
        return current % value
    if operator == "&":
        return int(current) & int(value)
    if operator == "|":
        return int(current) | int(value)
    if operator == "^":
        return int(current) ^ int(value)
    if operator == "<<":
        return int(current) << int(value)
    if operator == ">>":
        return int(current) >> int(value)
    raise InterpreterError(f"unsupported compound assignment operator {operator!r}")


def _decode_c_string(literal: str) -> str:
    inner = literal
    if inner.startswith('"') and inner.endswith('"'):
        inner = inner[1:-1]
    return inner.encode().decode("unicode_escape")


# ------------------------------------------------------------------- builtins


def _builtin_printf(interp: CInterpreter, args: list) -> int:
    if not args:
        return 0
    fmt = args[0] if isinstance(args[0], str) else str(args[0])
    text = _format_c(fmt, args[1:])
    interp.context.stdout.append(text)
    return len(text)


def _builtin_fprintf(interp: CInterpreter, args: list) -> int:
    # Treat the first argument (stream) as ignorable.
    return _builtin_printf(interp, args[1:])


def _format_c(fmt: str, values: list) -> str:
    import re as _re

    python_fmt = _re.sub(r"%(-?\d*\.?\d*)l{1,2}([dufxe])", r"%\1\2", fmt)
    python_fmt = python_fmt.replace("%u", "%d").replace("%zu", "%d")
    cleaned = []
    for value in values:
        # A char buffer that received a string (e.g. MPI_Get_processor_name).
        if isinstance(value, list) and value and isinstance(value[0], str):
            value = value[0]
        cleaned.append(value)
    try:
        return python_fmt % tuple(cleaned)
    except (TypeError, ValueError):
        return python_fmt + " " + " ".join(str(v) for v in cleaned)


def _builtin_malloc(_interp: CInterpreter, args: list) -> RawAllocation:
    return RawAllocation(int(args[0]) if args else 0)


def _builtin_calloc(_interp: CInterpreter, args: list) -> RawAllocation:
    count = int(args[0]) if args else 0
    size = int(args[1]) if len(args) > 1 else 1
    return RawAllocation(count * size)


def _builtin_free(_interp: CInterpreter, _args: list) -> int:
    return 0

def _builtin_exit(_interp: CInterpreter, args: list) -> None:
    raise _AbortSignal(int(args[0]) if args else 0)


def _builtin_rand(interp: CInterpreter, _args: list) -> int:
    return interp.context.rand()


def _builtin_srand(interp: CInterpreter, args: list) -> int:
    interp.context.srand(int(args[0]) if args else 1)
    return 0


def _math_unary(fn: Callable[[float], float]) -> Callable[[CInterpreter, list], float]:
    def wrapper(_interp: CInterpreter, args: list) -> float:
        return float(fn(float(args[0])))
    return wrapper


def _builtin_pow(_interp: CInterpreter, args: list) -> float:
    return float(args[0]) ** float(args[1])


def _builtin_abs(_interp: CInterpreter, args: list) -> int:
    return abs(int(args[0]))


_BUILTINS: dict[str, Callable[[CInterpreter, list], Any]] = {
    "printf": _builtin_printf,
    "fprintf": _builtin_fprintf,
    "malloc": _builtin_malloc,
    "calloc": _builtin_calloc,
    "free": _builtin_free,
    "exit": _builtin_exit,
    "rand": _builtin_rand,
    "srand": _builtin_srand,
    "sqrt": _math_unary(math.sqrt),
    "fabs": _math_unary(abs),
    "sin": _math_unary(math.sin),
    "cos": _math_unary(math.cos),
    "tan": _math_unary(math.tan),
    "exp": _math_unary(math.exp),
    "log": _math_unary(math.log),
    "floor": _math_unary(math.floor),
    "ceil": _math_unary(math.ceil),
    "pow": _builtin_pow,
    "abs": _builtin_abs,
}
