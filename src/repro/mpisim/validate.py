"""Validity checking of (generated) MPI programs.

Section VI-C of the paper evaluates the validity of the programs MPI-RICAL
generates for the numerical benchmark by compiling and running them.  The
simulator provides the equivalent check:

* **parses** — the program parses cleanly in strict mode;
* **runs** — it executes on N simulated ranks without an error or deadlock;
* **numerical check** — optionally, a caller-supplied predicate over the
  captured stdout (e.g. "pi is within 1e-2 of 3.14159") passes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..clang.parser import parses_cleanly
from .runtime import RunResult, run_program


@dataclass
class ValidationResult:
    """Outcome of validating one program."""

    parses: bool
    runs: bool
    check_passed: bool | None
    run_result: RunResult | None = None
    message: str = ""

    @property
    def valid(self) -> bool:
        """Overall verdict: parses, runs, and (if present) the check passes."""
        if not self.parses or not self.runs:
            return False
        return self.check_passed is not False


def validate_program(source: str, *, num_ranks: int = 4,
                     check: Callable[[str], bool] | None = None,
                     timeout: float = 30.0) -> ValidationResult:
    """Validate one program end to end."""
    if not parses_cleanly(source):
        return ValidationResult(parses=False, runs=False, check_passed=None,
                                message="program does not parse cleanly")
    run = run_program(source, num_ranks=num_ranks, timeout=timeout)
    if not run.ok:
        return ValidationResult(parses=True, runs=False, check_passed=None, run_result=run,
                                message=run_failure_message(run))
    if check is None:
        return ValidationResult(parses=True, runs=True, check_passed=None, run_result=run)
    passed = bool(check(run.stdout))
    return ValidationResult(parses=True, runs=True, check_passed=passed, run_result=run,
                            message="" if passed else "numerical check failed")


def run_failure_message(run: RunResult) -> str:
    """A never-empty, actionable description of why a run failed.

    Rank errors (which, post-diagnostics, name the blocking MPI call a
    deadlocked rank was stuck in) come first; ranks that merely exited
    non-zero are listed with their exit codes, so the message can no longer
    be the bare ``"non-zero exit"`` with no rank attribution — let alone
    empty.
    """
    parts = run.errors()
    parts.extend(f"rank {r.rank}: non-zero exit code {r.exit_code}"
                 for r in run.ranks if r.error is None and r.exit_code != 0)
    return "; ".join(parts) or "run failed with no per-rank detail"


def first_float(text: str) -> float | None:
    """Extract the first floating-point number from program output."""
    match = re.search(r"[-+]?\d+\.\d+(?:[eE][-+]?\d+)?", text)
    if match is None:
        return None
    return float(match.group(0))


def all_floats(text: str) -> list[float]:
    """Extract every floating-point number from program output."""
    return [float(m) for m in re.findall(r"[-+]?\d+\.\d+(?:[eE][-+]?\d+)?", text)]


def expect_close(expected: float, tolerance: float = 1e-6) -> Callable[[str], bool]:
    """Build a stdout check asserting the first printed float is near ``expected``."""
    def check(stdout: str) -> bool:
        value = first_float(stdout)
        return value is not None and abs(value - expected) <= tolerance
    return check
