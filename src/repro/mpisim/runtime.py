"""Multi-rank execution of a C program on the simulated MPI runtime.

Each rank parses the same source, gets its own interpreter and communicator
handle, and runs in its own thread.  The runner collects per-rank exit codes,
stdout and exceptions, and reports deadlocks (blocking operations that never
complete within the timeout).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..clang.parser import parse_source
from .comm import DEFAULT_TIMEOUT, SplitRegistry, make_world
from .interpreter import CInterpreter, RankContext


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    exit_code: int = 0
    stdout: str = ""
    error: str | None = None
    #: The blocking MPI call the rank was inside when it failed or was
    #: declared stuck (e.g. ``"MPI_Recv(source=1, tag=0)"``); None when the
    #: rank finished, or failed outside any blocking MPI call.
    blocked_in: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.exit_code == 0


@dataclass
class RunResult:
    """Outcome of a whole simulated run."""

    num_ranks: int
    ranks: list[RankResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.ranks)

    @property
    def stdout(self) -> str:
        """Concatenated stdout, ordered by rank."""
        return "".join(r.stdout for r in sorted(self.ranks, key=lambda r: r.rank))

    def errors(self) -> list[str]:
        return [f"rank {r.rank}: {r.error}" for r in self.ranks if r.error]


class MPIRuntime:
    """Run C programs on a simulated MPI world."""

    def __init__(self, num_ranks: int = 4, timeout: float = DEFAULT_TIMEOUT) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be at least 1")
        self.num_ranks = num_ranks
        self.timeout = timeout

    def run_source(self, source: str, argv: list[str] | None = None) -> RunResult:
        """Parse ``source`` once per rank and execute all ranks concurrently."""
        communicators = make_world(self.num_ranks, timeout=self.timeout)
        split_registry = SplitRegistry(timeout=self.timeout)
        result = RunResult(num_ranks=self.num_ranks,
                           ranks=[RankResult(rank=r) for r in range(self.num_ranks)])
        contexts: list[RankContext | None] = [None] * self.num_ranks

        def worker(rank: int) -> None:
            rank_result = result.ranks[rank]
            try:
                unit = parse_source(source, tolerant=False)
                context = RankContext(rank=rank, comm_world=communicators[rank],
                                      split_registry=split_registry)
                contexts[rank] = context
                interpreter = CInterpreter(unit, context)
                rank_result.exit_code = interpreter.run_main(argv)
                rank_result.stdout = interpreter.stdout
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                rank_result.error = f"{type(exc).__name__}: {exc}"
                context = contexts[rank]
                if context is not None:
                    # A deadlock exception leaves the marker set (see
                    # MPIBindings._blocking); keep it on the result so
                    # callers can report which call the rank was stuck in.
                    rank_result.blocked_in = context.blocked_in
                    rank_result.stdout = "".join(context.stdout)

        threads = [threading.Thread(target=worker, args=(rank,), daemon=True)
                   for rank in range(self.num_ranks)]
        for thread in threads:
            thread.start()
        # One shared deadline for the whole world: the ranks run concurrently,
        # so the grace window is paid once, not once per stuck thread.
        deadline = time.monotonic() + self.timeout + 5.0
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for rank, thread in enumerate(threads):
            if not thread.is_alive():
                continue
            # Only genuinely unfinished ranks are marked (a rank that
            # completed without printing anything is *not* a deadlock).
            rank_result = result.ranks[rank]
            if rank_result.error is not None:
                continue
            context = contexts[rank]
            where = context.blocked_in if context is not None else None
            rank_result.blocked_in = where
            if where is not None:
                rank_result.error = (
                    f"deadlock: rank {rank} did not finish within "
                    f"{self.timeout:g}s (blocked in {where})")
            else:
                rank_result.error = (
                    f"deadlock: rank {rank} did not finish within "
                    f"{self.timeout:g}s (no blocking MPI call in progress — "
                    f"runaway computation?)")
        return result


def run_program(source: str, num_ranks: int = 4,
                timeout: float = DEFAULT_TIMEOUT) -> RunResult:
    """Convenience wrapper: run ``source`` on ``num_ranks`` simulated ranks."""
    return MPIRuntime(num_ranks=num_ranks, timeout=timeout).run_source(source)
