"""Multi-rank execution of a C program on the simulated MPI runtime.

Each rank parses the same source, gets its own interpreter and communicator
handle, and runs in its own thread.  The runner collects per-rank exit codes,
stdout and exceptions, and reports deadlocks (blocking operations that never
complete within the timeout).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..clang.parser import parse_source
from .comm import DEFAULT_TIMEOUT, SplitRegistry, make_world
from .interpreter import CInterpreter, RankContext


@dataclass
class RankResult:
    """Outcome of one rank's execution."""

    rank: int
    exit_code: int = 0
    stdout: str = ""
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.exit_code == 0


@dataclass
class RunResult:
    """Outcome of a whole simulated run."""

    num_ranks: int
    ranks: list[RankResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.ranks)

    @property
    def stdout(self) -> str:
        """Concatenated stdout, ordered by rank."""
        return "".join(r.stdout for r in sorted(self.ranks, key=lambda r: r.rank))

    def errors(self) -> list[str]:
        return [f"rank {r.rank}: {r.error}" for r in self.ranks if r.error]


class MPIRuntime:
    """Run C programs on a simulated MPI world."""

    def __init__(self, num_ranks: int = 4, timeout: float = DEFAULT_TIMEOUT) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be at least 1")
        self.num_ranks = num_ranks
        self.timeout = timeout

    def run_source(self, source: str, argv: list[str] | None = None) -> RunResult:
        """Parse ``source`` once per rank and execute all ranks concurrently."""
        communicators = make_world(self.num_ranks, timeout=self.timeout)
        split_registry = SplitRegistry(timeout=self.timeout)
        result = RunResult(num_ranks=self.num_ranks,
                           ranks=[RankResult(rank=r) for r in range(self.num_ranks)])

        def worker(rank: int) -> None:
            rank_result = result.ranks[rank]
            try:
                unit = parse_source(source, tolerant=False)
                context = RankContext(rank=rank, comm_world=communicators[rank],
                                      split_registry=split_registry)
                interpreter = CInterpreter(unit, context)
                rank_result.exit_code = interpreter.run_main(argv)
                rank_result.stdout = interpreter.stdout
            except Exception as exc:  # noqa: BLE001 - reported to the caller
                rank_result.error = f"{type(exc).__name__}: {exc}"

        threads = [threading.Thread(target=worker, args=(rank,), daemon=True)
                   for rank in range(self.num_ranks)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout + 5.0)
            if thread.is_alive():
                # A stuck rank: report it as a deadlock instead of hanging the caller.
                for rank_result in result.ranks:
                    if rank_result.error is None and not rank_result.stdout:
                        rank_result.error = rank_result.error or "deadlock: rank did not finish"
                break
        return result


def run_program(source: str, num_ranks: int = 4,
                timeout: float = DEFAULT_TIMEOUT) -> RunResult:
    """Convenience wrapper: run ``source`` on ``num_ranks`` simulated ranks."""
    return MPIRuntime(num_ranks=num_ranks, timeout=timeout).run_source(source)
