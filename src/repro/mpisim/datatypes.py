"""MPI constants and datatype descriptors used by the simulator.

The interpreter resolves identifiers such as ``MPI_COMM_WORLD``,
``MPI_DOUBLE`` or ``MPI_SUM`` to the sentinel objects defined here; the
communicator implementation dispatches on them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MPIDatatype:
    """An MPI element datatype."""

    name: str
    size_bytes: int
    python_type: type

    def coerce(self, value):
        """Coerce a Python value to this datatype's Python representation."""
        return self.python_type(value)


@dataclass(frozen=True)
class MPIOp:
    """A reduction operator."""

    name: str

    def combine(self, a, b):
        if self.name == "MPI_SUM":
            return a + b
        if self.name == "MPI_PROD":
            return a * b
        if self.name == "MPI_MAX":
            return a if a >= b else b
        if self.name == "MPI_MIN":
            return a if a <= b else b
        if self.name == "MPI_LAND":
            return 1 if (a and b) else 0
        if self.name == "MPI_LOR":
            return 1 if (a or b) else 0
        raise ValueError(f"unsupported reduction operator {self.name}")


@dataclass(frozen=True)
class MPISentinel:
    """Opaque constants (MPI_COMM_WORLD, MPI_STATUS_IGNORE, ...)."""

    name: str


MPI_INT = MPIDatatype("MPI_INT", 4, int)
MPI_LONG = MPIDatatype("MPI_LONG", 8, int)
MPI_LONG_LONG = MPIDatatype("MPI_LONG_LONG", 8, int)
MPI_FLOAT = MPIDatatype("MPI_FLOAT", 4, float)
MPI_DOUBLE = MPIDatatype("MPI_DOUBLE", 8, float)
MPI_CHAR = MPIDatatype("MPI_CHAR", 1, int)
MPI_BYTE = MPIDatatype("MPI_BYTE", 1, int)
MPI_UNSIGNED = MPIDatatype("MPI_UNSIGNED", 4, int)

MPI_SUM = MPIOp("MPI_SUM")
MPI_PROD = MPIOp("MPI_PROD")
MPI_MAX = MPIOp("MPI_MAX")
MPI_MIN = MPIOp("MPI_MIN")
MPI_LAND = MPIOp("MPI_LAND")
MPI_LOR = MPIOp("MPI_LOR")

MPI_COMM_WORLD = MPISentinel("MPI_COMM_WORLD")
MPI_COMM_SELF = MPISentinel("MPI_COMM_SELF")
MPI_STATUS_IGNORE = MPISentinel("MPI_STATUS_IGNORE")
MPI_STATUSES_IGNORE = MPISentinel("MPI_STATUSES_IGNORE")
MPI_ANY_SOURCE = MPISentinel("MPI_ANY_SOURCE")
MPI_ANY_TAG = MPISentinel("MPI_ANY_TAG")
MPI_IN_PLACE = MPISentinel("MPI_IN_PLACE")
MPI_PROC_NULL = MPISentinel("MPI_PROC_NULL")
MPI_REQUEST_NULL = MPISentinel("MPI_REQUEST_NULL")
MPI_INFO_NULL = MPISentinel("MPI_INFO_NULL")

MPI_SUCCESS = 0
MPI_MAX_PROCESSOR_NAME = 256
MPI_THREAD_MULTIPLE = 3

#: Identifier -> constant mapping the interpreter injects into every scope.
MPI_CONSTANT_VALUES: dict[str, object] = {
    "MPI_INT": MPI_INT,
    "MPI_LONG": MPI_LONG,
    "MPI_LONG_LONG": MPI_LONG_LONG,
    "MPI_FLOAT": MPI_FLOAT,
    "MPI_DOUBLE": MPI_DOUBLE,
    "MPI_CHAR": MPI_CHAR,
    "MPI_BYTE": MPI_BYTE,
    "MPI_UNSIGNED": MPI_UNSIGNED,
    "MPI_SUM": MPI_SUM,
    "MPI_PROD": MPI_PROD,
    "MPI_MAX": MPI_MAX,
    "MPI_MIN": MPI_MIN,
    "MPI_LAND": MPI_LAND,
    "MPI_LOR": MPI_LOR,
    "MPI_COMM_WORLD": MPI_COMM_WORLD,
    "MPI_COMM_SELF": MPI_COMM_SELF,
    "MPI_STATUS_IGNORE": MPI_STATUS_IGNORE,
    "MPI_STATUSES_IGNORE": MPI_STATUSES_IGNORE,
    "MPI_ANY_SOURCE": MPI_ANY_SOURCE,
    "MPI_ANY_TAG": MPI_ANY_TAG,
    "MPI_IN_PLACE": MPI_IN_PLACE,
    "MPI_PROC_NULL": MPI_PROC_NULL,
    "MPI_REQUEST_NULL": MPI_REQUEST_NULL,
    "MPI_INFO_NULL": MPI_INFO_NULL,
    "MPI_SUCCESS": MPI_SUCCESS,
    "MPI_MAX_PROCESSOR_NAME": MPI_MAX_PROCESSOR_NAME,
    "MPI_THREAD_MULTIPLE": MPI_THREAD_MULTIPLE,
    "RAND_MAX": 2147483647,
    "NULL": None,
}

#: C type name -> byte size, used by ``sizeof`` and malloc element inference.
C_TYPE_SIZES: dict[str, int] = {
    "char": 1,
    "short": 2,
    "int": 4,
    "unsigned": 4,
    "unsigned int": 4,
    "long": 8,
    "long long": 8,
    "unsigned long": 8,
    "float": 4,
    "double": 8,
    "long double": 16,
    "size_t": 8,
}


def datatype_for_c_type(type_name: str) -> MPIDatatype:
    """Best-effort mapping from a C element type to an MPI datatype."""
    cleaned = type_name.replace("*", "").strip()
    if "double" in cleaned or "float" in cleaned:
        return MPI_DOUBLE
    if "long" in cleaned:
        return MPI_LONG
    if "char" in cleaned:
        return MPI_CHAR
    return MPI_INT
