"""The 11 numerical-computation MPI benchmark programs (Table III).

The paper's authors wrote and compiled 11 short MPI programs with domain
decomposition — pi (Riemann and Monte-Carlo), array reductions, matrix-vector
multiplication, merge sort, factorial, Fibonacci and trapezoidal integration —
and used them as the real-world evaluation set.  This module contains the
equivalent programs as standardised C sources.  They:

* parse cleanly with the strict parser (the corpus inclusion criterion);
* stay under the 320-token exclusion limit;
* run on the simulated MPI runtime (:mod:`repro.mpisim`) with 4 ranks and
  produce the reference values recorded in :mod:`repro.benchprograms.references`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkProgram:
    """One numerical benchmark program."""

    name: str
    source: str
    #: Number of simulated ranks the program is written for.
    num_ranks: int = 4


ARRAY_AVERAGE = BenchmarkProgram(
    name="Array Average",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 100;
    double *data = NULL;
    double local_avg = 0.0;
    double global_avg = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int chunk = n / size;
    double *sub = (double *) malloc(chunk * sizeof(double));
    if (rank == 0) {
        data = (double *) malloc(n * sizeof(double));
        for (i = 0; i < n; i++) {
            data[i] = (double) i;
        }
    }
    MPI_Scatter(data, chunk, MPI_DOUBLE, sub, chunk, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    double s = 0.0;
    for (i = 0; i < chunk; i++) {
        s += sub[i];
    }
    local_avg = s / (double) chunk;
    MPI_Reduce(&local_avg, &global_avg, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        global_avg = global_avg / (double) size;
        printf("average = %f\\n", global_avg);
    }
    free(sub);
    MPI_Finalize();
    return 0;
}
""",
)


VECTOR_DOT_PRODUCT = BenchmarkProgram(
    name="Vector Dot Product",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 64;
    double local_dot = 0.0;
    double global_dot = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int chunk = n / size;
    double *x = (double *) malloc(chunk * sizeof(double));
    double *y = (double *) malloc(chunk * sizeof(double));
    for (i = 0; i < chunk; i++) {
        x[i] = (double) (rank * chunk + i);
        y[i] = 2.0;
    }
    for (i = 0; i < chunk; i++) {
        local_dot += x[i] * y[i];
    }
    MPI_Reduce(&local_dot, &global_dot, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("dot = %f\\n", global_dot);
    }
    free(x);
    free(y);
    MPI_Finalize();
    return 0;
}
""",
)


MIN_MAX = BenchmarkProgram(
    name="Min-Max",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 128;
    double local_min, local_max, global_min, global_max;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int chunk = n / size;
    double *vals = (double *) malloc(chunk * sizeof(double));
    for (i = 0; i < chunk; i++) {
        vals[i] = (double) (((rank * chunk + i) * 7) % 101);
    }
    local_min = vals[0];
    local_max = vals[0];
    for (i = 1; i < chunk; i++) {
        if (vals[i] < local_min) {
            local_min = vals[i];
        }
        if (vals[i] > local_max) {
            local_max = vals[i];
        }
    }
    MPI_Reduce(&local_min, &global_min, 1, MPI_DOUBLE, MPI_MIN, 0, MPI_COMM_WORLD);
    MPI_Reduce(&local_max, &global_max, 1, MPI_DOUBLE, MPI_MAX, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("min = %f max = %f\\n", global_min, global_max);
    }
    free(vals);
    MPI_Finalize();
    return 0;
}
""",
)


MATRIX_VECTOR = BenchmarkProgram(
    name="Matrix-Vector Multiplication",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i, j;
    int n = 64;
    double *A = NULL;
    double *y = NULL;
    double *x = (double *) malloc(n * sizeof(double));
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int rows = n / size;
    double *local_A = (double *) malloc(rows * n * sizeof(double));
    double *local_y = (double *) malloc(rows * sizeof(double));
    if (rank == 0) {
        A = (double *) malloc(n * n * sizeof(double));
        y = (double *) malloc(n * sizeof(double));
        for (i = 0; i < n * n; i++) {
            A[i] = (double) (i % 7);
        }
        for (i = 0; i < n; i++) {
            x[i] = 1.0;
        }
    }
    MPI_Bcast(x, n, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    MPI_Scatter(A, rows * n, MPI_DOUBLE, local_A, rows * n, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    for (i = 0; i < rows; i++) {
        double acc = 0.0;
        for (j = 0; j < n; j++) {
            acc += local_A[i * n + j] * x[j];
        }
        local_y[i] = acc;
    }
    MPI_Gather(local_y, rows, MPI_DOUBLE, y, rows, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("y0 = %f\\n", y[0]);
    }
    free(local_A);
    free(local_y);
    free(x);
    MPI_Finalize();
    return 0;
}
""",
)


SUM_REDUCE_GATHER = BenchmarkProgram(
    name="Sum (Reduce & Gather)",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 1000;
    double local_sum = 0.0;
    double reduce_sum = 0.0;
    double gather_sum = 0.0;
    double *partials = NULL;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = rank; i < n; i += size) {
        local_sum += (double) i;
    }
    MPI_Reduce(&local_sum, &reduce_sum, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        partials = (double *) malloc(size * sizeof(double));
    }
    MPI_Gather(&local_sum, 1, MPI_DOUBLE, partials, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        for (i = 0; i < size; i++) {
            gather_sum += partials[i];
        }
        printf("reduce %f gather %f\\n", reduce_sum, gather_sum);
        free(partials);
    }
    MPI_Finalize();
    return 0;
}
""",
)


MERGE_SORT = BenchmarkProgram(
    name="Merge Sort",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i, j;
    int n = 64;
    int *data = NULL;
    int *sorted_all = NULL;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int chunk = n / size;
    int *local = (int *) malloc(chunk * sizeof(int));
    if (rank == 0) {
        data = (int *) malloc(n * sizeof(int));
        sorted_all = (int *) malloc(n * sizeof(int));
        for (i = 0; i < n; i++) {
            data[i] = (n - i) % 97;
        }
    }
    MPI_Scatter(data, chunk, MPI_INT, local, chunk, MPI_INT, 0, MPI_COMM_WORLD);
    for (i = 1; i < chunk; i++) {
        int key = local[i];
        j = i - 1;
        while (j >= 0 && local[j] > key) {
            local[j + 1] = local[j];
            j = j - 1;
        }
        local[j + 1] = key;
    }
    MPI_Gather(local, chunk, MPI_INT, sorted_all, chunk, MPI_INT, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("head %d tail %d\\n", sorted_all[0], sorted_all[n - 1]);
    }
    free(local);
    MPI_Finalize();
    return 0;
}
""",
)


PI_MONTE_CARLO = BenchmarkProgram(
    name="Pi Monte-Carlo",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 100000;
    int local_hits = 0;
    int total_hits = 0;
    double x, y;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    srand(rank + 1);
    for (i = rank; i < n; i += size) {
        x = (double) rand() / (double) RAND_MAX;
        y = (double) rand() / (double) RAND_MAX;
        if (x * x + y * y <= 1.0) {
            local_hits = local_hits + 1;
        }
    }
    MPI_Reduce(&local_hits, &total_hits, 1, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        double pi = 4.0 * (double) total_hits / (double) n;
        printf("pi estimate = %f\\n", pi);
    }
    MPI_Finalize();
    return 0;
}
""",
)


PI_RIEMANN = BenchmarkProgram(
    name="Pi Riemann Sum",
    source="""#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 100000;
    double h, x, sum, pi;
    sum = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    h = 1.0 / (double) n;
    for (i = rank; i < n; i += size) {
        x = h * ((double) i + 0.5);
        sum += 4.0 / (1.0 + x * x);
    }
    double local = h * sum;
    MPI_Reduce(&local, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("pi = %f\\n", pi);
    }
    MPI_Finalize();
    return 0;
}
""",
)


FACTORIAL = BenchmarkProgram(
    name="Factorial",
    source="""#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 10;
    double local_prod = 1.0;
    double total_prod = 1.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = rank + 1; i <= n; i += size) {
        local_prod = local_prod * (double) i;
    }
    MPI_Reduce(&local_prod, &total_prod, 1, MPI_DOUBLE, MPI_PROD, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("factorial = %f\\n", total_prod);
    }
    MPI_Finalize();
    return 0;
}
""",
)


FIBONACCI = BenchmarkProgram(
    name="Fibonacci",
    source="""#include <stdio.h>
#include <stdlib.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    long my_fib = 0;
    long *all_fib = NULL;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int target = 10 + rank;
    long a = 0;
    long b = 1;
    for (i = 0; i < target; i++) {
        long tmp = a + b;
        a = b;
        b = tmp;
    }
    my_fib = a;
    if (rank == 0) {
        all_fib = (long *) malloc(size * sizeof(long));
    }
    MPI_Gather(&my_fib, 1, MPI_LONG, all_fib, 1, MPI_LONG, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        for (i = 0; i < size; i++) {
            printf("fib[%d] = %ld\\n", 10 + i, all_fib[i]);
        }
        free(all_fib);
    }
    MPI_Finalize();
    return 0;
}
""",
)


TRAPEZOIDAL_RULE = BenchmarkProgram(
    name="Trapezoidal Rule (Integration)",
    source="""#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank, size, i;
    int n = 1024;
    double a = 0.0;
    double b = 2.0;
    double h, local_a, local_b, local_int, total_int;
    int local_n;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    h = (b - a) / (double) n;
    local_n = n / size;
    local_a = a + (double) rank * (double) local_n * h;
    local_b = local_a + (double) local_n * h;
    local_int = (local_a * local_a + local_b * local_b) / 2.0;
    for (i = 1; i < local_n; i++) {
        double x = local_a + (double) i * h;
        local_int += x * x;
    }
    local_int = local_int * h;
    MPI_Reduce(&local_int, &total_int, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("integral = %f\\n", total_int);
    }
    MPI_Finalize();
    return 0;
}
""",
)


#: All 11 programs in the order Table III lists them.
BENCHMARK_PROGRAMS: tuple[BenchmarkProgram, ...] = (
    ARRAY_AVERAGE,
    VECTOR_DOT_PRODUCT,
    MIN_MAX,
    MATRIX_VECTOR,
    SUM_REDUCE_GATHER,
    MERGE_SORT,
    PI_MONTE_CARLO,
    PI_RIEMANN,
    FACTORIAL,
    FIBONACCI,
    TRAPEZOIDAL_RULE,
)


def program_by_name(name: str) -> BenchmarkProgram:
    """Look a benchmark program up by its Table III name."""
    for program in BENCHMARK_PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(f"unknown benchmark program {name!r}")


def program_names() -> list[str]:
    """The Table III row names, in order."""
    return [p.name for p in BENCHMARK_PROGRAMS]
