"""Reference results for the numerical benchmark programs.

Each program has a stdout check used by the validity evaluation ("does the
generated program still compute the right answer when run on the simulated
MPI runtime?").  Expected values are computed analytically here rather than
hard-coded so the checks stay correct if a program's problem size changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mpisim.validate import all_floats, first_float


@dataclass(frozen=True)
class ReferenceCheck:
    """A named stdout predicate for one benchmark program."""

    program_name: str
    description: str
    check: Callable[[str], bool]


def _close(value: float | None, expected: float, tolerance: float) -> bool:
    return value is not None and abs(value - expected) <= tolerance


# ----------------------------------------------------------------- expected values


def expected_array_average(n: int = 100) -> float:
    """Mean of 0..n-1."""
    return (n - 1) / 2.0


def expected_dot_product(n: int = 64) -> float:
    """Dot of x[i] = i with y[i] = 2."""
    return 2.0 * (n - 1) * n / 2.0


def expected_min_max(n: int = 128) -> tuple[float, float]:
    values = [((i * 7) % 101) for i in range(n)]
    return float(min(values)), float(max(values))


def expected_matvec_y0(n: int = 64) -> float:
    """First entry of A @ x with A[i] = i % 7 (row-major) and x = 1."""
    return float(sum((i % 7) for i in range(n)))


def expected_sum(n: int = 1000) -> float:
    return (n - 1) * n / 2.0


def expected_merge_sort_head_tail(n: int = 64, num_ranks: int = 4) -> tuple[int, int]:
    """Head and tail of the gathered per-chunk-sorted array."""
    data = [(n - i) % 97 for i in range(n)]
    chunk = n // num_ranks
    gathered: list[int] = []
    for r in range(num_ranks):
        gathered.extend(sorted(data[r * chunk:(r + 1) * chunk]))
    return gathered[0], gathered[-1]


def expected_factorial(n: int = 10) -> float:
    result = 1.0
    for i in range(1, n + 1):
        result *= i
    return result


def expected_fibonacci(index: int = 10) -> int:
    a, b = 0, 1
    for _ in range(index):
        a, b = b, a + b
    return a


def expected_trapezoid(a: float = 0.0, b: float = 2.0) -> float:
    """Integral of x^2 over [a, b]."""
    return (b ** 3 - a ** 3) / 3.0


# ----------------------------------------------------------------------- checks


def _check_array_average(stdout: str) -> bool:
    return _close(first_float(stdout), expected_array_average(), 1e-6)


def _check_dot_product(stdout: str) -> bool:
    return _close(first_float(stdout), expected_dot_product(), 1e-6)


def _check_min_max(stdout: str) -> bool:
    expected_min, expected_max = expected_min_max()
    floats = all_floats(stdout)
    if len(floats) < 2:
        return False
    return _close(floats[0], expected_min, 1e-6) and _close(floats[1], expected_max, 1e-6)


def _check_matvec(stdout: str) -> bool:
    return _close(first_float(stdout), expected_matvec_y0(), 1e-6)


def _check_sum(stdout: str) -> bool:
    floats = all_floats(stdout)
    expected = expected_sum()
    return (len(floats) >= 2 and _close(floats[0], expected, 1e-6)
            and _close(floats[1], expected, 1e-6))


def _check_merge_sort(stdout: str) -> bool:
    import re

    head, tail = expected_merge_sort_head_tail()
    numbers = [int(m) for m in re.findall(r"-?\d+", stdout)]
    return len(numbers) >= 2 and numbers[0] == head and numbers[1] == tail


def _check_pi_monte_carlo(stdout: str) -> bool:
    value = first_float(stdout)
    return value is not None and 2.9 <= value <= 3.4


def _check_pi_riemann(stdout: str) -> bool:
    return _close(first_float(stdout), 3.14159265, 1e-4)


def _check_factorial(stdout: str) -> bool:
    return _close(first_float(stdout), expected_factorial(), 0.5)


def _check_fibonacci(stdout: str) -> bool:
    import re

    numbers = [int(m) for m in re.findall(r"=\s*(-?\d+)", stdout)]
    expected = [expected_fibonacci(10 + i) for i in range(4)]
    return numbers[: len(expected)] == expected


def _check_trapezoid(stdout: str) -> bool:
    return _close(first_float(stdout), expected_trapezoid(), 0.05)


#: Program name -> reference check, in Table III order.
REFERENCE_CHECKS: dict[str, ReferenceCheck] = {
    "Array Average": ReferenceCheck("Array Average", "mean of 0..99 is 49.5",
                                    _check_array_average),
    "Vector Dot Product": ReferenceCheck("Vector Dot Product", "2 * sum(0..63) = 4032",
                                         _check_dot_product),
    "Min-Max": ReferenceCheck("Min-Max", "extrema of (7i mod 101)", _check_min_max),
    "Matrix-Vector Multiplication": ReferenceCheck("Matrix-Vector Multiplication",
                                                   "row sum of i mod 7", _check_matvec),
    "Sum (Reduce & Gather)": ReferenceCheck("Sum (Reduce & Gather)",
                                            "both sums equal 499500", _check_sum),
    "Merge Sort": ReferenceCheck("Merge Sort", "per-chunk sorted head/tail",
                                 _check_merge_sort),
    "Pi Monte-Carlo": ReferenceCheck("Pi Monte-Carlo", "estimate within [2.9, 3.4]",
                                     _check_pi_monte_carlo),
    "Pi Riemann Sum": ReferenceCheck("Pi Riemann Sum", "pi to 1e-4", _check_pi_riemann),
    "Factorial": ReferenceCheck("Factorial", "10! = 3628800", _check_factorial),
    "Fibonacci": ReferenceCheck("Fibonacci", "fib(10..13) gathered at root",
                                _check_fibonacci),
    "Trapezoidal Rule (Integration)": ReferenceCheck("Trapezoidal Rule (Integration)",
                                                     "integral of x^2 on [0,2] = 8/3",
                                                     _check_trapezoid),
}


def check_for(program_name: str) -> ReferenceCheck:
    """Return the reference check for ``program_name``."""
    return REFERENCE_CHECKS[program_name]
