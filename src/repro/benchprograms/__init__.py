"""The 11 numerical benchmark programs and their reference checks (Table III)."""

from .programs import BENCHMARK_PROGRAMS, BenchmarkProgram, program_by_name, program_names
from .references import REFERENCE_CHECKS, ReferenceCheck, check_for

__all__ = [
    "BENCHMARK_PROGRAMS",
    "BenchmarkProgram",
    "program_by_name",
    "program_names",
    "REFERENCE_CHECKS",
    "ReferenceCheck",
    "check_for",
]
