"""repro — a reproduction of *MPI-RICAL: Data-Driven MPI Distributed Parallelism
Assistance with Transformers* (SC 2023).

Top-level layout
----------------
``repro.clang``         C front-end (lexer, parser, AST, code generator)
``repro.xsbt``          SBT / X-SBT AST linearisation
``repro.mpiknow``       MPI function registry and call signatures
``repro.corpus``        MPICodeCorpus synthesis (simulated GitHub mining) + statistics
``repro.dataset``       dataset pipeline (filters, MPI-call removal, splits)
``repro.tokenization``  vocabulary and example encoding
``repro.model``         NumPy Transformer (autograd, trainer, decoding strategies)
``repro.api``           versioned advising contract (AdviseRequest/Response, ApiError)
``repro.mpirical``      the MPI-RICAL pipeline, assistant API and rule baseline
``repro.registry``      model lifecycle (versioned registry, aliases, hot-swap)
``repro.serving``       batched inference service (micro-batching, LRU cache,
                        batch jobs, HTTP)
``repro.evaluation``    Table II / Table III metrics (F1, BLEU, METEOR, ROUGE-L, ACC)
``repro.mpisim``        simulated MPI runtime + C interpreter (program validation)
``repro.benchprograms`` the 11 numerical benchmark programs

Quick start
-----------
>>> from repro.corpus import default_corpus
>>> from repro.dataset import build_dataset
>>> from repro.mpirical import MPIRical
>>> corpus = default_corpus(num_repositories=60)
>>> dataset = build_dataset(corpus)
>>> model = MPIRical.fit(dataset.splits.train, dataset.splits.validation)
>>> print(model.evaluate(dataset.splits.test, limit=20).to_table())
"""

__version__ = "1.0.0"

__all__ = [
    "clang",
    "xsbt",
    "mpiknow",
    "corpus",
    "dataset",
    "tokenization",
    "model",
    "api",
    "mpirical",
    "registry",
    "serving",
    "evaluation",
    "mpisim",
    "benchprograms",
    "utils",
]
