"""MPI function-call removal — the "Removed-Locations" transformation.

Given a standardised MPI program, this pass removes every statement whose
top-level expression is a call to an MPI function (or an assignment whose
right-hand side is such a call, e.g. ``t = MPI_Wtime();``), producing:

* the MPI-free program text (the model input), and
* the ordered list of :class:`RemovedCall` ground-truth records
  (function name + original line number + statement text).

Removal is text-line based over the standardised code: because the code
generator emits exactly one statement per line, a line-level operation is an
exact statement-level operation, and — crucially for RQ2 — the ground-truth
location bookkeeping stays trivially correct.

Declarations of MPI-specific variables (``MPI_Status``, ``MPI_Request``,
communicators, …) are left in place; the paper removes function calls only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..mpiknow.registry import is_mpi_call_name
from .records import RemovedCall

#: An MPI call appearing anywhere on a line, e.g. ``MPI_Reduce(`` .
_MPI_CALL_RE = re.compile(r"\b(MPI_[A-Za-z_0-9]+)\s*\(")


@dataclass
class RemovalResult:
    """Output of :func:`remove_mpi_calls`."""

    stripped_code: str
    removed: tuple[RemovedCall, ...]

    @property
    def removed_functions(self) -> tuple[str, ...]:
        return tuple(rc.function for rc in self.removed)


def find_mpi_calls_in_line(line: str) -> list[str]:
    """Return MPI function names called on ``line`` (in textual order)."""
    return [m for m in _MPI_CALL_RE.findall(line) if is_mpi_call_name(m)]


def remove_mpi_calls(code: str) -> RemovalResult:
    """Strip MPI call statements from ``code``.

    Lines that both call an MPI function and carry other control structure
    (e.g. ``if (MPI_Init(...) != MPI_SUCCESS) {``) keep their structure: only
    pure call statements (optionally with an assignment of the return value)
    are dropped.  The original line numbers are not preserved in the stripped
    text — the paper explicitly notes the locations are lost, which is what
    makes RQ2 non-trivial.
    """
    kept_lines: list[str] = []
    removed: list[RemovedCall] = []

    for lineno, line in enumerate(code.splitlines(), start=1):
        calls = find_mpi_calls_in_line(line)
        if calls and _is_pure_call_statement(line):
            for name in calls:
                removed.append(RemovedCall(function=name, line=lineno,
                                           statement=line.strip()))
            continue
        kept_lines.append(line)

    stripped = "\n".join(kept_lines)
    if code.endswith("\n") and not stripped.endswith("\n"):
        stripped += "\n"
    return RemovalResult(stripped_code=stripped, removed=tuple(removed))


def _is_pure_call_statement(line: str) -> bool:
    """True if ``line`` is a bare (possibly assigned) call statement.

    Conservative: control-flow keywords or a brace on the line mean the call
    is embedded in a larger construct and must not be removed wholesale.
    """
    stripped = line.strip()
    if not stripped.endswith(";"):
        return False
    for keyword in ("if ", "if(", "while ", "while(", "for ", "for(", "return ",
                    "switch ", "switch(", "else"):
        if stripped.startswith(keyword):
            return False
    if "{" in stripped or "}" in stripped:
        return False
    # Allow `x = MPI_Wtime();` and `MPI_Send(...);` but reject e.g.
    # `total += MPI_Wtime() - start;` style compound arithmetic? The paper
    # removes every MPI call; arithmetic uses of MPI_Wtime are rare in the
    # corpus because the templates always assign it directly.  Keep it simple:
    # any statement-final call line qualifies.
    return True


def count_mpi_calls(code: str) -> int:
    """Number of MPI calls present in ``code`` (textual count)."""
    total = 0
    for line in code.splitlines():
        total += len(find_mpi_calls_in_line(line))
    return total


def ground_truth_pairs(result: RemovalResult) -> list[tuple[str, int]]:
    """Return the (function, original line) ground-truth pairs for evaluation."""
    return [(rc.function, rc.line) for rc in result.removed]
