"""Inclusion / exclusion criteria applied when turning the corpus into the
training dataset (Section V of the paper).

* Inclusion — the program parses cleanly (already enforced by the corpus
  build) and contains at least one MPI call.
* Exclusion — programs longer than ``max_tokens`` (320 in the paper) are
  dropped because of the model's context-length limit; the paper notes this
  drops almost half of the raw corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.synthesis import CorpusProgram

#: The paper's token cap (approximately 50 lines of standardised C).
DEFAULT_MAX_TOKENS = 320


@dataclass
class FilterConfig:
    """Configuration of the dataset filters."""

    max_tokens: int = DEFAULT_MAX_TOKENS
    require_mpi: bool = True
    #: Require both MPI_Init and MPI_Finalize (domain-decomposition programs
    #: always bracket their parallel region).  The paper keeps this implicit;
    #: we expose it as a switch so ablations can relax it.
    require_init_finalize: bool = False


@dataclass
class FilterReport:
    """Counts of programs dropped by each criterion."""

    total: int = 0
    kept: int = 0
    dropped_no_mpi: int = 0
    dropped_too_long: int = 0
    dropped_missing_init_finalize: int = 0

    @property
    def drop_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return 1.0 - self.kept / self.total


def passes_filters(program: CorpusProgram, config: FilterConfig) -> tuple[bool, str]:
    """Check one program; returns (passes, reason-if-dropped)."""
    if config.require_mpi and not program.uses_mpi:
        return False, "no_mpi"
    if program.token_count > config.max_tokens:
        return False, "too_long"
    if config.require_init_finalize:
        fns = set(program.mpi_functions)
        if "MPI_Init" not in fns or "MPI_Finalize" not in fns:
            return False, "missing_init_finalize"
    return True, ""


def apply_filters(
    programs: list[CorpusProgram], config: FilterConfig | None = None
) -> tuple[list[CorpusProgram], FilterReport]:
    """Apply the inclusion/exclusion criteria to ``programs``."""
    config = config or FilterConfig()
    report = FilterReport(total=len(programs))
    kept: list[CorpusProgram] = []
    for program in programs:
        ok, reason = passes_filters(program, config)
        if ok:
            kept.append(program)
            continue
        if reason == "no_mpi":
            report.dropped_no_mpi += 1
        elif reason == "too_long":
            report.dropped_too_long += 1
        elif reason == "missing_init_finalize":
            report.dropped_missing_init_finalize += 1
    report.kept = len(kept)
    return kept, report
