"""Dataset pipeline: filters, MPI-call removal, example records and splits."""

from .builder import DatasetBuildResult, build_dataset, build_examples, example_from_program
from .filters import DEFAULT_MAX_TOKENS, FilterConfig, FilterReport, apply_filters, passes_filters
from .records import DatasetSplits, RemovedCall, TranslationExample
from .removal import (
    RemovalResult,
    count_mpi_calls,
    find_mpi_calls_in_line,
    ground_truth_pairs,
    remove_mpi_calls,
)
from .splits import SplitConfig, split_examples

__all__ = [
    "DatasetBuildResult",
    "build_dataset",
    "build_examples",
    "example_from_program",
    "DEFAULT_MAX_TOKENS",
    "FilterConfig",
    "FilterReport",
    "apply_filters",
    "passes_filters",
    "DatasetSplits",
    "RemovedCall",
    "TranslationExample",
    "RemovalResult",
    "count_mpi_calls",
    "find_mpi_calls_in_line",
    "ground_truth_pairs",
    "remove_mpi_calls",
    "SplitConfig",
    "split_examples",
]
