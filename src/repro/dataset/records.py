"""Dataclasses describing the supervised examples MPI-RICAL trains on.

One example corresponds to one corpus program (Figure 4 of the paper):

* ``source_code``   — the MPI program with every MPI call removed
  ("Removed-Locations", the model input);
* ``source_xsbt``   — the X-SBT of the removed-locations code (concatenated to
  the code after ``[SEP]`` in the encoder);
* ``target_code``   — the original MPI program (the label);
* ``removed_calls`` — the ground-truth (function name, line number) pairs the
  evaluation compares predictions against.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RemovedCall:
    """One MPI call stripped from the original program."""

    function: str
    #: 1-based line number in the *original* (standardised) program.
    line: int
    #: The full original statement text (useful for debugging and reports).
    statement: str = ""


@dataclass
class TranslationExample:
    """A single (input, label) pair for the translation task."""

    example_id: str
    family: str
    source_code: str
    source_xsbt: str
    target_code: str
    removed_calls: tuple[RemovedCall, ...] = ()
    token_count: int = 0

    @property
    def mpi_function_names(self) -> tuple[str, ...]:
        """Names of the ground-truth MPI functions, in source order."""
        return tuple(rc.function for rc in self.removed_calls)


@dataclass
class DatasetSplits:
    """Train / validation / test partition of the examples (80:10:10)."""

    train: list[TranslationExample] = field(default_factory=list)
    validation: list[TranslationExample] = field(default_factory=list)
    test: list[TranslationExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def sizes(self) -> dict[str, int]:
        return {
            "train": len(self.train),
            "validation": len(self.validation),
            "test": len(self.test),
        }
