"""Dataset construction from the corpus (Figure 4 of the paper).

Pipeline per program:

1. the corpus program is already standardised (regenerated from its AST);
2. every MPI call statement is removed, recording (function, line) ground
   truth — the "Removed-Locations" subset;
3. the X-SBT of the removed-locations code is computed (this is the second
   half of the encoder input);
4. the result is packaged as a :class:`TranslationExample`.

The builder also exposes :func:`build_dataset` which chains corpus filtering,
example creation and the 80:10:10 split into one call — the entry point used
by the training pipeline and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clang.lexer import code_token_texts
from ..corpus.synthesis import Corpus, CorpusProgram
from ..xsbt.xsbt import xsbt_for_source
from .filters import FilterConfig, FilterReport, apply_filters
from .records import DatasetSplits, TranslationExample
from .removal import remove_mpi_calls
from .splits import SplitConfig, split_examples


@dataclass
class DatasetBuildResult:
    """Everything produced by one dataset build."""

    examples: list[TranslationExample] = field(default_factory=list)
    splits: DatasetSplits = field(default_factory=DatasetSplits)
    filter_report: FilterReport = field(default_factory=FilterReport)

    def __len__(self) -> int:
        return len(self.examples)


def example_from_program(program: CorpusProgram) -> TranslationExample | None:
    """Create one translation example from a corpus program.

    Returns None if the program contains no removable MPI calls (nothing to
    learn from).
    """
    removal = remove_mpi_calls(program.code)
    if not removal.removed:
        return None
    xsbt = xsbt_for_source(removal.stripped_code)
    return TranslationExample(
        example_id=program.program_id,
        family=program.family,
        source_code=removal.stripped_code,
        source_xsbt=xsbt,
        target_code=program.code,
        removed_calls=removal.removed,
        token_count=len(code_token_texts(program.code)),
    )


def build_examples(
    corpus: Corpus, filter_config: FilterConfig | None = None
) -> tuple[list[TranslationExample], FilterReport]:
    """Filter the corpus and convert the surviving programs into examples."""
    kept, report = apply_filters(corpus.programs, filter_config)
    examples: list[TranslationExample] = []
    for program in kept:
        example = example_from_program(program)
        if example is not None:
            examples.append(example)
    return examples, report


def build_dataset(
    corpus: Corpus,
    filter_config: FilterConfig | None = None,
    split_config: SplitConfig | None = None,
) -> DatasetBuildResult:
    """Full dataset build: filters, example creation, and 80:10:10 split."""
    examples, report = build_examples(corpus, filter_config)
    splits = split_examples(examples, split_config)
    return DatasetBuildResult(examples=examples, splits=splits, filter_report=report)
