"""Deterministic 80:10:10 train/validation/test splitting (Section VI)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.rng import make_rng
from .records import DatasetSplits, TranslationExample


@dataclass
class SplitConfig:
    """Split ratios and shuffling seed."""

    train_fraction: float = 0.8
    validation_fraction: float = 0.1
    test_fraction: float = 0.1
    seed: int = 1234

    def validate(self) -> None:
        total = self.train_fraction + self.validation_fraction + self.test_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"split fractions must sum to 1.0, got {total}")
        for name, frac in (("train", self.train_fraction),
                           ("validation", self.validation_fraction),
                           ("test", self.test_fraction)):
            if frac < 0:
                raise ValueError(f"{name} fraction must be non-negative, got {frac}")


def split_examples(
    examples: list[TranslationExample], config: SplitConfig | None = None
) -> DatasetSplits:
    """Shuffle and partition ``examples`` according to ``config``.

    The shuffle is seeded so a given corpus always yields the same split —
    important because the benchmark harness re-creates the dataset for each
    table it regenerates.
    """
    config = config or SplitConfig()
    config.validate()

    rng = make_rng(config.seed)
    order = np.arange(len(examples))
    rng.shuffle(order)

    n = len(examples)
    n_train = int(round(n * config.train_fraction))
    n_val = int(round(n * config.validation_fraction))
    n_train = min(n_train, n)
    n_val = min(n_val, n - n_train)

    shuffled = [examples[i] for i in order]
    return DatasetSplits(
        train=shuffled[:n_train],
        validation=shuffled[n_train:n_train + n_val],
        test=shuffled[n_train + n_val:],
    )
