"""Corpus statistics reproducing Table Ia, Table Ib and Figure 3 of the paper.

* :func:`code_length_distribution` — files bucketed by line count
  (≤10, 11–50, 51–99, ≥100), Table Ia.
* :func:`common_core_counts` — per-file occurrence counts of the MPI Common
  Core functions, Table Ib.  Multiple occurrences in one file count once.
* :func:`init_finalize_ratio_histogram` — histogram of the ratio between the
  Init–Finalize span and the full program length, Figure 3.
* :func:`mpi_function_histogram` — full per-file histogram across every MPI
  function observed (the 456-class label space of RQ1, scaled down).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..mpiknow.registry import MPI_COMMON_CORE
from .synthesis import Corpus

#: The paper's Table Ia line-count buckets.
LENGTH_BUCKETS: tuple[tuple[str, int, int], ...] = (
    ("<= 10", 0, 10),
    ("11-50", 11, 50),
    ("51-99", 51, 99),
    (">= 100", 100, 10**9),
)


@dataclass
class CorpusStatistics:
    """Bundle of every statistic the corpus benchmarks print."""

    length_buckets: dict[str, int]
    common_core: dict[str, int]
    function_histogram: dict[str, int]
    ratio_histogram: tuple[np.ndarray, np.ndarray]
    files_with_init_and_finalize: int
    total_programs: int


def code_length_distribution(corpus: Corpus) -> dict[str, int]:
    """Bucket programs by non-empty line count (Table Ia)."""
    buckets = {label: 0 for label, _, _ in LENGTH_BUCKETS}
    for program in corpus.programs:
        for label, lo, hi in LENGTH_BUCKETS:
            if lo <= program.line_count <= hi:
                buckets[label] += 1
                break
    return buckets


def mpi_function_histogram(corpus: Corpus) -> dict[str, int]:
    """Per-file occurrence counts for every MPI function (descending)."""
    counter: Counter[str] = Counter()
    for program in corpus.programs:
        for name in set(program.mpi_functions):
            counter[name] += 1
    return dict(counter.most_common())


def common_core_counts(corpus: Corpus) -> dict[str, int]:
    """Per-file counts restricted to the MPI Common Core (Table Ib)."""
    hist = mpi_function_histogram(corpus)
    return {name: hist.get(name, 0) for name in MPI_COMMON_CORE}


def init_finalize_ratio_histogram(
    corpus: Corpus, bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of Init–Finalize span / program length (Figure 3).

    Returns ``(counts, bin_edges)`` as from :func:`numpy.histogram`.
    """
    ratios = [
        p.init_finalize_ratio
        for p in corpus.programs
        if p.init_finalize_ratio is not None
    ]
    if not ratios:
        return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
    counts, edges = np.histogram(np.asarray(ratios), bins=bins, range=(0.0, 1.0))
    return counts, edges


def files_with_init_and_finalize(corpus: Corpus) -> int:
    """Number of programs containing both MPI_Init and MPI_Finalize.

    The paper reports 20,228 such files in the raw data; the synthetic corpus
    reproduces the property that this is the large majority of MPI programs.
    """
    count = 0
    for p in corpus.programs:
        fns = set(p.mpi_functions)
        if "MPI_Init" in fns and "MPI_Finalize" in fns:
            count += 1
    return count


def median_parallel_ratio(corpus: Corpus) -> float:
    """Median Init–Finalize span ratio (the paper observes most programs have
    more than half their lines inside the parallel region)."""
    ratios = [
        p.init_finalize_ratio
        for p in corpus.programs
        if p.init_finalize_ratio is not None
    ]
    if not ratios:
        return 0.0
    return float(np.median(np.asarray(ratios)))


def is_exponentially_decreasing(histogram: dict[str, int], *, tolerance: int = 1) -> bool:
    """Check the paper's qualitative claim that the MPI-function frequency
    distribution decreases sharply, with the common core at the head.

    ``tolerance`` allows a few local inversions (the synthetic corpus is not a
    perfectly smooth exponential either).
    """
    values = list(histogram.values())
    if len(values) < 3:
        return True
    inversions = sum(1 for a, b in zip(values, values[1:]) if b > a)
    return inversions <= max(tolerance, len(values) // 4)


def summarize(corpus: Corpus, bins: int = 20) -> CorpusStatistics:
    """Compute every corpus statistic in one pass."""
    return CorpusStatistics(
        length_buckets=code_length_distribution(corpus),
        common_core=common_core_counts(corpus),
        function_histogram=mpi_function_histogram(corpus),
        ratio_histogram=init_finalize_ratio_histogram(corpus, bins=bins),
        files_with_init_and_finalize=files_with_init_and_finalize(corpus),
        total_programs=len(corpus),
    )
