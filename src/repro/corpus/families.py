"""Registry of program families used by the synthetic corpus generator.

A *family* couples a template callable with a sampling weight (how often the
family appears in the synthetic corpus) and a coarse category.  Weights were
chosen so the resulting MPI-function histogram is exponentially decreasing and
headed by the MPI Common Core, matching Table Ib of the paper qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .templates import Style, communication, linalg, misc, reductions

TemplateFn = Callable[[np.random.Generator, Style], str]


@dataclass(frozen=True)
class ProgramFamily:
    """One generative family of synthetic MPI programs."""

    name: str
    template: TemplateFn
    category: str
    weight: float
    uses_mpi: bool = True


#: All registered families.  Reduction-style programs dominate (as they do in
#: mined teaching/sample code), point-to-point patterns come next, and more
#: exotic families (topology, communicator splitting) sit in the tail.
FAMILIES: tuple[ProgramFamily, ...] = (
    ProgramFamily("pi_riemann", reductions.pi_riemann, "reduction", 10.0),
    ProgramFamily("pi_monte_carlo", reductions.pi_monte_carlo, "reduction", 7.0),
    ProgramFamily("trapezoidal_rule", reductions.trapezoidal_rule, "reduction", 7.0),
    ProgramFamily("array_sum", reductions.array_sum, "reduction", 9.0),
    ProgramFamily("array_average", reductions.array_average, "reduction", 8.0),
    ProgramFamily("dot_product", reductions.dot_product, "reduction", 8.0),
    ProgramFamily("min_max", reductions.min_max, "reduction", 6.0),
    ProgramFamily("histogram", reductions.histogram, "reduction", 4.0),
    ProgramFamily("variance", reductions.variance, "reduction", 4.0),
    ProgramFamily("scan_prefix_sum", reductions.scan_prefix_sum, "reduction", 2.0),
    ProgramFamily("matrix_vector", linalg.matrix_vector, "linalg", 6.0),
    ProgramFamily("matrix_matrix", linalg.matrix_matrix, "linalg", 5.0),
    ProgramFamily("jacobi_iteration", linalg.jacobi_iteration, "linalg", 4.0),
    ProgramFamily("vector_norm", linalg.vector_norm, "linalg", 4.0),
    ProgramFamily("matrix_transpose", linalg.matrix_transpose, "linalg", 2.0),
    ProgramFamily("ping_pong", communication.ping_pong, "communication", 5.0),
    ProgramFamily("ring_pass", communication.ring_pass, "communication", 6.0),
    ProgramFamily("master_worker", communication.master_worker, "communication", 6.0),
    ProgramFamily("nonblocking_exchange", communication.nonblocking_exchange,
                  "communication", 3.0),
    ProgramFamily("broadcast_config", communication.broadcast_config, "communication", 5.0),
    ProgramFamily("gather_results", communication.gather_results, "communication", 5.0),
    ProgramFamily("processor_names", communication.processor_names, "communication", 5.0),
    ProgramFamily("cartesian_grid", communication.cartesian_grid, "topology", 2.0),
    ProgramFamily("split_communicator", communication.split_communicator, "topology", 2.0),
    ProgramFamily("merge_sort", misc.merge_sort, "sorting", 4.0),
    ProgramFamily("odd_even_sort", misc.odd_even_sort, "sorting", 2.5),
    ProgramFamily("factorial", misc.factorial, "number_theory", 3.0),
    ProgramFamily("fibonacci", misc.fibonacci, "number_theory", 3.0),
    ProgramFamily("prime_count", misc.prime_count, "number_theory", 3.0),
    ProgramFamily("random_walk", misc.random_walk, "simulation", 3.0),
    ProgramFamily("sum_reduce_gather", misc.sum_reduce_gather, "reduction", 4.0),
    ProgramFamily("heat_1d", misc.heat_1d, "simulation", 3.0),
    ProgramFamily("serial_program", misc.serial_program, "serial", 5.0, uses_mpi=False),
)

#: Families that emit MPI programs (the dataset draws only from these).
MPI_FAMILIES: tuple[ProgramFamily, ...] = tuple(f for f in FAMILIES if f.uses_mpi)


def family_by_name(name: str) -> ProgramFamily:
    """Look a family up by name; raises KeyError if unknown."""
    for fam in FAMILIES:
        if fam.name == name:
            return fam
    raise KeyError(f"unknown program family: {name!r}")


def family_names(*, mpi_only: bool = False) -> list[str]:
    """Return the registered family names."""
    pool = MPI_FAMILIES if mpi_only else FAMILIES
    return [f.name for f in pool]
