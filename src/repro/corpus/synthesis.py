"""MPICodeCorpus synthesis: mining simulation + standardisation + filtering.

This module glues the simulated mining step (:mod:`repro.corpus.mining`) to
the paper's corpus construction pipeline:

1. mine C programs from repositories mentioning MPI;
2. keep only files that parse cleanly (strict mode — the pycparser stand-in);
3. regenerate each surviving file from its AST (*code standardisation*);
4. record per-file metadata needed later: token count, line count, which MPI
   functions occur, and the Init–Finalize span.

The result is a :class:`Corpus` — the in-memory MPICodeCorpus equivalent from
which the dataset builder (:mod:`repro.dataset.builder`) creates the
translation examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clang.codegen import generate_code
from ..clang.lexer import code_token_texts
from ..clang.parser import parse_source
from ..mpiknow.registry import is_mpi_call_name
from ..utils.textio import count_lines
from .mining import MiningConfig, generate_repositories, mine_c_programs


@dataclass
class CorpusProgram:
    """One standardised program in the corpus."""

    program_id: str
    family: str
    code: str
    token_count: int
    line_count: int
    mpi_functions: tuple[str, ...]
    #: Line numbers (1-based, in the standardised code) of each MPI call.
    mpi_call_lines: tuple[int, ...]
    init_finalize_ratio: float | None = None

    @property
    def uses_mpi(self) -> bool:
        return bool(self.mpi_functions)


@dataclass
class CorpusBuildReport:
    """Bookkeeping from a corpus build (feeds Table Ia/Ib style statistics)."""

    repositories_total: int = 0
    repositories_mpi: int = 0
    files_extracted: int = 0
    files_parse_failed: int = 0
    files_without_main: int = 0
    programs_kept: int = 0


@dataclass
class Corpus:
    """The synthesised MPICodeCorpus."""

    programs: list[CorpusProgram] = field(default_factory=list)
    report: CorpusBuildReport = field(default_factory=CorpusBuildReport)

    def __len__(self) -> int:
        return len(self.programs)

    def mpi_programs(self) -> list[CorpusProgram]:
        """Programs that contain at least one MPI call."""
        return [p for p in self.programs if p.uses_mpi]

    def by_family(self, family: str) -> list[CorpusProgram]:
        return [p for p in self.programs if p.family == family]


def _analyze_standardized(code: str) -> tuple[tuple[str, ...], tuple[int, ...], float | None]:
    """Extract MPI call names, their line numbers and the Init–Finalize ratio."""
    unit = parse_source(code, tolerant=True)
    names: list[str] = []
    lines: list[int] = []
    init_line: int | None = None
    finalize_line: int | None = None
    line_lookup = code.splitlines()

    for call in unit.find_all("call_expression"):
        name = getattr(call, "callee_name", None)
        if name is None or not is_mpi_call_name(name):
            continue
        # Recover the call's line in the standardised text by searching for the
        # call name; AST line numbers refer to the pre-standardisation text.
        names.append(name)
    # Line numbers determined textually over the standardised code (1-based).
    for lineno, text in enumerate(line_lookup, start=1):
        for name in set(names):
            if name + "(" in text:
                lines.append(lineno)
                if name == "MPI_Init":
                    init_line = lineno
                if name == "MPI_Finalize":
                    finalize_line = lineno
                break

    ratio: float | None = None
    total = count_lines(code)
    if init_line is not None and finalize_line is not None and total > 0:
        ratio = (finalize_line - init_line) / total
        ratio = max(0.0, min(1.0, ratio))
    return tuple(names), tuple(lines), ratio


def build_corpus(config: MiningConfig | None = None) -> Corpus:
    """Run the full corpus construction pipeline and return the corpus."""
    config = config or MiningConfig()
    repositories = generate_repositories(config)
    report = CorpusBuildReport(repositories_total=len(repositories))
    report.repositories_mpi = sum(1 for r in repositories if r.mentions_mpi())

    extracted = mine_c_programs(repositories)
    report.files_extracted = len(extracted)
    report.files_without_main = sum(
        1 for repo in repositories if repo.mentions_mpi()
        for f in repo.files if not f.has_main
    )

    corpus = Corpus(report=report)
    for idx, source in enumerate(extracted):
        # Inclusion criterion: the file must parse cleanly in strict mode.
        try:
            unit = parse_source(source.text, tolerant=False)
        except Exception:
            report.files_parse_failed += 1
            continue
        if not unit.has_main():
            report.files_without_main += 1
            continue

        standardized = generate_code(unit)
        mpi_functions, mpi_lines, ratio = _analyze_standardized(standardized)
        program = CorpusProgram(
            program_id=f"prog_{idx:06d}",
            family=source.family,
            code=standardized,
            token_count=len(code_token_texts(standardized)),
            line_count=count_lines(standardized),
            mpi_functions=mpi_functions,
            mpi_call_lines=mpi_lines,
            init_finalize_ratio=ratio,
        )
        corpus.programs.append(program)

    report.programs_kept = len(corpus.programs)
    return corpus


def default_corpus(num_repositories: int = 200, seed: int = 20230) -> Corpus:
    """Build a corpus with the default mining configuration scaled by size."""
    return build_corpus(MiningConfig(num_repositories=num_repositories, seed=seed))
