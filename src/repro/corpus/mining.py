"""Simulated GitHub repository mining.

The paper builds MPICodeCorpus by running ``github-clone-all`` over GitHub
repositories whose title/description/README mentions "MPI", then extracting C
files that define a ``main`` function.  That mining step cannot run offline,
so this module simulates it: it creates a population of synthetic
*repositories* — each with a name, a description, a README, and a set of C
files drawn from the program families — and then applies the same
keyword-based repository filter and program-definition extraction the paper
describes.

The point of keeping the repository layer (rather than generating bare files)
is that the filters are part of the system being reproduced: repositories
whose metadata never mentions MPI are skipped, non-``main`` files are skipped,
and deliberately corrupted files exercise the parse-failure exclusion path
downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import choice, make_rng, spawn
from .families import FAMILIES, ProgramFamily
from .templates import random_style

_REPO_TOPICS = [
    "hpc", "parallel-computing", "scientific-computing", "numerical-methods",
    "simulation", "linear-algebra", "physics", "cfd", "molecular-dynamics",
    "teaching", "coursework", "benchmarks",
]

_REPO_PREFIXES = ["mpi", "parallel", "distributed", "hpc", "numerics", "cluster"]
_REPO_SUFFIXES = ["examples", "labs", "course", "solver", "toolkit", "experiments",
                  "homework", "kernels", "benchmarks", "demos"]

_NON_MPI_DESCRIPTIONS = [
    "A collection of serial numerical routines.",
    "Single-threaded utility programs for data processing.",
    "Coursework on basic algorithms in C.",
]

_MPI_DESCRIPTIONS = [
    "MPI examples for a parallel programming course.",
    "Distributed memory solvers using the Message Passing Interface (MPI).",
    "Domain decomposition kernels parallelised with MPI.",
    "OpenMPI/MPICH sample programs for HPC training.",
]


@dataclass
class SourceFile:
    """A single C file inside a synthetic repository."""

    path: str
    text: str
    family: str
    has_main: bool = True
    corrupted: bool = False


@dataclass
class Repository:
    """A synthetic GitHub repository."""

    name: str
    description: str
    readme: str
    topics: list[str] = field(default_factory=list)
    files: list[SourceFile] = field(default_factory=list)

    def mentions_mpi(self) -> bool:
        """The paper's repository filter: 'MPI' in title, description or README."""
        haystack = " ".join([self.name, self.description, self.readme]).lower()
        return "mpi" in haystack


@dataclass
class MiningConfig:
    """Knobs for the simulated mining run."""

    num_repositories: int = 200
    files_per_repo_mean: float = 6.0
    #: Fraction of repositories that are not MPI-related at all (filtered out).
    non_mpi_repo_fraction: float = 0.15
    #: Fraction of files that are headers/implementation files without main.
    no_main_fraction: float = 0.08
    #: Fraction of files that are deliberately corrupted (exercise the
    #: parse-failure exclusion criterion).
    corrupted_fraction: float = 0.05
    seed: int = 20230


def _corrupt(text: str, rng: np.random.Generator) -> str:
    """Damage a program so it no longer parses cleanly."""
    mode = choice(rng, ["drop_brace", "truncate", "garbage"])
    if mode == "drop_brace" and "}" in text:
        idx = text.rindex("}")
        return text[:idx] + text[idx + 1:]
    if mode == "truncate":
        cut = max(10, int(len(text) * 0.6))
        return text[:cut]
    return text + "\n@@@ unbalanced (((\n"


def _helper_file(rng: np.random.Generator) -> str:
    """A header/implementation file without a main function."""
    return (
        "#include <math.h>\n"
        "\n"
        "double squared(double value) {\n"
        "    return value * value;\n"
        "}\n"
        "\n"
        "double scaled(double value, double factor) {\n"
        "    return value * factor;\n"
        "}\n"
    )


def _repo_name(rng: np.random.Generator, index: int, mpi_related: bool) -> str:
    prefix = choice(rng, _REPO_PREFIXES if mpi_related else ["serial", "basic", "misc"])
    suffix = choice(rng, _REPO_SUFFIXES)
    return f"{prefix}-{suffix}-{index:04d}"


def generate_repositories(config: MiningConfig | None = None) -> list[Repository]:
    """Create the synthetic repository population."""
    config = config or MiningConfig()
    rng = make_rng(config.seed)
    repo_rngs = spawn(rng, config.num_repositories)

    weights = [f.weight for f in FAMILIES]
    repos: list[Repository] = []
    for idx, repo_rng in enumerate(repo_rngs):
        mpi_related = bool(repo_rng.random() >= config.non_mpi_repo_fraction)
        name = _repo_name(repo_rng, idx, mpi_related)
        if mpi_related:
            description = choice(repo_rng, _MPI_DESCRIPTIONS)
            readme = (f"# {name}\n\nParallel programs written with MPI "
                      "(tested with OpenMPI and MPICH).\n")
        else:
            description = choice(repo_rng, _NON_MPI_DESCRIPTIONS)
            readme = f"# {name}\n\nSerial C programs.\n"
        topics = [choice(repo_rng, _REPO_TOPICS) for _ in range(2)]

        num_files = max(1, int(repo_rng.poisson(config.files_per_repo_mean)))
        files: list[SourceFile] = []
        for fidx in range(num_files):
            family: ProgramFamily = choice(repo_rng, list(FAMILIES), weights)
            if not mpi_related and family.uses_mpi:
                # Non-MPI repositories only hold serial code.
                family = next(f for f in FAMILIES if not f.uses_mpi)
            style = random_style(repo_rng)
            text = family.template(repo_rng, style)
            has_main = True
            corrupted = False
            roll = repo_rng.random()
            if roll < config.no_main_fraction:
                text = _helper_file(repo_rng)
                has_main = False
            elif roll < config.no_main_fraction + config.corrupted_fraction:
                text = _corrupt(text, repo_rng)
                corrupted = True
            files.append(
                SourceFile(
                    path=f"{name}/src/{family.name}_{fidx}.c",
                    text=text,
                    family=family.name,
                    has_main=has_main,
                    corrupted=corrupted,
                )
            )
        repos.append(Repository(name=name, description=description, readme=readme,
                                topics=topics, files=files))
    return repos


def mine_c_programs(repositories: list[Repository]) -> list[SourceFile]:
    """Apply the paper's mining filters and return the extracted C programs.

    Filters applied, in the paper's order:

    1. Repository filter — only repositories mentioning "MPI" in name,
       description, or README are cloned.
    2. Program definition — a *program* is a source file containing ``main``.
    """
    programs: list[SourceFile] = []
    for repo in repositories:
        if not repo.mentions_mpi():
            continue
        for f in repo.files:
            if not f.has_main:
                continue
            programs.append(f)
    return programs
