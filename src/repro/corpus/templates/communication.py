"""Templates dominated by explicit point-to-point communication patterns."""

from __future__ import annotations

import numpy as np

from ...utils.rng import choice
from .base import (
    Style,
    assemble,
    headers,
    mpi_epilogue,
    mpi_prologue,
    print_on_root,
    status_arg,
)


def ping_pong(rng: np.random.Generator, style: Style) -> str:
    """Two-rank ping-pong latency microbenchmark."""
    count = int(choice(rng, [1, 16, 64, 256, 1024]))
    reps = int(choice(rng, [10, 100, 1000]))
    status_decl, status = status_arg(style)
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {count};",
        f"    int reps = {reps};",
        f"    double *{style.data} = (double *) malloc({count} * sizeof(double));",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        f"    for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"        {style.data}[{style.index}] = (double) {style.index};",
        "    }",
        "    double t0 = MPI_Wtime();",
        f"    for ({style.index} = 0; {style.index} < reps; {style.index}++) {{",
        f"        if ({style.rank} == 0) {{",
        f"            MPI_Send({style.data}, {style.count}, MPI_DOUBLE, 1, {style.tag}, "
        "MPI_COMM_WORLD);",
        f"            MPI_Recv({style.data}, {style.count}, MPI_DOUBLE, 1, {style.tag}, "
        f"MPI_COMM_WORLD, {status});",
        "        }",
        f"        if ({style.rank} == 1) {{",
        f"            MPI_Recv({style.data}, {style.count}, MPI_DOUBLE, 0, {style.tag}, "
        f"MPI_COMM_WORLD, {status});",
        f"            MPI_Send({style.data}, {style.count}, MPI_DOUBLE, 0, {style.tag}, "
        "MPI_COMM_WORLD);",
        "        }",
        "    }",
        "    double t1 = MPI_Wtime();",
        f"    if ({style.rank} == 0) {{",
        '        printf("roundtrip time %f\\n", (t1 - t0) / (double) reps);',
        "    }",
        f"    free({style.data});",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def ring_pass(rng: np.random.Generator, style: Style) -> str:
    """Token passed around a ring of ranks with Send/Recv."""
    status_decl, status = status_arg(style)
    body = [
        f"    int {style.rank}, {style.size};",
        "    int token = 0;",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        f"    int next = ({style.rank} + 1) % {style.size};",
        f"    int prev = ({style.rank} + {style.size} - 1) % {style.size};",
        f"    if ({style.rank} == 0) {{",
        f"        token = {int(choice(rng, [1, 7, 42, 100]))};",
        f"        MPI_Send(&token, 1, MPI_INT, next, {style.tag}, MPI_COMM_WORLD);",
        f"        MPI_Recv(&token, 1, MPI_INT, prev, {style.tag}, MPI_COMM_WORLD, {status});",
        "    } else {",
        f"        MPI_Recv(&token, 1, MPI_INT, prev, {style.tag}, MPI_COMM_WORLD, {status});",
        "        token = token + 1;",
        f"        MPI_Send(&token, 1, MPI_INT, next, {style.tag}, MPI_COMM_WORLD);",
        "    }",
        f'    printf("rank %d token %d\\n", {style.rank}, token);',
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def master_worker(rng: np.random.Generator, style: Style) -> str:
    """Master rank distributes work items to workers and collects results."""
    status_decl, status = status_arg(style)
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double work = 0.0;",
        "    double partial = 0.0;",
        "    double total = 0.0;",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        f"    if ({style.rank} == 0) {{",
        f"        for ({style.index} = 1; {style.index} < {style.size}; {style.index}++) {{",
        f"            work = (double) {style.index} * 10.0;",
        f"            MPI_Send(&work, 1, MPI_DOUBLE, {style.index}, {style.tag}, "
        "MPI_COMM_WORLD);",
        "        }",
        f"        for ({style.index} = 1; {style.index} < {style.size}; {style.index}++) {{",
        f"            MPI_Recv(&partial, 1, MPI_DOUBLE, {style.index}, {style.tag + 1}, "
        f"MPI_COMM_WORLD, {status});",
        "            total += partial;",
        "        }",
        f'        printf("total = %f\\n", total);',
        "    } else {",
        f"        MPI_Recv(&work, 1, MPI_DOUBLE, 0, {style.tag}, MPI_COMM_WORLD, {status});",
        "        partial = work * work;",
        f"        MPI_Send(&partial, 1, MPI_DOUBLE, 0, {style.tag + 1}, MPI_COMM_WORLD);",
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def nonblocking_exchange(rng: np.random.Generator, style: Style) -> str:
    """Neighbour exchange with Isend/Irecv/Waitall."""
    count = int(choice(rng, [8, 32, 128]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {count};",
        f"    double *sendbuf = (double *) malloc({count} * sizeof(double));",
        f"    double *recvbuf = (double *) malloc({count} * sizeof(double));",
        "    MPI_Request requests[2];",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int next = ({style.rank} + 1) % {style.size};",
        f"    int prev = ({style.rank} + {style.size} - 1) % {style.size};",
        f"    for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"        sendbuf[{style.index}] = (double) {style.rank};",
        "    }",
        f"    MPI_Irecv(recvbuf, {style.count}, MPI_DOUBLE, prev, {style.tag}, MPI_COMM_WORLD, "
        "&requests[0]);",
        f"    MPI_Isend(sendbuf, {style.count}, MPI_DOUBLE, next, {style.tag}, MPI_COMM_WORLD, "
        "&requests[1]);",
        "    MPI_Waitall(2, requests, MPI_STATUSES_IGNORE);",
        "    double got = recvbuf[0];",
        f'    printf("rank %d received %f\\n", {style.rank}, got);',
        "    free(sendbuf);",
        "    free(recvbuf);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def broadcast_config(rng: np.random.Generator, style: Style) -> str:
    """Root reads a configuration value and broadcasts it to everyone."""
    body = [
        f"    int {style.rank}, {style.size};",
        "    int config = 0;",
        "    double scale = 0.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    if ({style.rank} == 0) {{",
        f"        config = {int(choice(rng, [10, 50, 100, 500]))};",
        "        scale = 1.5;",
        "    }",
        "    MPI_Bcast(&config, 1, MPI_INT, 0, MPI_COMM_WORLD);",
        "    MPI_Bcast(&scale, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    double local_value = (double) config * scale + (double) {style.rank};",
        f'    printf("rank %d value %f\\n", {style.rank}, local_value);',
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def gather_results(rng: np.random.Generator, style: Style) -> str:
    """Each rank computes one value; root gathers the vector of values."""
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        "    double my_value = 0.0;",
        "    double *all_values = NULL;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    my_value = (double) {style.rank} * 2.5;",
        f"    if ({style.rank} == 0) {{",
        f"        all_values = (double *) malloc({style.size} * sizeof(double));",
        "    }",
        "    MPI_Gather(&my_value, 1, MPI_DOUBLE, all_values, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        for ({style.index} = 0; {style.index} < {style.size}; {style.index}++) {{",
        f'            printf("value[%d] = %f\\n", {style.index}, all_values[{style.index}]);',
        "        }",
        "        free(all_values);",
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def processor_names(rng: np.random.Generator, style: Style) -> str:
    """Hello-world style program reporting processor names and a barrier."""
    body = [
        f"    int {style.rank}, {style.size};",
        "    int namelen = 0;",
        "    char name[MPI_MAX_PROCESSOR_NAME];",
    ]
    body += mpi_prologue(style)
    body += [
        "    MPI_Get_processor_name(name, &namelen);",
        f'    printf("rank %d of %d on %s\\n", {style.rank}, {style.size}, name);',
        "    MPI_Barrier(MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        '        printf("all ranks reported\\n");',
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def cartesian_grid(rng: np.random.Generator, style: Style) -> str:
    """2-D Cartesian communicator with coordinate lookup and neighbour shift."""
    status_decl, status = status_arg(style)
    body = [
        f"    int {style.rank}, {style.size};",
        "    int dims[2];",
        "    int periods[2];",
        "    int coords[2];",
        "    int left, right;",
        "    MPI_Comm cart_comm;",
        "    double halo = 0.0;",
        "    double my_cell = 0.0;",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        "    dims[0] = 0;",
        "    dims[1] = 0;",
        "    periods[0] = 1;",
        "    periods[1] = 1;",
        f"    MPI_Dims_create({style.size}, 2, dims);",
        "    MPI_Cart_create(MPI_COMM_WORLD, 2, dims, periods, 1, &cart_comm);",
        f"    MPI_Cart_coords(cart_comm, {style.rank}, 2, coords);",
        "    MPI_Cart_shift(cart_comm, 0, 1, &left, &right);",
        "    my_cell = (double) (coords[0] * 10 + coords[1]);",
        f"    MPI_Sendrecv(&my_cell, 1, MPI_DOUBLE, right, {style.tag}, &halo, 1, MPI_DOUBLE, "
        f"left, {style.tag}, cart_comm, {status});",
        f'    printf("rank %d coords (%d, %d) halo %f\\n", {style.rank}, coords[0], coords[1], halo);',
        "    MPI_Comm_free(&cart_comm);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def split_communicator(rng: np.random.Generator, style: Style) -> str:
    """Split MPI_COMM_WORLD into row communicators and reduce within each."""
    body = [
        f"    int {style.rank}, {style.size};",
        "    int row_rank, row_size;",
        "    MPI_Comm row_comm;",
        "    double my_value, row_sum;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int color = {style.rank} % 2;",
        f"    MPI_Comm_split(MPI_COMM_WORLD, color, {style.rank}, &row_comm);",
        "    MPI_Comm_rank(row_comm, &row_rank);",
        "    MPI_Comm_size(row_comm, &row_size);",
        f"    my_value = (double) {style.rank} + 1.0;",
        "    MPI_Allreduce(&my_value, &row_sum, 1, MPI_DOUBLE, MPI_SUM, row_comm);",
        f'    printf("rank %d color %d row_sum %f\\n", {style.rank}, color, row_sum);',
        "    MPI_Comm_free(&row_comm);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)
