"""Synthetic MPI program templates grouped by computational pattern."""

from .base import Style, random_style
from . import communication, linalg, misc, reductions

__all__ = ["Style", "random_style", "communication", "linalg", "misc", "reductions"]
