"""Templates for reduction-style domain-decomposition programs.

These families (pi estimation, numerical integration, array reductions) are
the bread-and-butter of MPI teaching material and dominate mined corpora, so
they get the highest sampling weights in the synthetic corpus.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import choice
from .base import (
    Style,
    assemble,
    headers,
    mpi_epilogue,
    mpi_prologue,
    print_on_root,
    status_arg,
    timing_end,
    timing_start,
)


def pi_riemann(rng: np.random.Generator, style: Style) -> str:
    """Pi computed with a Riemann sum (the paper's running example)."""
    n = style.problem_size * 10
    reduce_fn = choice(rng, ["MPI_Reduce", "MPI_Allreduce"], [0.7, 0.3])
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double h, x, sum, pi;",
        "    sum = 0.0;",
    ]
    body += mpi_prologue(style)
    body += timing_start(style)
    body += [
        f"    h = 1.0 / (double) {style.count};",
        f"    for ({style.index} = {style.rank}; {style.index} < {style.count}; "
        f"{style.index} += {style.size}) {{",
        f"        x = h * ((double) {style.index} + 0.5);",
        "        sum += 4.0 / (1.0 + x * x);",
        "    }",
        f"    double {style.local} = h * sum;",
    ]
    if reduce_fn == "MPI_Reduce":
        body.append(f"    MPI_Reduce(&{style.local}, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, "
                    "MPI_COMM_WORLD);")
    else:
        body.append(f"    MPI_Allreduce(&{style.local}, &pi, 1, MPI_DOUBLE, MPI_SUM, "
                    "MPI_COMM_WORLD);")
    body += timing_end(style)
    body += print_on_root(Style(**{**vars(style), "dtype_c": "double"}), "pi", "pi")
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def pi_monte_carlo(rng: np.random.Generator, style: Style) -> str:
    """Pi estimated by Monte-Carlo sampling of the unit square."""
    samples = style.problem_size * 100
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {samples};",
        "    int local_hits = 0;",
        "    int total_hits = 0;",
        "    double x, y;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    srand({style.rank} + 1);",
        f"    for ({style.index} = {style.rank}; {style.index} < {style.count}; "
        f"{style.index} += {style.size}) {{",
        "        x = (double) rand() / (double) RAND_MAX;",
        "        y = (double) rand() / (double) RAND_MAX;",
        "        if (x * x + y * y <= 1.0) {",
        "            local_hits = local_hits + 1;",
        "        }",
        "    }",
        "    MPI_Reduce(&local_hits, &total_hits, 1, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        double pi = 4.0 * (double) total_hits / (double) {style.count};",
        '        printf("pi estimate = %f\\n", pi);',
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def trapezoidal_rule(rng: np.random.Generator, style: Style) -> str:
    """Numerical integration of f(x) = x*x with the trapezoidal rule."""
    n = style.problem_size
    a_val = choice(rng, ["0.0", "1.0", "-1.0"])
    b_val = choice(rng, ["1.0", "2.0", "4.0", "10.0"])
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        f"    double a = {a_val};",
        f"    double b = {b_val};",
        "    double h, local_a, local_b, local_int, total_int;",
        "    int local_n;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    h = (b - a) / (double) {style.count};",
        f"    local_n = {style.count} / {style.size};",
        f"    local_a = a + (double) {style.rank} * (double) local_n * h;",
        "    local_b = local_a + (double) local_n * h;",
        "    local_int = (local_a * local_a + local_b * local_b) / 2.0;",
        f"    for ({style.index} = 1; {style.index} < local_n; {style.index}++) {{",
        f"        double x = local_a + (double) {style.index} * h;",
        "        local_int += x * x;",
        "    }",
        "    local_int = local_int * h;",
        "    MPI_Reduce(&local_int, &total_int, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "total_int", "integral")
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def array_sum(rng: np.random.Generator, style: Style) -> str:
    """Sum of a distributed array via Scatter + local sum + Reduce."""
    n = style.problem_size
    c_type = style.dtype_c
    mpi_type = style.dtype_mpi
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        f"    {c_type} *{style.data} = NULL;",
        f"    {c_type} {style.local} = 0;",
        f"    {c_type} {style.result} = 0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        f"    {c_type} *recv = ({c_type} *) malloc(chunk * sizeof({c_type}));",
        f"    if ({style.rank} == 0) {{",
        f"        {style.data} = ({c_type} *) malloc({style.count} * sizeof({c_type}));",
        f"        for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"            {style.data}[{style.index}] = ({c_type}) ({style.index} % 17);",
        "        }",
        "    }",
        f"    MPI_Scatter({style.data}, chunk, {mpi_type}, recv, chunk, {mpi_type}, 0, "
        "MPI_COMM_WORLD);",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        {style.local} += recv[{style.index}];",
        "    }",
        f"    MPI_Reduce(&{style.local}, &{style.result}, 1, {mpi_type}, MPI_SUM, 0, "
        "MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, style.result, "sum")
    body += ["    free(recv);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def array_average(rng: np.random.Generator, style: Style) -> str:
    """Average of a distributed array (Scatter, local mean, Gather/Reduce)."""
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        f"    double *{style.data} = NULL;",
        "    double local_avg = 0.0;",
        "    double global_avg = 0.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *sub = (double *) malloc(chunk * sizeof(double));",
        f"    if ({style.rank} == 0) {{",
        f"        {style.data} = (double *) malloc({style.count} * sizeof(double));",
        f"        for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"            {style.data}[{style.index}] = (double) {style.index};",
        "        }",
        "    }",
        f"    MPI_Scatter({style.data}, chunk, MPI_DOUBLE, sub, chunk, MPI_DOUBLE, 0, "
        "MPI_COMM_WORLD);",
        "    double s = 0.0;",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        s += sub[{style.index}];",
        "    }",
        "    local_avg = s / (double) chunk;",
        "    MPI_Reduce(&local_avg, &global_avg, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        global_avg = global_avg / (double) {style.size};",
        '        printf("average = %f\\n", global_avg);',
        "    }",
        "    free(sub);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def dot_product(rng: np.random.Generator, style: Style) -> str:
    """Dot product of two distributed vectors."""
    n = style.problem_size
    use_allreduce = bool(rng.random() < 0.5)
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_dot = 0.0;",
        "    double global_dot = 0.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *x = (double *) malloc(chunk * sizeof(double));",
        "    double *y = (double *) malloc(chunk * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        x[{style.index}] = (double) ({style.rank} * chunk + {style.index});",
        f"        y[{style.index}] = 2.0;",
        "    }",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        local_dot += x[{style.index}] * y[{style.index}];",
        "    }",
    ]
    if use_allreduce:
        body.append("    MPI_Allreduce(&local_dot, &global_dot, 1, MPI_DOUBLE, MPI_SUM, "
                    "MPI_COMM_WORLD);")
    else:
        body.append("    MPI_Reduce(&local_dot, &global_dot, 1, MPI_DOUBLE, MPI_SUM, 0, "
                    "MPI_COMM_WORLD);")
    body += print_on_root(style, "global_dot", "dot")
    body += ["    free(x);", "    free(y);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def min_max(rng: np.random.Generator, style: Style) -> str:
    """Global minimum and maximum of a distributed array."""
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_min, local_max, global_min, global_max;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *vals = (double *) malloc(chunk * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        vals[{style.index}] = (double) (({style.rank} * 31 + {style.index} * 7) % 101);",
        "    }",
        "    local_min = vals[0];",
        "    local_max = vals[0];",
        f"    for ({style.index} = 1; {style.index} < chunk; {style.index}++) {{",
        f"        if (vals[{style.index}] < local_min) {{",
        f"            local_min = vals[{style.index}];",
        "        }",
        f"        if (vals[{style.index}] > local_max) {{",
        f"            local_max = vals[{style.index}];",
        "        }",
        "    }",
        "    MPI_Reduce(&local_min, &global_min, 1, MPI_DOUBLE, MPI_MIN, 0, MPI_COMM_WORLD);",
        "    MPI_Reduce(&local_max, &global_max, 1, MPI_DOUBLE, MPI_MAX, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        '        printf("min = %f max = %f\\n", global_min, global_max);',
        "    }",
        "    free(vals);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def histogram(rng: np.random.Generator, style: Style) -> str:
    """Distributed histogram with an element-wise Reduce of bin counts."""
    bins = int(choice(rng, [8, 10, 16, 20]))
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        f"    int bins = {bins};",
        f"    int local_hist[{bins}];",
        f"    int global_hist[{bins}];",
    ]
    body += mpi_prologue(style)
    body += [
        f"    for ({style.index} = 0; {style.index} < bins; {style.index}++) {{",
        f"        local_hist[{style.index}] = 0;",
        "    }",
        f"    for ({style.index} = {style.rank}; {style.index} < {style.count}; "
        f"{style.index} += {style.size}) {{",
        f"        int b = ({style.index} * 13) % bins;",
        "        local_hist[b] = local_hist[b] + 1;",
        "    }",
        "    MPI_Reduce(local_hist, global_hist, bins, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        for ({style.index} = 0; {style.index} < bins; {style.index}++) {{",
        f'            printf("bin %d: %d\\n", {style.index}, global_hist[{style.index}]);',
        "        }",
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def variance(rng: np.random.Generator, style: Style) -> str:
    """Two-pass distributed mean and variance using two Allreduce calls."""
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_sum = 0.0;",
        "    double local_sq = 0.0;",
        "    double total_sum = 0.0;",
        "    double total_sq = 0.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *vals = (double *) malloc(chunk * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        vals[{style.index}] = (double) (({style.rank} + {style.index}) % 10);",
        "    }",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        local_sum += vals[{style.index}];",
        f"        local_sq += vals[{style.index}] * vals[{style.index}];",
        "    }",
        "    MPI_Allreduce(&local_sum, &total_sum, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);",
        "    MPI_Allreduce(&local_sq, &total_sq, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);",
        f"    double mean = total_sum / (double) {style.count};",
        f"    double var = total_sq / (double) {style.count} - mean * mean;",
    ]
    body += print_on_root(style, "var", "variance")
    body += ["    free(vals);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def scan_prefix_sum(rng: np.random.Generator, style: Style) -> str:
    """Prefix sum across ranks with MPI_Scan."""
    body = [
        f"    int {style.rank}, {style.size};",
        f"    int {style.local} = 0;",
        f"    int prefix = 0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    {style.local} = {style.rank} + 1;",
        f"    MPI_Scan(&{style.local}, &prefix, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);",
        f'    printf("rank %d prefix %d\\n", {style.rank}, prefix);',
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)
