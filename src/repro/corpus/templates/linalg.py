"""Templates for distributed linear-algebra programs (row-decomposed)."""

from __future__ import annotations

import numpy as np

from ...utils.rng import choice
from .base import (
    Style,
    assemble,
    headers,
    mpi_epilogue,
    mpi_prologue,
    print_on_root,
    timing_end,
    timing_start,
)


def matrix_vector(rng: np.random.Generator, style: Style) -> str:
    """Row-decomposed matrix-vector multiplication (Bcast + Scatter + Gather)."""
    n = int(choice(rng, [64, 128, 256, 512]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, j;",
        f"    int {style.count} = {n};",
        "    double *A = NULL;",
        "    double *y = NULL;",
        f"    double *x = (double *) malloc({n} * sizeof(double));",
    ]
    body += mpi_prologue(style)
    body += timing_start(style)
    body += [
        f"    int rows = {style.count} / {style.size};",
        f"    double *local_A = (double *) malloc(rows * {style.count} * sizeof(double));",
        "    double *local_y = (double *) malloc(rows * sizeof(double));",
        f"    if ({style.rank} == 0) {{",
        f"        A = (double *) malloc({style.count} * {style.count} * sizeof(double));",
        f"        y = (double *) malloc({style.count} * sizeof(double));",
        f"        for ({style.index} = 0; {style.index} < {style.count} * {style.count}; "
        f"{style.index}++) {{",
        f"            A[{style.index}] = (double) ({style.index} % 7);",
        "        }",
        f"        for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"            x[{style.index}] = 1.0;",
        "        }",
        "    }",
        f"    MPI_Bcast(x, {style.count}, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    MPI_Scatter(A, rows * {style.count}, MPI_DOUBLE, local_A, rows * {style.count}, "
        "MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    for ({style.index} = 0; {style.index} < rows; {style.index}++) {{",
        "        double acc = 0.0;",
        f"        for (j = 0; j < {style.count}; j++) {{",
        f"            acc += local_A[{style.index} * {style.count} + j] * x[j];",
        "        }",
        f"        local_y[{style.index}] = acc;",
        "    }",
        "    MPI_Gather(local_y, rows, MPI_DOUBLE, y, rows, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
    ]
    body += timing_end(style)
    body += print_on_root(style, "y[0]", "y0")
    body += ["    free(local_A);", "    free(local_y);", "    free(x);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def matrix_matrix(rng: np.random.Generator, style: Style) -> str:
    """Row-decomposed matrix-matrix multiplication with Bcast of B."""
    n = int(choice(rng, [32, 48, 64, 96, 128]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, j, k;",
        f"    int {style.count} = {n};",
        "    double *A = NULL;",
        "    double *C = NULL;",
        f"    double *B = (double *) malloc({n} * {n} * sizeof(double));",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int rows = {style.count} / {style.size};",
        f"    double *local_A = (double *) malloc(rows * {style.count} * sizeof(double));",
        f"    double *local_C = (double *) malloc(rows * {style.count} * sizeof(double));",
        f"    if ({style.rank} == 0) {{",
        f"        A = (double *) malloc({style.count} * {style.count} * sizeof(double));",
        f"        C = (double *) malloc({style.count} * {style.count} * sizeof(double));",
        f"        for ({style.index} = 0; {style.index} < {style.count} * {style.count}; "
        f"{style.index}++) {{",
        f"            A[{style.index}] = 1.0;",
        f"            B[{style.index}] = 2.0;",
        "        }",
        "    }",
        f"    MPI_Bcast(B, {style.count} * {style.count}, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    MPI_Scatter(A, rows * {style.count}, MPI_DOUBLE, local_A, rows * {style.count}, "
        "MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    for ({style.index} = 0; {style.index} < rows; {style.index}++) {{",
        f"        for (j = 0; j < {style.count}; j++) {{",
        "            double acc = 0.0;",
        f"            for (k = 0; k < {style.count}; k++) {{",
        f"                acc += local_A[{style.index} * {style.count} + k] * "
        f"B[k * {style.count} + j];",
        "            }",
        f"            local_C[{style.index} * {style.count} + j] = acc;",
        "        }",
        "    }",
        f"    MPI_Gather(local_C, rows * {style.count}, MPI_DOUBLE, C, rows * {style.count}, "
        "MPI_DOUBLE, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "C[0]", "C00")
    body += ["    free(local_A);", "    free(local_C);", "    free(B);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def jacobi_iteration(rng: np.random.Generator, style: Style) -> str:
    """1-D Jacobi relaxation with halo exchange via Sendrecv."""
    n = int(choice(rng, [128, 256, 512, 1024]))
    iters = int(choice(rng, [10, 20, 50]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, it;",
        f"    int {style.count} = {n};",
        f"    int iters = {iters};",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *u = (double *) malloc((chunk + 2) * sizeof(double));",
        "    double *unew = (double *) malloc((chunk + 2) * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk + 2; {style.index}++) {{",
        f"        u[{style.index}] = 0.0;",
        "    }",
        f"    if ({style.rank} == 0) {{",
        "        u[0] = 1.0;",
        "    }",
        f"    if ({style.rank} == {style.size} - 1) {{",
        "        u[chunk + 1] = 1.0;",
        "    }",
        f"    int left = {style.rank} - 1;",
        f"    int right = {style.rank} + 1;",
        "    if (left < 0) {",
        "        left = MPI_PROC_NULL;",
        "    }",
        f"    if (right >= {style.size}) {{",
        "        right = MPI_PROC_NULL;",
        "    }",
        "    for (it = 0; it < iters; it++) {",
        f"        MPI_Sendrecv(&u[1], 1, MPI_DOUBLE, left, {style.tag}, &u[chunk + 1], 1, "
        f"MPI_DOUBLE, right, {style.tag}, MPI_COMM_WORLD, MPI_STATUS_IGNORE);",
        f"        MPI_Sendrecv(&u[chunk], 1, MPI_DOUBLE, right, {style.tag}, &u[0], 1, "
        f"MPI_DOUBLE, left, {style.tag}, MPI_COMM_WORLD, MPI_STATUS_IGNORE);",
        f"        for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"            unew[{style.index}] = 0.5 * (u[{style.index} - 1] + u[{style.index} + 1]);",
        "        }",
        f"        for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"            u[{style.index}] = unew[{style.index}];",
        "        }",
        "    }",
        "    double local_norm = 0.0;",
        "    double global_norm = 0.0;",
        f"    for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"        local_norm += u[{style.index}] * u[{style.index}];",
        "    }",
        "    MPI_Reduce(&local_norm, &global_norm, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "global_norm", "norm")
    body += ["    free(u);", "    free(unew);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def vector_norm(rng: np.random.Generator, style: Style) -> str:
    """Distributed 2-norm of a vector (Allreduce + sqrt)."""
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_sq = 0.0;",
        "    double global_sq = 0.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *v = (double *) malloc(chunk * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        v[{style.index}] = (double) ({style.rank} * chunk + {style.index}) / "
        f"(double) {style.count};",
        "    }",
        f"    for ({style.index} = 0; {style.index} < chunk; {style.index}++) {{",
        f"        local_sq += v[{style.index}] * v[{style.index}];",
        "    }",
        "    MPI_Allreduce(&local_sq, &global_sq, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);",
        "    double norm = sqrt(global_sq);",
    ]
    body += print_on_root(style, "norm", "norm")
    body += ["    free(v);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True, need_math=True), body)


def matrix_transpose(rng: np.random.Generator, style: Style) -> str:
    """Block matrix transpose using Alltoall."""
    n = int(choice(rng, [16, 32, 64]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, j;",
        f"    int {style.count} = {n};",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int rows = {style.count} / {style.size};",
        f"    double *local_A = (double *) malloc(rows * {style.count} * sizeof(double));",
        f"    double *local_T = (double *) malloc(rows * {style.count} * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < rows * {style.count}; {style.index}++) {{",
        f"        local_A[{style.index}] = (double) ({style.rank} * 1000 + {style.index});",
        "    }",
        f"    MPI_Alltoall(local_A, rows * rows, MPI_DOUBLE, local_T, rows * rows, MPI_DOUBLE, "
        "MPI_COMM_WORLD);",
        "    double checksum = 0.0;",
        "    double total = 0.0;",
        f"    for ({style.index} = 0; {style.index} < rows * {style.count}; {style.index}++) {{",
        f"        checksum += local_T[{style.index}];",
        "    }",
        "    MPI_Reduce(&checksum, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "total", "checksum")
    body += ["    free(local_A);", "    free(local_T);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)
