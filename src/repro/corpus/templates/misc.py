"""Miscellaneous domain-decomposition templates: sorting, number theory,
simulation kernels and serial (non-MPI) programs used as pre-training filler.
"""

from __future__ import annotations

import numpy as np

from ...utils.rng import choice
from .base import (
    Style,
    assemble,
    headers,
    mpi_epilogue,
    mpi_prologue,
    print_on_root,
    status_arg,
)


def merge_sort(rng: np.random.Generator, style: Style) -> str:
    """Distributed merge sort: scatter chunks, local insertion sort, gather."""
    n = int(choice(rng, [64, 128, 256, 512]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, j;",
        f"    int {style.count} = {n};",
        f"    int *{style.data} = NULL;",
        "    int *sorted_all = NULL;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    int *local = (int *) malloc(chunk * sizeof(int));",
        f"    if ({style.rank} == 0) {{",
        f"        {style.data} = (int *) malloc({style.count} * sizeof(int));",
        f"        sorted_all = (int *) malloc({style.count} * sizeof(int));",
        f"        for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
        f"            {style.data}[{style.index}] = ({style.count} - {style.index}) % 97;",
        "        }",
        "    }",
        f"    MPI_Scatter({style.data}, chunk, MPI_INT, local, chunk, MPI_INT, 0, "
        "MPI_COMM_WORLD);",
        f"    for ({style.index} = 1; {style.index} < chunk; {style.index}++) {{",
        f"        int key = local[{style.index}];",
        f"        j = {style.index} - 1;",
        "        while (j >= 0 && local[j] > key) {",
        "            local[j + 1] = local[j];",
        "            j = j - 1;",
        "        }",
        "        local[j + 1] = key;",
        "    }",
        "    MPI_Gather(local, chunk, MPI_INT, sorted_all, chunk, MPI_INT, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f'        printf("first chunk head %d\\n", sorted_all[0]);',
        "    }",
        "    free(local);",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def odd_even_sort(rng: np.random.Generator, style: Style) -> str:
    """Odd-even transposition sort of per-rank values."""
    status_decl, status = status_arg(style)
    body = [
        f"    int {style.rank}, {style.size}, phase;",
        "    int my_value, partner, other;",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        f"    my_value = ({style.rank} * 37 + 11) % 100;",
        f"    for (phase = 0; phase < {style.size}; phase++) {{",
        "        if (phase % 2 == 0) {",
        f"            partner = ({style.rank} % 2 == 0) ? {style.rank} + 1 : {style.rank} - 1;",
        "        } else {",
        f"            partner = ({style.rank} % 2 == 0) ? {style.rank} - 1 : {style.rank} + 1;",
        "        }",
        f"        if (partner < 0 || partner >= {style.size}) {{",
        "            continue;",
        "        }",
        f"        MPI_Sendrecv(&my_value, 1, MPI_INT, partner, {style.tag}, &other, 1, MPI_INT, "
        f"partner, {style.tag}, MPI_COMM_WORLD, {status});",
        f"        if ({style.rank} < partner) {{",
        "            if (other < my_value) {",
        "                my_value = other;",
        "            }",
        "        } else {",
        "            if (other > my_value) {",
        "                my_value = other;",
        "            }",
        "        }",
        "    }",
        f'    printf("rank %d sorted value %d\\n", {style.rank}, my_value);',
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def factorial(rng: np.random.Generator, style: Style) -> str:
    """Distributed factorial: each rank multiplies its strided slice, then a
    product reduction."""
    n = int(choice(rng, [10, 12, 15, 20]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_prod = 1.0;",
        "    double total_prod = 1.0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    for ({style.index} = {style.rank} + 1; {style.index} <= {style.count}; "
        f"{style.index} += {style.size}) {{",
        f"        local_prod = local_prod * (double) {style.index};",
        "    }",
        "    MPI_Reduce(&local_prod, &total_prod, 1, MPI_DOUBLE, MPI_PROD, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "total_prod", "factorial")
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def fibonacci(rng: np.random.Generator, style: Style) -> str:
    """Each rank computes one Fibonacci number; results gathered at root."""
    base = int(choice(rng, [10, 15, 20, 25]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        "    long my_fib = 0;",
        "    long *all_fib = NULL;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    int target = {base} + {style.rank};",
        "    long a = 0;",
        "    long b = 1;",
        f"    for ({style.index} = 0; {style.index} < target; {style.index}++) {{",
        "        long tmp = a + b;",
        "        a = b;",
        "        b = tmp;",
        "    }",
        "    my_fib = a;",
        f"    if ({style.rank} == 0) {{",
        f"        all_fib = (long *) malloc({style.size} * sizeof(long));",
        "    }",
        "    MPI_Gather(&my_fib, 1, MPI_LONG, all_fib, 1, MPI_LONG, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        for ({style.index} = 0; {style.index} < {style.size}; {style.index}++) {{",
        f'            printf("fib[%d] = %ld\\n", {base} + {style.index}, all_fib[{style.index}]);',
        "        }",
        "        free(all_fib);",
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def prime_count(rng: np.random.Generator, style: Style) -> str:
    """Count primes below N with a strided trial-division loop and Reduce."""
    n = int(choice(rng, [1000, 5000, 10000]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, j;",
        f"    int {style.count} = {n};",
        "    int local_count = 0;",
        "    int total_count = 0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    for ({style.index} = 2 + {style.rank}; {style.index} < {style.count}; "
        f"{style.index} += {style.size}) {{",
        "        int is_prime = 1;",
        f"        for (j = 2; j * j <= {style.index}; j++) {{",
        f"            if ({style.index} % j == 0) {{",
        "                is_prime = 0;",
        "                break;",
        "            }",
        "        }",
        "        if (is_prime == 1) {",
        "            local_count = local_count + 1;",
        "        }",
        "    }",
        "    MPI_Reduce(&local_count, &total_count, 1, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f'        printf("primes below %d: %d\\n", {style.count}, total_count);',
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style), body)


def random_walk(rng: np.random.Generator, style: Style) -> str:
    """Independent random walkers per rank with a final max-displacement reduce."""
    steps = int(choice(rng, [100, 500, 1000]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int steps = {steps};",
        "    int position = 0;",
        "    int max_pos = 0;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    srand({style.rank} * 7 + 3);",
        f"    for ({style.index} = 0; {style.index} < steps; {style.index}++) {{",
        "        if (rand() % 2 == 0) {",
        "            position = position + 1;",
        "        } else {",
        "            position = position - 1;",
        "        }",
        "    }",
        "    if (position < 0) {",
        "        position = -position;",
        "    }",
        "    MPI_Reduce(&position, &max_pos, 1, MPI_INT, MPI_MAX, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        '        printf("max displacement %d\\n", max_pos);',
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def sum_reduce_gather(rng: np.random.Generator, style: Style) -> str:
    """Sum computed twice — once with Reduce, once with Gather + root loop —
    mirroring the paper's "Sum (Reduce & Gather)" benchmark program."""
    n = style.problem_size
    body = [
        f"    int {style.rank}, {style.size}, {style.index};",
        f"    int {style.count} = {n};",
        "    double local_sum = 0.0;",
        "    double reduce_sum = 0.0;",
        "    double gather_sum = 0.0;",
        "    double *partials = NULL;",
    ]
    body += mpi_prologue(style)
    body += [
        f"    for ({style.index} = {style.rank}; {style.index} < {style.count}; "
        f"{style.index} += {style.size}) {{",
        f"        local_sum += (double) {style.index};",
        "    }",
        "    MPI_Reduce(&local_sum, &reduce_sum, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        partials = (double *) malloc({style.size} * sizeof(double));",
        "    }",
        "    MPI_Gather(&local_sum, 1, MPI_DOUBLE, partials, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);",
        f"    if ({style.rank} == 0) {{",
        f"        for ({style.index} = 0; {style.index} < {style.size}; {style.index}++) {{",
        f"            gather_sum += partials[{style.index}];",
        "        }",
        f'        printf("reduce %f gather %f\\n", reduce_sum, gather_sum);',
        "        free(partials);",
        "    }",
    ]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def heat_1d(rng: np.random.Generator, style: Style) -> str:
    """Explicit 1-D heat equation with blocking halo exchange (Send/Recv)."""
    status_decl, status = status_arg(style)
    n = int(choice(rng, [100, 200, 400]))
    steps = int(choice(rng, [10, 25, 50]))
    body = [
        f"    int {style.rank}, {style.size}, {style.index}, step;",
        f"    int {style.count} = {n};",
        f"    int steps = {steps};",
        "    double alpha = 0.1;",
    ]
    body += status_decl
    body += mpi_prologue(style)
    body += [
        f"    int chunk = {style.count} / {style.size};",
        "    double *t_old = (double *) malloc((chunk + 2) * sizeof(double));",
        "    double *t_new = (double *) malloc((chunk + 2) * sizeof(double));",
        f"    for ({style.index} = 0; {style.index} < chunk + 2; {style.index}++) {{",
        f"        t_old[{style.index}] = 20.0;",
        "    }",
        f"    if ({style.rank} == 0) {{",
        "        t_old[0] = 100.0;",
        "    }",
        "    for (step = 0; step < steps; step++) {",
        f"        if ({style.rank} > 0) {{",
        f"            MPI_Send(&t_old[1], 1, MPI_DOUBLE, {style.rank} - 1, {style.tag}, "
        "MPI_COMM_WORLD);",
        f"            MPI_Recv(&t_old[0], 1, MPI_DOUBLE, {style.rank} - 1, {style.tag}, "
        f"MPI_COMM_WORLD, {status});",
        "        }",
        f"        if ({style.rank} < {style.size} - 1) {{",
        f"            MPI_Recv(&t_old[chunk + 1], 1, MPI_DOUBLE, {style.rank} + 1, {style.tag}, "
        f"MPI_COMM_WORLD, {status});",
        f"            MPI_Send(&t_old[chunk], 1, MPI_DOUBLE, {style.rank} + 1, {style.tag}, "
        "MPI_COMM_WORLD);",
        "        }",
        f"        for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"            t_new[{style.index}] = t_old[{style.index}] + alpha * "
        f"(t_old[{style.index} - 1] - 2.0 * t_old[{style.index}] + t_old[{style.index} + 1]);",
        "        }",
        f"        for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"            t_old[{style.index}] = t_new[{style.index}];",
        "        }",
        "    }",
        "    double local_heat = 0.0;",
        "    double total_heat = 0.0;",
        f"    for ({style.index} = 1; {style.index} <= chunk; {style.index}++) {{",
        f"        local_heat += t_old[{style.index}];",
        "    }",
        "    MPI_Reduce(&local_heat, &total_heat, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);",
    ]
    body += print_on_root(style, "total_heat", "heat")
    body += ["    free(t_old);", "    free(t_new);"]
    body += mpi_epilogue(style)
    return assemble(headers(style, need_stdlib=True), body)


def serial_program(rng: np.random.Generator, style: Style) -> str:
    """A serial (non-MPI) numerical program.

    These never enter the MPI dataset (they fail the MPI-presence filter) but
    are used as generic-C pre-training filler — the stand-in for SPT-Code's
    CodeSearchNet pre-training corpus — and exercise the corpus exclusion path.
    """
    n = style.problem_size
    kind = choice(rng, ["sum", "sort", "poly"])
    body = [
        f"    int {style.index};",
        f"    int {style.count} = {n};",
        "    double acc = 0.0;",
    ]
    if kind == "sum":
        body += [
            f"    for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
            f"        acc += (double) {style.index} * 0.5;",
            "    }",
        ]
    elif kind == "sort":
        body += [
            f"    double vals[100];",
            "    int j;",
            f"    for ({style.index} = 0; {style.index} < 100; {style.index}++) {{",
            f"        vals[{style.index}] = (double) ((100 - {style.index}) % 13);",
            "    }",
            f"    for ({style.index} = 1; {style.index} < 100; {style.index}++) {{",
            f"        double key = vals[{style.index}];",
            f"        j = {style.index} - 1;",
            "        while (j >= 0 && vals[j] > key) {",
            "            vals[j + 1] = vals[j];",
            "            j = j - 1;",
            "        }",
            "        vals[j + 1] = key;",
            "    }",
            "    acc = vals[0];",
        ]
    else:
        body += [
            "    double x = 0.37;",
            f"    for ({style.index} = 0; {style.index} < {style.count}; {style.index}++) {{",
            "        acc = acc * x + 1.0;",
            "    }",
        ]
    body += [
        '    printf("acc = %f\\n", acc);',
        "    return 0;",
    ]
    return assemble(["#include <stdio.h>"], body)
