"""Shared machinery for synthetic MPI program templates.

Each template is a callable ``(rng, style) -> str`` that emits a complete C
program (a ``main`` function plus headers) performing one domain-decomposition
computation with MPI.  Templates draw identifier names, problem sizes,
datatypes and optional code fragments from :class:`Style`, so repeated
invocations of the same family produce lexically diverse programs — the
stand-in for the natural diversity of mined GitHub code.

All emitted code must parse under :func:`repro.clang.parser.parses_cleanly`;
the synthesis pipeline asserts this for every generated file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...utils.rng import choice

#: Pools of identifier spellings seen in real MPI codes; one spelling per
#: program is picked for each role.
_RANK_NAMES = ["rank", "my_rank", "myid", "me", "world_rank", "pid"]
_SIZE_NAMES = ["size", "num_procs", "nprocs", "world_size", "numprocs", "np"]
_DATA_NAMES = ["data", "a", "x", "values", "buffer", "arr", "vec", "local_data"]
_RESULT_NAMES = ["result", "total", "global_sum", "answer", "out", "acc"]
_LOCAL_NAMES = ["local", "local_sum", "partial", "my_sum", "local_result", "psum"]
_INDEX_NAMES = ["i", "j", "k", "idx", "ii"]
_COUNT_NAMES = ["n", "N", "count", "num_elements", "len", "total_n"]

#: Problem sizes drawn per program.
_SIZES = [64, 100, 128, 200, 256, 400, 512, 1000, 1024, 2048, 4096, 10000]

#: Tags used for point-to-point messages.
_TAGS = [0, 1, 7, 10, 42, 99, 100, 123]


@dataclass
class Style:
    """Per-program stylistic choices shared by a template's fragments."""

    rank: str = "rank"
    size: str = "size"
    data: str = "data"
    result: str = "result"
    local: str = "local"
    index: str = "i"
    count: str = "n"
    problem_size: int = 1000
    tag: int = 0
    dtype_c: str = "double"
    dtype_mpi: str = "MPI_DOUBLE"
    use_status_object: bool = False
    print_result: bool = True
    time_it: bool = False
    use_return_zero: bool = True
    extra_headers: list[str] = field(default_factory=list)

    @property
    def fmt(self) -> str:
        """printf conversion for the element datatype."""
        return "%f" if self.dtype_c in ("double", "float") else "%d"


def random_style(rng: np.random.Generator) -> Style:
    """Draw a :class:`Style` for one program."""
    use_int = bool(rng.random() < 0.3)
    return Style(
        rank=choice(rng, _RANK_NAMES),
        size=choice(rng, _SIZE_NAMES),
        data=choice(rng, _DATA_NAMES),
        result=choice(rng, _RESULT_NAMES),
        local=choice(rng, _LOCAL_NAMES),
        index=choice(rng, _INDEX_NAMES),
        count=choice(rng, _COUNT_NAMES),
        problem_size=int(choice(rng, _SIZES)),
        tag=int(choice(rng, _TAGS)),
        dtype_c="int" if use_int else "double",
        dtype_mpi="MPI_INT" if use_int else "MPI_DOUBLE",
        use_status_object=bool(rng.random() < 0.4),
        print_result=bool(rng.random() < 0.8),
        time_it=bool(rng.random() < 0.25),
        use_return_zero=bool(rng.random() < 0.9),
    )


def headers(style: Style, *, need_stdlib: bool = False, need_math: bool = False) -> list[str]:
    """Standard include block for a generated program."""
    lines = ["#include <stdio.h>"]
    if need_stdlib:
        lines.append("#include <stdlib.h>")
    if need_math:
        lines.append("#include <math.h>")
    lines.extend(style.extra_headers)
    lines.append("#include <mpi.h>")
    return lines


def mpi_prologue(style: Style) -> list[str]:
    """The canonical Init / Comm_rank / Comm_size prologue."""
    return [
        "    MPI_Init(&argc, &argv);",
        f"    MPI_Comm_rank(MPI_COMM_WORLD, &{style.rank});",
        f"    MPI_Comm_size(MPI_COMM_WORLD, &{style.size});",
    ]


def mpi_epilogue(style: Style) -> list[str]:
    """The canonical Finalize / return epilogue."""
    lines = ["    MPI_Finalize();"]
    if style.use_return_zero:
        lines.append("    return 0;")
    return lines


def timing_start(style: Style) -> list[str]:
    """Optional MPI_Wtime start fragment."""
    if not style.time_it:
        return []
    return ["    double t_start = MPI_Wtime();"]


def timing_end(style: Style) -> list[str]:
    """Optional MPI_Wtime end + report fragment."""
    if not style.time_it:
        return []
    return [
        "    double t_end = MPI_Wtime();",
        f"    if ({style.rank} == 0) {{",
        '        printf("elapsed %f\\n", t_end - t_start);',
        "    }",
    ]


def print_on_root(style: Style, expr: str, label: str | None = None) -> list[str]:
    """A ``rank == 0`` guarded printf of ``expr``."""
    if not style.print_result:
        return []
    label = label or "result"
    return [
        f"    if ({style.rank} == 0) {{",
        f'        printf("{label} = {style.fmt}\\n", {expr});',
        "    }",
    ]


def assemble(headers_lines: list[str], body_lines: list[str]) -> str:
    """Join headers and a main body into a full program text."""
    lines = list(headers_lines)
    lines.append("")
    lines.append("int main(int argc, char **argv) {")
    lines.extend(body_lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


def status_arg(style: Style) -> tuple[list[str], str]:
    """Return (declaration lines, argument spelling) for an MPI_Status."""
    if style.use_status_object:
        return (["    MPI_Status status;"], "&status")
    return ([], "MPI_STATUS_IGNORE")
