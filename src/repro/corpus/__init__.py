"""MPICodeCorpus construction: simulated mining, synthesis, and statistics."""

from .families import FAMILIES, MPI_FAMILIES, ProgramFamily, family_by_name, family_names
from .mining import MiningConfig, Repository, SourceFile, generate_repositories, mine_c_programs
from .statistics import (
    CorpusStatistics,
    code_length_distribution,
    common_core_counts,
    files_with_init_and_finalize,
    init_finalize_ratio_histogram,
    is_exponentially_decreasing,
    median_parallel_ratio,
    mpi_function_histogram,
    summarize,
)
from .synthesis import Corpus, CorpusBuildReport, CorpusProgram, build_corpus, default_corpus

__all__ = [
    "FAMILIES",
    "MPI_FAMILIES",
    "ProgramFamily",
    "family_by_name",
    "family_names",
    "MiningConfig",
    "Repository",
    "SourceFile",
    "generate_repositories",
    "mine_c_programs",
    "Corpus",
    "CorpusBuildReport",
    "CorpusProgram",
    "build_corpus",
    "default_corpus",
    "CorpusStatistics",
    "code_length_distribution",
    "common_core_counts",
    "files_with_init_and_finalize",
    "init_finalize_ratio_histogram",
    "is_exponentially_decreasing",
    "median_parallel_ratio",
    "mpi_function_histogram",
    "summarize",
]
