"""Named, versioned model entries with aliases, hot-swap and leases.

The serving stack used to be hard-wired to exactly one in-process model
constructed before the server started.  :class:`ModelRegistry` replaces that
with a lifecycle:

* **register** a model under a *name*, backed either by a checkpoint
  directory (:mod:`repro.model.checkpoints` — loaded lazily on first use) or
  by an already-constructed in-memory pipeline;
* every registered model carries a content-hash **revision**
  (:func:`repro.model.checkpoints.model_fingerprint`, recorded in the
  checkpoint manifest at save time), so ``name@revision`` is a stable
  identity: two registrations of byte-identical weights share it, a retrained
  checkpoint gets a new one — which is exactly what the serving cache keys on
  to never serve a stale entry across a hot-swap;
* **aliases** point at names; the ``default`` alias is what requests that
  don't pin a model resolve to.  :meth:`ModelRegistry.swap` flips an alias
  atomically: requests that resolved before the flip keep their **lease** on
  the old entry and finish on it (drained, never dropped), requests arriving
  after the flip resolve to the new entry;
* **unload** is ref-counted through those leases: an entry with in-flight
  requests drains first and releases its weights only when the last lease is
  returned.  In-memory entries (no checkpoint to reload from) refuse to
  unload.

Resolution accepts an alias, a bare name, or a fully-pinned
``name@revision`` (a canary client can insist on the exact version it was
validated against; a stale pin fails fast instead of silently serving the
new weights).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..model.checkpoints import read_manifest
from ..model.generation import GenerationConfig

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from ..mpirical.assistant import MPIAssistant
    from ..mpirical.pipeline import MPIRical

#: The alias requests resolve through when they don't pin a model.
DEFAULT_ALIAS = "default"

#: The name an anonymous in-process model is registered under.
DEFAULT_MODEL_NAME = "default"

#: The tiny program a warm-up decode runs to prime the inference caches
#: (dtype-cast parameter copies, mask/memo caches) before traffic arrives.
WARMUP_SOURCE = "int main() { return 0; }\n"


class RegistryError(LookupError):
    """A model reference that cannot be resolved or an invalid transition.

    ``kind`` is machine-readable: ``"unknown"`` for names/aliases/revisions
    that don't resolve (the HTTP layer answers 422), ``"conflict"`` for
    invalid lifecycle transitions such as unloading an in-memory model (409).
    """

    def __init__(self, message: str, *, kind: str = "unknown") -> None:
        super().__init__(message)
        self.kind = kind


def split_model_spec(spec: str) -> tuple[str, str | None]:
    """Split ``"name"`` / ``"name@revision"`` into its parts."""
    name, sep, revision = spec.partition("@")
    return name, (revision if sep else None)


class ModelEntry:
    """One registered model: a source, a revision, and lifecycle state.

    Thread-safe; the entry lock serialises load/unload/lease transitions,
    while the (slow) checkpoint load itself runs outside it so concurrent
    resolvers of an already-loaded entry are never blocked behind a load.
    """

    def __init__(self, name: str, *, source: Path | None = None,
                 mpirical: "MPIRical | None" = None,
                 revision: str | None = None) -> None:
        if (source is None) == (mpirical is None):
            raise ValueError("a ModelEntry is backed by exactly one of a "
                             "checkpoint directory or an in-memory model")
        self.name = name
        self.source = source
        self._lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._mpirical = mpirical
        self._assistant: "MPIAssistant | None" = None
        self._revision = revision
        self._warmed = False
        self._leases = 0
        self._draining = False
        self.requests_served = 0
        self.loaded_at: float | None = time.time() if mpirical else None

    # ---------------------------------------------------------------- state

    @property
    def loaded(self) -> bool:
        return self._mpirical is not None

    @property
    def revision(self) -> str | None:
        """Content-hash revision; known pre-load for manifest checkpoints."""
        return self._revision

    @property
    def identity(self) -> str:
        """The ``name@revision`` string cache keys and responses carry."""
        revision = self._revision or "unloaded"
        return f"{self.name}@{revision}"

    @property
    def leases(self) -> int:
        with self._lock:
            return self._leases

    # ------------------------------------------------------------ lifecycle

    def ensure_loaded(self, *, warm_up: bool = False) -> "MPIRical":
        """Load the entry's model if needed and return it.

        Loading a checkpoint verifies its manifest
        (:class:`repro.model.checkpoints.CheckpointError` on mismatch) and
        fixes the revision from content for pre-manifest checkpoints.
        ``warm_up`` runs one short greedy decode so the first real request
        doesn't pay for dtype-cast caches and memoised masks — once per
        load, not per call.
        """
        with self._load_lock:
            # Snapshot under the state lock: a concurrent unload() (which
            # takes only the state lock) must never turn this read into
            # None after the is-loaded check.  Returning the snapshotted
            # pipeline is safe — Python keeps it alive for this decode.
            with self._lock:
                mpirical = self._mpirical
            if mpirical is None:
                from ..mpirical.pipeline import MPIRical

                mpirical = MPIRical.load(self.source)
                # The load just verified content against the manifest
                # revision, so reuse it instead of re-hashing every
                # parameter; only pre-manifest checkpoints fingerprint here.
                manifest = read_manifest(self.source)
                revision = (manifest.revision if manifest is not None
                            else mpirical.fingerprint())
                with self._lock:
                    self._revision = revision
                    self._mpirical = mpirical
                    self._draining = False
                    self._warmed = False
                    self.loaded_at = time.time()
            if warm_up and not self._warmed:
                mpirical.predict_code(
                    WARMUP_SOURCE, generation=GenerationConfig(max_length=4))
                self._warmed = True
        return mpirical

    def assistant(self) -> "MPIAssistant":
        """The entry's advising facade (created on first use, identity-tagged)."""
        from ..mpirical.assistant import MPIAssistant

        mpirical = self.ensure_loaded()
        with self._lock:
            if self._assistant is None or self._assistant.mpirical is not mpirical:
                self._assistant = MPIAssistant(mpirical, identity=self.identity)
            return self._assistant

    def acquire(self) -> "ModelEntry":
        """Take a lease for one in-flight decode; pairs with :meth:`release`.

        A leased entry survives alias flips and deferred unloads: the decode
        it is serving always completes on the weights it started with.
        """
        with self._lock:
            if self._mpirical is None:
                raise RegistryError(
                    f"model {self.name!r} is not loaded", kind="conflict")
            self._leases += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._leases = max(0, self._leases - 1)
            if self._draining and self._leases == 0:
                self._unload_locked()

    def record_request(self) -> None:
        with self._lock:
            self.requests_served += 1

    def unload(self) -> bool:
        """Release the model's weights; returns True once actually unloaded.

        With leases outstanding the entry *drains*: it keeps serving its
        in-flight requests and unloads when the last lease is released
        (returning False now).  In-memory entries have no checkpoint to
        reload from, so unloading them would brick the name — refused with a
        ``conflict`` :class:`RegistryError`.
        """
        with self._lock:
            if self.source is None:
                raise RegistryError(
                    f"model {self.name!r} is in-memory (no checkpoint to "
                    f"reload from) and cannot be unloaded", kind="conflict")
            if self._mpirical is None:
                return True
            if self._leases > 0:
                self._draining = True
                return False
            self._unload_locked()
            return True

    def _unload_locked(self) -> None:
        self._mpirical = None
        self._assistant = None
        self._draining = False
        self._warmed = False
        self.loaded_at = None

    # ------------------------------------------------------------ reporting

    def info(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "revision": self._revision,
                "loaded": self._mpirical is not None,
                "source": str(self.source) if self.source else "in-memory",
                "leases": self._leases,
                "draining": self._draining,
                "requests_served": self.requests_served,
            }


class ModelRegistry:
    """The named-model catalogue behind the serving stack.

    >>> registry = ModelRegistry()
    >>> registry.register("pi-advisor", "checkpoints/v1", make_default=True)
    >>> entry = registry.resolve(None)            # the default alias
    >>> registry.register("pi-advisor-v2", "checkpoints/v2")
    >>> registry.swap("pi-advisor-v2")            # atomic alias flip
    """

    def __init__(self, model: "MPIRical | MPIAssistant | None" = None, *,
                 name: str = DEFAULT_MODEL_NAME, warm_up: bool = False,
                 root: "str | Path | None" = None) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}
        self._aliases: dict[str, str] = {}
        self.warm_up = warm_up
        #: Durable state directory: checkpoints live under it by convention
        #: and the serving job WAL (:mod:`repro.serving.joblog`) is written to
        #: ``<root>/jobs/``.  ``None`` keeps the registry fully in-memory —
        #: everything not backed by a checkpoint dies with the process.
        self.root = Path(root) if root is not None else None
        if model is not None:
            self.register(name, model, make_default=True)

    # ----------------------------------------------------------- registration

    def register(self, name: str,
                 source: "str | Path | MPIRical | MPIAssistant", *,
                 make_default: bool = False) -> ModelEntry:
        """Register (or re-register) ``name``.

        ``source`` is a checkpoint directory (loaded lazily; its manifest
        supplies the revision up front) or an in-memory
        :class:`~repro.mpirical.pipeline.MPIRical` /
        :class:`~repro.mpirical.assistant.MPIAssistant` (fingerprinted now).
        Re-registering an existing name replaces the entry atomically — a new
        checkpoint under the same name gets a new revision, and requests
        in-flight on the old entry finish on it through their leases.
        """
        from ..mpirical.assistant import MPIAssistant
        from ..mpirical.pipeline import MPIRical

        if not name or "@" in name or "/" in name:
            raise ValueError(f"invalid model name {name!r} "
                             "(must be non-empty, no '@' or '/')")
        if isinstance(source, MPIAssistant):
            source = source.mpirical
        if isinstance(source, MPIRical):
            entry = ModelEntry(name, mpirical=source,
                               revision=source.fingerprint())
        else:
            path = Path(source)
            if not path.is_dir():
                raise RegistryError(
                    f"checkpoint directory {path} does not exist")
            manifest = read_manifest(path)
            entry = ModelEntry(
                name, source=path,
                revision=manifest.revision if manifest else None)
        with self._lock:
            self._entries[name] = entry
            if make_default or DEFAULT_ALIAS not in self._aliases:
                self._aliases[DEFAULT_ALIAS] = name
        return entry

    def set_alias(self, alias: str, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise RegistryError(f"unknown model {name!r}")
            self._aliases[alias] = name

    # ------------------------------------------------------------- resolution

    def get(self, name: str) -> ModelEntry:
        """The entry registered under ``name`` (no alias indirection)."""
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(f"unknown model {name!r}")
        return entry

    def resolve(self, spec: str | None) -> ModelEntry:
        """Resolve a request's model reference to a **loaded** entry.

        ``spec`` may be None (the ``default`` alias), an alias, a bare name,
        or ``name@revision`` — the pinned form additionally checks that the
        entry's current revision still matches, so a canary that validated
        against one version can never silently receive another.
        """
        spec = spec if spec is not None else DEFAULT_ALIAS
        name, revision = split_model_spec(spec)
        with self._lock:
            resolved = self._aliases.get(name, name)
            entry = self._entries.get(resolved)
        if entry is None:
            known = ", ".join(sorted(self.names())) or "none registered"
            raise RegistryError(
                f"unknown model {spec!r} (known models: {known})")
        entry.ensure_loaded(warm_up=self.warm_up)
        if revision is not None and revision != entry.revision:
            raise RegistryError(
                f"model {name!r} is at revision {entry.revision!r}, "
                f"not the requested {revision!r} — the pinned version was "
                f"replaced or never existed")
        return entry

    # -------------------------------------------------------------- lifecycle

    def load(self, name: str, *, warm_up: bool | None = None) -> ModelEntry:
        """Eagerly load (and optionally warm up) a registered model."""
        entry = self.get(name)
        entry.ensure_loaded(
            warm_up=self.warm_up if warm_up is None else warm_up)
        return entry

    def unload(self, name: str) -> bool:
        """Ref-counted unload; see :meth:`ModelEntry.unload`."""
        return self.get(name).unload()

    def swap(self, name: str, *, alias: str = DEFAULT_ALIAS) -> tuple[str, str]:
        """Atomically point ``alias`` at ``name``; returns old/new identities.

        The target is loaded *before* the flip (a swap must never route
        traffic onto a cold or broken checkpoint), and the flip itself is one
        dictionary store under the registry lock: every request resolving
        after it sees the new entry, every request that resolved before keeps
        its lease on the old one and completes there — drained, not dropped.
        """
        target = self.get(name)
        target.ensure_loaded(warm_up=self.warm_up)
        with self._lock:
            previous_name = self._aliases.get(alias)
            previous = self._entries.get(previous_name) if previous_name else None
            self._aliases[alias] = name
        return (previous.identity if previous is not None else "",
                target.identity)

    # -------------------------------------------------------------- reporting

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def aliases(self) -> dict[str, str]:
        with self._lock:
            return dict(self._aliases)

    def default_entry(self) -> ModelEntry | None:
        with self._lock:
            name = self._aliases.get(DEFAULT_ALIAS)
            return self._entries.get(name) if name else None

    def default_identity(self) -> str | None:
        entry = self.default_entry()
        return entry.identity if entry is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries or name in self._aliases

    def snapshot(self) -> dict[str, Any]:
        """Registry state for ``/healthz``, ``/metrics`` and ``/v1/models``."""
        with self._lock:
            entries = list(self._entries.values())
            aliases = dict(self._aliases)
        default = aliases.get(DEFAULT_ALIAS)
        return {
            "default": next((e.identity for e in entries if e.name == default),
                            None),
            "aliases": aliases,
            "models": [entry.info() for entry in
                       sorted(entries, key=lambda e: e.name)],
            # Which durable-state replica this registry owns — in the pool
            # topology every worker has its own root under the shared pool
            # directory, and this is how an operator (or the router's
            # aggregated health view) tells the replicas apart.
            "root": str(self.root) if self.root is not None else None,
        }
