"""repro.registry — model lifecycle: versioned entries, aliases, hot-swap.

``repro.registry.registry``  :class:`ModelRegistry` / :class:`ModelEntry` /
                             :class:`RegistryError` — named models backed by
                             :mod:`repro.model.checkpoints` artifacts with
                             content-hash revisions, lazy loading, warm-up,
                             lease-based draining and atomic alias flips.

Quick start
-----------
>>> from repro.registry import ModelRegistry
>>> registry = ModelRegistry()
>>> registry.register("advisor", "checkpoints/v1", make_default=True)
>>> service = InferenceService(registry)          # repro.serving
>>> registry.register("advisor-v2", "checkpoints/v2")
>>> registry.swap("advisor-v2")                   # hot-swap, drains in-flight
"""

from .registry import (
    DEFAULT_ALIAS,
    DEFAULT_MODEL_NAME,
    ModelEntry,
    ModelRegistry,
    RegistryError,
    split_model_spec,
)

__all__ = [
    "DEFAULT_ALIAS",
    "DEFAULT_MODEL_NAME",
    "ModelEntry",
    "ModelRegistry",
    "RegistryError",
    "split_model_spec",
]
