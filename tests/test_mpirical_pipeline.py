"""Integration tests for the MPI-RICAL pipeline and the assistant API.

These use the session-scoped ``tiny_model`` fixture (one epoch, tiny
Transformer) — they validate the plumbing end to end, not model quality.
Quality is measured by the benchmark harness.
"""

import numpy as np

from repro.dataset.removal import remove_mpi_calls
from repro.mpirical import MPIAssistant, MPIRical
from repro.mpirical.pipeline import PredictionResult


class TestTraining:
    def test_history_has_requested_epochs(self, tiny_model):
        assert len(tiny_model.history.epochs) == tiny_model.config.training.epochs

    def test_vocabulary_covers_mpi_functions(self, tiny_model):
        assert "MPI_Init" in tiny_model.encoder.vocab
        assert "MPI_Finalize" in tiny_model.encoder.vocab

    def test_losses_are_finite(self, tiny_model):
        for metrics in tiny_model.history.epochs:
            assert np.isfinite(metrics.train_loss)
            assert np.isfinite(metrics.validation_loss)


class TestPrediction:
    def test_predict_code_returns_result(self, tiny_model, small_dataset):
        example = small_dataset.splits.test[0]
        result = tiny_model.predict_code(example.source_code, example.source_xsbt)
        assert isinstance(result, PredictionResult)
        assert isinstance(result.generated_code, str)
        assert isinstance(result.generated_tokens, list)

    def test_predict_example_packages_reference(self, tiny_model, small_dataset):
        example = small_dataset.splits.test[0]
        prediction = tiny_model.predict_example(example)
        assert prediction.reference_code == example.target_code
        assert prediction.reference_tokens

    def test_evaluate_produces_all_metrics(self, tiny_model, small_dataset):
        evaluation = tiny_model.evaluate(small_dataset.splits.test, limit=2)
        table = evaluation.as_dict()
        for key in ("M-F1", "MCC-F1", "BLEU", "Meteor", "Rouge-l", "ACC"):
            assert key in table
            assert 0.0 <= table[key] <= 1.0
        assert evaluation.num_examples == 2


class TestPersistence:
    def test_save_and_load_preserve_predictions(self, tiny_model, small_dataset, tmp_path):
        example = small_dataset.splits.test[0]
        before = tiny_model.predict_tokens(example.source_code, example.source_xsbt)
        tiny_model.save(tmp_path / "model")
        restored = MPIRical.load(tmp_path / "model", tiny_model.config)
        after = restored.predict_tokens(example.source_code, example.source_xsbt)
        assert before == after


class TestAssistant:
    def test_advise_returns_session(self, tiny_model, pi_source):
        assistant = MPIAssistant(tiny_model)
        stripped = remove_mpi_calls(pi_source).stripped_code
        session = assistant.advise(stripped)
        assert isinstance(session.summary(), str)
        for advice in session.advice:
            assert advice.confidence in ("high", "medium")

    def test_advise_tolerates_incomplete_code(self, tiny_model):
        assistant = MPIAssistant(tiny_model)
        session = assistant.advise("int main(int argc, char **argv) {\n    int rank\n")
        assert isinstance(session.advice, list)
        assert session.parse_diagnostics  # the missing ';' is reported

    def test_rewrite_applies_all_advice(self, tiny_model, pi_source):
        assistant = MPIAssistant(tiny_model)
        stripped = remove_mpi_calls(pi_source).stripped_code
        rewritten = assistant.rewrite(stripped)
        assert isinstance(rewritten, str)
        assert len(rewritten.splitlines()) >= len(stripped.splitlines())

    def test_advise_functions_lists_names(self, tiny_model, pi_source):
        assistant = MPIAssistant(tiny_model)
        stripped = remove_mpi_calls(pi_source).stripped_code
        names = assistant.advise_functions(stripped)
        assert all(name.startswith("MPI_") for name in names)
