"""Hot-swap differential + cache revision isolation + batch job store.

The acceptance bar for the lifecycle redesign (ISSUE 5):

* concurrent advise traffic across a ``swap`` loses **zero** requests;
* every response echoes the ``model@revision`` that actually served it;
* post-swap responses never come from the pre-swap cache.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from types import SimpleNamespace

import pytest

from repro.api import AdviseRequest, ApiError
from repro.model.generation import GenerationConfig
from repro.mpirical import MPIRical
from repro.registry import ModelRegistry
from repro.serving import InferenceService, JobStore, LRUCache, canonical_cache_key


@pytest.fixture(scope="module")
def swap_pair(tiny_model, tmp_path_factory):
    """Two revisions of the tiny model: the original and a perturbed copy."""
    checkpoint = tiny_model.save(
        tmp_path_factory.mktemp("lifecycle") / "v1")
    variant = MPIRical.load(checkpoint)
    first = variant.model.parameters()[0]
    first.data[...] = first.data + 0.25
    first.mark_updated()
    assert variant.fingerprint() != tiny_model.fingerprint()
    return tiny_model, variant


# ------------------------------------------------------- hot-swap differential


def test_hot_swap_serves_every_request_and_never_a_stale_cache_entry(
        swap_pair, small_dataset):
    """The ISSUE 5 differential: swap the default alias mid-traffic."""
    v1, v2 = swap_pair
    id1, id2 = f"advisor-v1@{v1.fingerprint()}", f"advisor-v2@{v2.fingerprint()}"
    programs = [ex.source_code for ex in small_dataset.splits.test[:6]]

    registry = ModelRegistry(v1, name="advisor-v1")
    registry.register("advisor-v2", v2)
    with InferenceService(registry, max_batch_size=4, max_wait_ms=2,
                          num_workers=2, cache_capacity=256,
                          generation=GenerationConfig(max_length=48)) as service:
        # Warm the cache on v1.  Requests reference the *alias*, so the swap
        # below re-routes them; the response echoes the resolved identity.
        pre = [service.advise_request(
            AdviseRequest(code=program, model="default"), timeout=120)
            for program in programs]
        assert {response.model for response in pre} == {id1}
        assert service.advise_request(
            AdviseRequest(code=programs[0], model="default"),
            timeout=120).cached

        # Background clients hammer the alias while the swap happens.
        responses, errors = [], []
        stop = threading.Event()

        def client(offset: int) -> None:
            index = offset
            while not stop.is_set():
                request = AdviseRequest(code=programs[index % len(programs)],
                                        model="default")
                try:
                    responses.append(service.advise_request(request,
                                                            timeout=120))
                except Exception as exc:  # pragma: no cover - regression only
                    errors.append(exc)
                index += 1

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)

        # A knot of requests submitted immediately before the flip: these are
        # the in-flight requests the swap must drain, not drop.
        inflight = [service.advise_request_async(
            AdviseRequest(code=program, model="default"))
            for program in programs]
        previous, current = registry.swap("advisor-v2")
        assert (previous, current) == (id1, id2)
        drained = [future.result(timeout=120) for future in inflight]

        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join()

        # Zero lost requests, and every response names the revision that
        # served it — nothing else.
        assert not errors
        assert len(drained) == len(programs)
        assert {response.model for response in drained} <= {id1, id2}
        assert {response.model for response in responses} <= {id1, id2}
        assert any(response.model == id2 for response in responses), \
            "no post-swap traffic reached the new revision"

        # After the swap the alias resolves to v2 for every buffer, and no
        # response is ever backed by a pre-swap cache entry: the revision is
        # part of the cache key, so the key sets cannot intersect.
        pre_keys = {response.cache_key for response in pre}
        post = [service.advise_request(
            AdviseRequest(code=program, model="default"), timeout=120)
            for program in programs]
        assert {response.model for response in post} == {id2}
        assert not pre_keys & {response.cache_key for response in post}
        assert not pre_keys & {response.cache_key for response in responses
                               if response.model == id2}

        # Requests that never name a model follow the alias too (served
        # identity visible on the in-process ServedAdvice), while their wire
        # responses keep the v1.0 shape (no "model" key).
        served = service.advise(programs[0], timeout=120)
        assert served.model == id2
        unpinned = service.advise_request(AdviseRequest(code=programs[0]),
                                          timeout=120)
        assert unpinned.model is None
        assert "model" not in unpinned.to_dict()

        # The old revision stays reachable by name for canaries/rollback.
        rollback = service.advise_request(
            AdviseRequest(code=programs[0], model="advisor-v1"), timeout=120)
        assert rollback.model == id1


def test_stream_across_swap_finishes_on_its_resolved_revision(swap_pair):
    """A stream that resolved before the flip completes on the old entry."""
    v1, v2 = swap_pair
    registry = ModelRegistry(v1, name="advisor-v1")
    registry.register("advisor-v2", v2)
    source = "int main(int argc, char **argv) {\n    int swapped = 1;\n" \
             "    return swapped;\n}\n"
    with InferenceService(registry, cache_capacity=16,
                          generation=GenerationConfig(max_length=32)) as service:
        stream = service.advise_stream(
            AdviseRequest(code=source, model="default"))
        first = next(stream)            # the decode is now in flight on v1
        registry.swap("advisor-v2")
        chunks = [first, *stream]
        final = chunks[-1]
        assert final["type"] == "final"
        assert final["response"]["model"] == f"advisor-v1@{v1.fingerprint()}"
        # A fresh stream resolves through the flipped alias.
        replay = list(service.advise_stream(
            AdviseRequest(code=source, model="default")))
        assert replay[-1]["response"]["model"] == \
            f"advisor-v2@{v2.fingerprint()}"
        assert replay[-1]["response"]["cached"] is False


# ------------------------------------------------- cache revision isolation


SOURCE = "int main() { int cache_isolation_probe = 3; return 0; }\n"


def test_cache_keys_embed_the_model_revision():
    """ISSUE 5 satellite: the regression that motivated the key change —
    same buffer, same strategy, different revision => different entry."""
    v1 = canonical_cache_key(SOURCE, model="advisor@aaaaaaaaaaaa")
    v2 = canonical_cache_key(SOURCE, model="advisor@bbbbbbbbbbbb")
    other = canonical_cache_key(SOURCE, model="other@aaaaaaaaaaaa")
    anonymous = canonical_cache_key(SOURCE)
    assert len({v1, v2, other, anonymous}) == 4

    # Simulated hot-swap over one LRU: everything cached under the old
    # revision is unreachable from the new one — zero stale hits.
    cache = LRUCache(8)
    cache.put(v1, "old-revision-result")
    assert cache.get(v2) is None
    assert cache.get(other) is None
    assert cache.stats().hits == 0


# ------------------------------------------------------------- job store unit


class _StubService:
    """advise_request_async stub: resolves by request content, no model."""

    def advise_request_async(self, request: AdviseRequest) -> Future:
        if request.model == "missing":
            raise ApiError.unknown_model("unknown model 'missing'")
        future: Future = Future()
        if "explode" in request.code:
            future.set_exception(RuntimeError("decoder exploded"))
        else:
            future.set_result(SimpleNamespace(
                to_dict=lambda code=request.code: {"generated_code": code}))
        return future


def test_job_store_envelopes_every_item_independently():
    store = JobStore(_StubService())
    try:
        job = store.submit([AdviseRequest(code="int a;"),
                            AdviseRequest(code="int explode;"),
                            AdviseRequest(code="int b;", model="missing")])
        assert job.job_id == "job-1"
        assert job.wait(timeout=30)
        body = job.to_dict()
        assert body["status"] == "done"
        assert body["total"] == body["completed"] == 3
        by_index = {item["index"]: item for item in body["results"]}
        assert by_index[0]["status"] == "ok"
        assert by_index[0]["response"] == {"generated_code": "int a;"}
        assert by_index[1]["status"] == "error"
        assert by_index[1]["error"]["code"] == "internal"
        assert by_index[2]["status"] == "error"
        assert by_index[2]["error"]["code"] == "unknown_model"
        assert store.get("job-1") is job
    finally:
        store.close()


def test_job_store_ids_are_sequential_and_finished_jobs_are_evicted():
    store = JobStore(_StubService(), max_jobs=2)
    try:
        jobs = []
        for i in range(3):
            job = store.submit([AdviseRequest(code=f"int x{i};")])
            # Only *finished* jobs are eviction candidates, so let each run
            # to completion before the next submission can push one out.
            assert job.wait(timeout=30)
            jobs.append(job)
        assert [job.job_id for job in jobs] == ["job-1", "job-2", "job-3"]
        # Capacity 2: the oldest finished job was evicted at submit time —
        # and because it *was* issued, polling it answers 410 expired, not
        # the never-existed 404.
        with pytest.raises(ApiError) as excinfo:
            store.get("job-1")
        assert excinfo.value.status == 410
        assert excinfo.value.code == "expired"
        with pytest.raises(ApiError) as excinfo:
            store.get("job-999")
        assert excinfo.value.status == 404
        assert store.get("job-3").to_dict()["status"] == "done"
    finally:
        store.close()


def test_job_store_rejects_empty_submissions_and_closes_cleanly():
    store = JobStore(_StubService())
    with pytest.raises(ApiError) as excinfo:
        store.submit([])
    assert excinfo.value.status == 400
    store.close()
    # A closed store is *unavailable* (503) — shutting down is not a 500.
    with pytest.raises(ApiError) as excinfo:
        store.submit([AdviseRequest(code="int late;")])
    assert excinfo.value.status == 503
    assert excinfo.value.code == "unavailable"
